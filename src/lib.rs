//! Facade crate re-exporting the whole workspace for examples and tests.
pub use pio_core as stats;
pub use pio_des as des;
pub use pio_fault as fault;
pub use pio_fleetd as fleetd;
pub use pio_fs as fs;
pub use pio_h5 as h5;
pub use pio_ingest as ingest;
pub use pio_mpi as mpi;
pub use pio_trace as trace;
pub use pio_viz as viz;
pub use pio_workloads as workloads;
