//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API over `std::sync` primitives. A poisoned std lock (a panic while
//! held) is treated as still-usable, matching parking_lot's behaviour of
//! not propagating poison.

use std::sync::{self, PoisonError};

/// Mutual exclusion lock (non-poisoning facade).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire the lock only if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock (non-poisoning facade).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
