//! Offline stand-in for `criterion`: the benchmark-harness surface this
//! workspace uses (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup::sample_size`, `Bencher::iter`/`iter_batched`).
//!
//! Behaviour: under `cargo test` (cargo passes `--test` to `harness = false`
//! bench binaries) every routine runs exactly once as a smoke test; under
//! `cargo bench` (cargo passes `--bench`) each routine is timed over a small
//! number of wall-clock samples and a mean/min/max summary is printed. No
//! statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample data handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    samples: usize,
    timings: Vec<Duration>,
    iters_per_sample: u64,
}

/// How `iter_batched` amortises setup cost; the stub treats all variants
/// identically (one setup per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small payload per iteration.
    SmallInput,
    /// Large payload per iteration.
    LargeInput,
    /// One payload per batch.
    PerIteration,
}

impl Bencher {
    fn new(quick: bool, samples: usize) -> Self {
        Bencher {
            quick,
            samples,
            timings: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Time `routine` over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup doubles as calibration: pick an iteration count that makes
        // one sample last ~2ms so cheap kernels aren't pure timer noise.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        if self.quick {
            self.timings.push(once);
            return;
        }
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.timings.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        if self.quick {
            self.timings.push(once);
            return;
        }
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.timings.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.timings.is_empty() {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter: Vec<f64> = self
            .timings
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        if self.quick {
            println!("{name:<40} ok ({})", fmt_time(mean));
        } else {
            println!(
                "{name:<40} time: [{} {} {}]",
                fmt_time(min),
                fmt_time(mean),
                fmt_time(max)
            );
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Benchmark driver; one per `criterion_group!`-generated runner.
pub struct Criterion {
    quick: bool,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: true,
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Configure from the CLI args cargo passes: `--bench` selects measured
    /// mode, `--test` (or no flag, i.e. `cargo test`) selects one-shot smoke
    /// mode. A bare non-flag argument filters benchmarks by substring.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => c.quick = false,
                "--test" => c.quick = true,
                s if !s.starts_with('-') => c.filter = Some(s.to_string()),
                _ => {}
            }
        }
        c
    }

    /// Override the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled(name) {
            let mut b = Bencher::new(self.quick, self.sample_size);
            f(&mut b);
            b.report(name);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// Group of benchmarks sharing a name prefix and sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if self.criterion.enabled(&full) {
            let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
            let mut b = Bencher::new(self.criterion.quick, samples);
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runner callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(4);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(smoke, bench_addition);

    #[test]
    fn runner_smoke() {
        smoke();
    }

    #[test]
    fn measured_mode_records_samples() {
        let mut b = Bencher::new(false, 5);
        b.iter(|| black_box(1u64).wrapping_mul(3));
        assert_eq!(b.timings.len(), 5);
        b.report("measured");
    }
}
