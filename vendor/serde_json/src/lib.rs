//! Offline stand-in for `serde_json`: JSON text over the vendored serde
//! stub's [`Content`] model. Produces the same layout real serde_json
//! emits for the shapes this workspace serializes (structs → objects,
//! unit enum variants → strings, tuples/Vec → arrays), so trace files
//! written here are interchangeable with conforming producers.

use serde::{Content, Deserialize, Serialize};
use std::io::{Read, Write};

/// Re-export of the content model under serde_json's usual name.
pub use serde::Content as Value;

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

// ---- serialization ----------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form, which is
                // valid JSON for finite values.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content());
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

// ---- parsing ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let c = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parse a JSON string into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_content(&v).map_err(|e| Error(e.0))
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Deserialize from a reader (reads to end).
pub fn from_reader<R: Read, T: Deserialize>(mut r: R) -> Result<T, Error> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn float_precision_round_trips() {
        for v in [1e-5f64, 1e3, 0.1, 123456.789012345, 2.2250738585072014e-308] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,0.5],[2,1.5]]");
        assert_eq!(from_str::<Vec<(u64, f64)>>(&s).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nwith \"quotes\" and \\ backslash \u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Unicode escapes parse.
        assert_eq!(
            from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            "A😀"
        );
    }

    #[test]
    fn objects_parse_in_order() {
        let v = parse_value("{\"a\": 1, \"b\": [true, null]}").unwrap();
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        match v.get("b") {
            Some(Value::Seq(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1], Value::Null);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(parse_value("[1,]").is_err());
    }
}
