//! Offline stand-in for `proptest`: property tests as deterministic random
//! sampling. The covered surface is the one this workspace uses — the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range and
//! tuple strategies, `prop_map`/`prop_flat_map`, `collection::vec`,
//! `collection::btree_set`, and `option::of`.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the sampled inputs left to the assertion message), and sampling is seeded
//! from the test function name, so runs are reproducible but the streams do
//! not match upstream proptest.

pub mod test_runner {
    /// Deterministic generator (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (e.g. the test name) so each test
        /// gets its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, span)`; `span == 0` means the full u64 range.
        pub fn below(&mut self, span: u64) -> u64 {
            if span == 0 {
                return self.next_u64();
            }
            // Lemire's rejection method: unbiased without division per draw.
            let threshold = span.wrapping_neg() % span;
            loop {
                let m = (self.next_u64() as u128) * (span as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u64;
                    // below(0) draws from the full u64 range, which is
                    // exactly right when the inclusive span wraps to 0.
                    (*self.start() as i128 + rng.below(span.wrapping_add(1)) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values from `elem`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate a `BTreeSet` whose size falls in `size` (best effort when
    /// the element domain is smaller than the requested size).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 100 + 100 {
                set.insert(self.elem.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s of values from `inner`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Assert a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a test that samples its inputs `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

pub mod prelude {
    //! The names a property test module imports.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_in_bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..5.0), &mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = Strategy::sample(&(0usize..=4), &mut rng);
            assert!(i <= 4);
        }
    }

    #[test]
    fn composite_strategies() {
        let mut rng = TestRng::deterministic("composite");
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u64..10, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = Strategy::sample(&strat, &mut rng);
            assert_eq!(v.len(), n);
        }
        let set = crate::collection::btree_set(0usize..5, 1..=5);
        for _ in 0..100 {
            let s = Strategy::sample(&set, &mut rng);
            assert!(!s.is_empty() && s.len() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: tuple args, trailing comma, config prefix.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), scale in 1u64..5,) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(scale as u32 * (a + b), (a + b) * scale as u32);
        }
    }
}
