//! Offline stand-in for `serde_derive`.
//!
//! Registry access is unavailable, so this derive is written directly
//! against `proc_macro` (no `syn`/`quote`). It supports the two shapes
//! the workspace derives — structs with named fields and enums with unit
//! variants — and generates impls of the vendored `serde` stub's
//! `Serialize`/`Deserialize` traits, matching real serde_json's layout
//! for these shapes (struct → object, unit variant → string).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skip `#[...]` attribute pairs at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub` / `pub(...)` at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected item name, found {other}"),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde stub derive: generics are not supported (item `{name}`)")
            }
            Some(_) => i += 1,
            None => panic!("serde stub derive: missing body for `{name}`"),
        }
    };
    let body: Vec<TokenTree> = body.stream().into_iter().collect();
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_struct_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_enum_variants(&body),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

fn parse_struct_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_vis(body, skip_attrs(body, i));
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, found {other}"),
        };
        fields.push(field);
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde stub derive: expected `:` after field name"),
        }
        // Consume the type up to the next top-level comma; commas inside
        // `<...>` belong to the type (tuple types sit in their own group).
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(body: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, found {other}"),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde stub derive: only unit enum variants are supported \
                 (variant `{variant}` is followed by {other})"
            ),
        }
        variants.push(variant);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Content::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated code parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(c, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match c {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"expected string for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated code parses")
}
