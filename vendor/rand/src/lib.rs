//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal implementation of the parts of `rand` it actually uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{random,
//! random_range}`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, high-quality, and stable across builds
//! (which is all the simulator requires; it never promises stream
//! compatibility with upstream `rand`).

/// Low-level uniform word source.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from an RNG (the `StandardUniform` roles).
pub trait UniformSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value in the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (reject_sample(rng, span as u64) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Unbiased integer in `[0, span)` via multiply-shift rejection
/// (Lemire's method); `span == 0` means the full 64-bit range.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every word source.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (for `f64`: uniform in `[0, 1)`).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from an integer or float range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli trial.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let w = (z ^ (z >> 31)).to_le_bytes();
            b.copy_from_slice(&w[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen0 = false;
        let mut seen9 = false;
        for _ in 0..1000 {
            let v = r.random_range(0usize..10);
            assert!(v < 10);
            seen0 |= v == 0;
            seen9 |= v == 9;
            let w = r.random_range(0u64..=5);
            assert!(w <= 5);
        }
        assert!(seen0 && seen9);
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
