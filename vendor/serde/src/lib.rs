//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a minimal serde-compatible surface: `Serialize` / `Deserialize`
//! traits over a self-describing [`Content`] tree, plus derive macros (in
//! `serde_derive`) for named-field structs and unit-variant enums — the
//! only shapes this workspace derives. `serde_json` (also vendored) maps
//! `Content` to and from JSON text with the same layout real serde_json
//! produces for these shapes, so trace files stay interchangeable.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the stub's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only produced for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples).
    Seq(Vec<Content>),
    /// Key-ordered map (structs).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a struct field by name.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to the content model.
pub trait Serialize {
    /// Build the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the content model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Fetch and deserialize a struct field (derive-macro helper).
pub fn de_field<T: Deserialize>(c: &Content, key: &str) -> Result<T, DeError> {
    match c.get(key) {
        Some(v) => T::from_content(v).map_err(|e| DeError(format!("field `{key}`: {}", e.0))),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

// ---- primitive impls --------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t)))),
                    ref other => Err(DeError(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 { Content::U64(*self as u64) } else { Content::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t)))),
                    ref other => Err(DeError(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            ref other => Err(DeError(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::Bool(v) => Ok(v),
            ref other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_content(c)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        const LEN: usize = [$($n),+].len();
                        if items.len() != LEN {
                            return Err(DeError(format!(
                                "expected {LEN}-tuple, found {} elements", items.len()
                            )));
                        }
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    other => Err(DeError(format!("expected array, found {other:?}"))),
                }
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let c = v.to_content();
        assert_eq!(Vec::<(u64, f64)>::from_content(&c).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_content(&o.to_content()).unwrap(), None);
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let c = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert_eq!(de_field::<u64>(&c, "a").unwrap(), 1);
        let err = de_field::<u64>(&c, "b").unwrap_err();
        assert!(err.0.contains("missing field `b`"));
    }
}
