//! Offline stand-in for `crossbeam`: the scoped-thread and MPMC channel
//! surface this workspace uses, built on `std`. Semantics match the real
//! crate for the covered API: `thread::scope` joins all spawned threads
//! before returning, and `channel` senders/receivers are cloneable with
//! disconnect detection on both ends.

pub mod thread {
    //! Scoped threads (wraps `std::thread::scope`).

    use std::any::Any;

    /// Spawn scope handed to the closure; threads it spawns may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Create a scope; all threads spawned within are joined before this
    /// returns. Unlike crossbeam (which collects unjoined panics into the
    /// `Err` arm), an unjoined panicking child propagates the panic — the
    /// workspace always joins explicitly, where panics surface via
    /// [`ScopedJoinHandle::join`].
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPMC channels with optional bounded capacity.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected (no receivers); payload returned.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity; payload returned.
        Full(T),
        /// No receivers remain; payload returned.
        Disconnected(T),
    }

    /// All senders dropped and the queue is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty but senders remain.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Channel with a fixed capacity; `send` blocks when full.
    /// Zero-capacity rendezvous channels are not supported by the stub.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "stub channel: zero-capacity channels unsupported");
        make(Some(cap))
    }

    /// Channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued (or all receivers are gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue without blocking; `Full` if at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives (or all senders are gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum: i32 = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let v = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_backpressure_try_send() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.try_send(5), Err(TrySendError::Disconnected(5)));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let total: u64 = super::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| rx.iter().sum::<u64>())
                })
                .collect();
            drop(rx);
            for producer in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..250 {
                        tx.send(producer * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        let expect: u64 = (0..4u64)
            .map(|p| (0..250u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }
}
