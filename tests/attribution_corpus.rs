//! Golden-verdict attribution corpus: every named fault plan × two
//! seeds, attributed to its fault class by the *shared* detectors both
//! post-mortem (batch `diagnose` over the buffered trace) and mid-run
//! (the `StreamDiagnoser` fed record-by-record), with the clean
//! baselines attribution-free on both paths.

use events_to_ensembles::ingest::{DiagnoserConfig, StreamDiagnoser, TimedFinding};
use events_to_ensembles::stats::attribution::FaultClass;
use events_to_ensembles::trace::{Record, RecordSink};
use pio_bench::fault_matrix::{attributed, run_once, run_once_sharded, scenarios};

const SCALE: u32 = 16;
const SEEDS: [u64; 2] = [101, 202];

/// Arrival-ordered records of a run (the order a tracer would emit).
fn arrival_order(records: &[Record]) -> Vec<Record> {
    let mut sorted = records.to_vec();
    sorted.sort_by_key(|r| (r.start_ns, r.rank));
    sorted
}

/// Stream a record sequence through the online diagnoser with a window
/// small enough that several windows tumble within these short runs.
fn stream(records: &[Record]) -> StreamDiagnoser {
    let mut d = StreamDiagnoser::new(DiagnoserConfig {
        window: 256,
        ..DiagnoserConfig::default()
    });
    for r in records {
        d.push(r);
    }
    d.finish();
    d
}

/// Every attributed finding the stream raised, in firing order.
fn stream_attributions(d: &StreamDiagnoser) -> Vec<(FaultClass, u64)> {
    d.findings()
        .iter()
        .filter_map(|t: &TimedFinding| t.finding.attribution().map(|c| (c, t.after_records)))
        .collect()
}

#[test]
fn every_named_fault_is_attributed_batch_and_mid_run() {
    let mut covered = Vec::new();
    for sc in scenarios(SCALE) {
        let Some(want) = sc.expected_class else {
            continue; // the deterioration ramp asserts a non-attributed shape
        };
        covered.push(want);
        for seed in SEEDS {
            let res = run_once(sc.job(), sc.fs(), seed, "corpus", Some(sc.plan()));

            // Batch: exactly the expected class, nothing else.
            let classes = attributed(&res);
            assert_eq!(
                classes,
                vec![want],
                "{} seed {seed}: batch attributed {classes:?}",
                sc.fault
            );

            // Streaming: the expected class fires before end-of-stream,
            // and the stream's final attributed verdict agrees.
            let records = arrival_order(&res.trace().records);
            let d = stream(&records);
            let attrs = stream_attributions(&d);
            let total = records.len() as u64;
            assert!(
                attrs.iter().any(|&(c, after)| c == want && after < total),
                "{} seed {seed}: no mid-run {want:?} among {attrs:?} ({total} records)",
                sc.fault
            );
            let last = attrs.last().map(|&(c, _)| c);
            assert_eq!(
                last,
                Some(want),
                "{} seed {seed}: stream's final verdict disagrees: {attrs:?}",
                sc.fault
            );
        }
    }
    // The corpus must exercise all five named fault classes.
    covered.sort();
    assert_eq!(
        covered,
        vec![
            FaultClass::SlowOst,
            FaultClass::FlakyFabric,
            FaultClass::MdsStall,
            FaultClass::StragglerNode,
            FaultClass::DropRetry,
        ]
    );
}

#[test]
fn clean_baselines_are_attribution_free_batch_and_stream() {
    for sc in scenarios(SCALE) {
        for seed in SEEDS {
            let res = run_once(sc.job(), sc.fs(), seed, "corpus-base", None);
            let classes = attributed(&res);
            assert!(
                classes.is_empty(),
                "{} seed {seed}: baseline attributed {classes:?}",
                sc.fault
            );
            let d = stream(&arrival_order(&res.trace().records));
            let attrs = stream_attributions(&d);
            assert!(
                attrs.is_empty(),
                "{} seed {seed}: baseline stream attributed {attrs:?}",
                sc.fault
            );
        }
    }
}

#[test]
fn verdicts_are_bit_identical_across_shard_counts() {
    // The parallel engine's contract: the shard count is a throughput
    // knob, never a semantic one. Every corpus scenario — clean and
    // faulted, both seeds — must produce byte-for-byte the same trace,
    // statistics, and diagnose() verdicts at 1, 2, and 8 shards.
    for sc in scenarios(SCALE) {
        for seed in SEEDS {
            for (label, plan) in [
                ("corpus-shards-clean", None),
                ("corpus-shards-faulted", Some(sc.plan())),
            ] {
                let base = run_once_sharded(sc.job(), sc.fs(), seed, label, plan, 1);
                let verdict = attributed(&base);
                for shards in [2, 8] {
                    let res = run_once_sharded(sc.job(), sc.fs(), seed, label, plan, shards);
                    let ctx = format!("{} seed {seed} {label} @ {shards} shards", sc.fault);
                    assert_eq!(
                        base.trace().records,
                        res.trace().records,
                        "{ctx}: trace diverged"
                    );
                    assert_eq!(base.events, res.events, "{ctx}: event count diverged");
                    assert_eq!(base.end, res.end, "{ctx}: end time diverged");
                    assert_eq!(base.stats, res.stats, "{ctx}: fs stats diverged");
                    assert_eq!(
                        base.lock_stats, res.lock_stats,
                        "{ctx}: lock stats diverged"
                    );
                    assert_eq!(base.util, res.util, "{ctx}: utilization diverged");
                    assert_eq!(verdict, attributed(&res), "{ctx}: verdicts diverged");
                }
            }
        }
    }
}
