//! Golden-verdict attribution corpus: every named fault plan — single,
//! compound, and time-scheduled — × two seeds, attributed by the
//! *shared* detectors both post-mortem (batch `diagnose` over the
//! buffered trace) and mid-run (the `StreamDiagnoser` fed
//! record-by-record), with the clean baselines attribution-free on both
//! paths. The engine knobs — shard count, ingest worker count, trace
//! format — must all be semantically invisible: same verdict, byte for
//! byte.

use events_to_ensembles::fault::{FaultPlan, FaultSchedule};
use events_to_ensembles::ingest::pipeline::{IngestConfig, IngestPipeline};
use events_to_ensembles::ingest::{
    stream_file_parallel, stream_jsonl, stream_ptb, stream_ptb2, DiagnoserConfig, StreamDiagnoser,
    TimedFinding,
};
use events_to_ensembles::stats::attribution::FaultClass;
use events_to_ensembles::stats::diagnosis::{run_verdict, Thresholds, Verdict};
use events_to_ensembles::trace::io::write_jsonl;
use events_to_ensembles::trace::ptb::write_ptb;
use events_to_ensembles::trace::ptb2::write_ptb2;
use events_to_ensembles::trace::{Record, RecordSink, Trace};
use pio_bench::fault_matrix::{run_once, run_once_sharded, scenarios, verdict_of, Expect};

const SCALE: u32 = 16;
const SEEDS: [u64; 2] = [101, 202];

/// Arrival-ordered records of a run (the order a tracer would emit).
fn arrival_order(records: &[Record]) -> Vec<Record> {
    let mut sorted = records.to_vec();
    sorted.sort_by_key(|r| (r.start_ns, r.rank));
    sorted
}

/// Stream a record sequence through the online diagnoser with a window
/// small enough that several windows tumble within these short runs.
fn stream(records: &[Record]) -> StreamDiagnoser {
    let mut d = StreamDiagnoser::new(DiagnoserConfig {
        window: 256,
        ..DiagnoserConfig::default()
    });
    for r in records {
        d.push(r);
    }
    d.finish();
    d
}

/// The stream's whole-run verdict: the same `run_verdict` roll-up the
/// batch path and fleetd use, over every finding the stream raised.
fn stream_verdict(d: &StreamDiagnoser) -> Verdict {
    let findings: Vec<_> = d.findings().iter().map(|t| t.finding.clone()).collect();
    run_verdict(&findings)
}

/// Every attributed finding the stream raised, in firing order.
fn stream_attributions(d: &StreamDiagnoser) -> Vec<(Vec<FaultClass>, u64)> {
    d.findings()
        .iter()
        .filter_map(|t: &TimedFinding| {
            t.finding
                .attribution()
                .map(|a| (a.classes, t.after_records))
        })
        .collect()
}

#[test]
fn every_named_fault_is_attributed_batch_and_mid_run() {
    let mut covered = Vec::new();
    for sc in scenarios(SCALE) {
        let Expect::Single(want) = sc.expected else {
            continue; // ramp shape and pair cells assert elsewhere
        };
        covered.push(want);
        for seed in SEEDS {
            let res = run_once(sc.job(), sc.fs(), seed, "corpus", Some(sc.plan()));

            // Batch: exactly the expected class, nothing else.
            let v = verdict_of(&res);
            assert_eq!(
                v,
                Verdict::Single(want),
                "{} seed {seed}: batch verdict {}",
                sc.fault,
                v.label()
            );

            // Streaming: the expected class fires before end-of-stream,
            // and the stream's final verdict agrees.
            let records = arrival_order(&res.trace().records);
            let d = stream(&records);
            let attrs = stream_attributions(&d);
            let total = records.len() as u64;
            assert!(
                attrs
                    .iter()
                    .any(|(cs, after)| cs.contains(&want) && *after < total),
                "{} seed {seed}: no mid-run {want:?} among {attrs:?} ({total} records)",
                sc.fault
            );
            assert_eq!(
                stream_verdict(&d),
                Verdict::Single(want),
                "{} seed {seed}: stream's final verdict disagrees: {attrs:?}",
                sc.fault
            );
        }
    }
    // The corpus must exercise all five named fault classes.
    covered.sort();
    assert_eq!(
        covered,
        vec![
            FaultClass::SlowOst,
            FaultClass::FlakyFabric,
            FaultClass::MdsStall,
            FaultClass::StragglerNode,
            FaultClass::DropRetry,
        ]
    );
}

#[test]
fn compound_and_scheduled_plans_name_both_classes_batch_and_mid_run() {
    let mut pairs = 0;
    for sc in scenarios(SCALE) {
        let Expect::Pair(a, b) = sc.expected else {
            continue;
        };
        pairs += 1;
        for seed in SEEDS {
            let res = run_once(sc.job(), sc.fs(), seed, "corpus-pair", Some(sc.plan()));

            // Batch: both injected classes named — confidently or as an
            // honest ambiguity — and nothing outside the pair.
            let v = verdict_of(&res);
            assert!(
                v.implicates(a) && v.implicates(b),
                "{} seed {seed}: batch verdict {} misses one of {}/{}",
                sc.fault,
                v.label(),
                a.name(),
                b.name()
            );
            assert!(
                v.classes().iter().all(|c| *c == a || *c == b),
                "{} seed {seed}: batch verdict {} strays outside the pair",
                sc.fault,
                v.label()
            );

            // Streaming: some attribution fires mid-run, and the final
            // stream verdict also implicates both classes.
            let records = arrival_order(&res.trace().records);
            let d = stream(&records);
            let attrs = stream_attributions(&d);
            let total = records.len() as u64;
            assert!(
                attrs.iter().any(|(_, after)| *after < total),
                "{} seed {seed}: nothing fired mid-run ({total} records)",
                sc.fault
            );
            let sv = stream_verdict(&d);
            assert!(
                sv.implicates(a) && sv.implicates(b),
                "{} seed {seed}: stream verdict {} misses one of {}/{} ({attrs:?})",
                sc.fault,
                sv.label(),
                a.name(),
                b.name()
            );
            assert!(
                sv.classes().iter().all(|c| *c == a || *c == b),
                "{} seed {seed}: stream verdict {} strays outside the pair",
                sc.fault,
                sv.label()
            );
        }
    }
    // The corpus must exercise all three compound separations:
    // call-class, rank-space, and time.
    assert!(pairs >= 3, "only {pairs} pair cells in the matrix");
}

#[test]
fn clean_baselines_are_attribution_free_batch_and_stream() {
    for sc in scenarios(SCALE) {
        for seed in SEEDS {
            let res = run_once(sc.job(), sc.fs(), seed, "corpus-base", None);
            let v = verdict_of(&res);
            assert_eq!(
                v,
                Verdict::Clean,
                "{} seed {seed}: baseline verdict {}",
                sc.fault,
                v.label()
            );
            let d = stream(&arrival_order(&res.trace().records));
            let attrs = stream_attributions(&d);
            assert!(
                attrs.is_empty(),
                "{} seed {seed}: baseline stream attributed {attrs:?}",
                sc.fault
            );
        }
    }
}

#[test]
fn whole_run_schedules_are_byte_equal_to_unscheduled() {
    // A schedule covering the whole run must be invisible: same RNG
    // draws, same IEEE arithmetic, bit-identical traces. Checked at the
    // run level for every single-fault cell of the matrix.
    for sc in scenarios(SCALE) {
        if sc.plan().entries().len() != 1 || !sc.plan().entries()[0].schedule.is_always() {
            continue;
        }
        let fault = sc.plan().entries()[0].fault.clone();
        for (name, schedule) in [
            ("always", FaultSchedule::ALWAYS),
            ("whole-run-window", FaultSchedule::window(0.0, 1e9)),
        ] {
            let scheduled = FaultPlan::new().with_scheduled(fault.clone(), schedule);
            let seed = SEEDS[0];
            let a = run_once(sc.job(), sc.fs(), seed, "sched-eq", Some(sc.plan()));
            let b = run_once(sc.job(), sc.fs(), seed, "sched-eq", Some(&scheduled));
            assert_eq!(
                a.trace().records,
                b.trace().records,
                "{} ({name}): trace diverged under a whole-run schedule",
                sc.fault
            );
            assert_eq!(a.events, b.events, "{} ({name}): event count", sc.fault);
            assert_eq!(a.end, b.end, "{} ({name}): end time", sc.fault);
        }
    }
}

#[test]
fn verdicts_are_bit_identical_across_shard_counts() {
    // The parallel engine's contract: the shard count is a throughput
    // knob, never a semantic one. Every corpus scenario — clean and
    // faulted (including compound and time-scheduled plans), both seeds
    // — must produce byte-for-byte the same trace, statistics, and
    // diagnose() verdicts at 1, 2, and 8 shards.
    for sc in scenarios(SCALE) {
        for seed in SEEDS {
            for (label, plan) in [
                ("corpus-shards-clean", None),
                ("corpus-shards-faulted", Some(sc.plan())),
            ] {
                let base = run_once_sharded(sc.job(), sc.fs(), seed, label, plan, 1);
                let verdict = verdict_of(&base);
                for shards in [2, 8] {
                    let res = run_once_sharded(sc.job(), sc.fs(), seed, label, plan, shards);
                    let ctx = format!("{} seed {seed} {label} @ {shards} shards", sc.fault);
                    assert_eq!(
                        base.trace().records,
                        res.trace().records,
                        "{ctx}: trace diverged"
                    );
                    assert_eq!(base.events, res.events, "{ctx}: event count diverged");
                    assert_eq!(base.end, res.end, "{ctx}: end time diverged");
                    assert_eq!(base.stats, res.stats, "{ctx}: fs stats diverged");
                    assert_eq!(
                        base.lock_stats, res.lock_stats,
                        "{ctx}: lock stats diverged"
                    );
                    assert_eq!(base.util, res.util, "{ctx}: utilization diverged");
                    assert_eq!(verdict, verdict_of(&res), "{ctx}: verdicts diverged");
                }
            }
        }
    }
}

#[test]
fn stream_verdicts_are_identical_across_formats_and_ingest_threads() {
    // The compound corpus through every transport: the same faulted
    // trace serialized as jsonl, ptb, and ptb2 must drive the streaming
    // diagnoser to identical findings (same firing order, same record
    // counts), and the snapshot plane must diagnose identically at 1, 2,
    // and 8 ingest workers.
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(tmp).unwrap();
    for sc in scenarios(SCALE) {
        if !matches!(sc.expected, Expect::Pair(..)) {
            continue;
        }
        let seed = SEEDS[0];
        let res = run_once(sc.job(), sc.fs(), seed, "corpus-fmt", Some(sc.plan()));
        let mut t = Trace::new(res.trace().meta.clone());
        t.records = arrival_order(&res.trace().records);

        // Reference: direct push, record by record.
        let reference = stream(&t.records).findings().to_vec();
        assert!(
            !reference.is_empty(),
            "{}: compound run produced no stream findings",
            sc.fault
        );

        let mut jsonl = Vec::new();
        write_jsonl(&t, &mut jsonl).unwrap();
        let mut ptb = Vec::new();
        write_ptb(&t, &mut ptb).unwrap();
        let mut ptb2 = Vec::new();
        write_ptb2(&t, &mut ptb2).unwrap();
        for (fmt, bytes) in [("jsonl", &jsonl), ("ptb", &ptb), ("ptb2", &ptb2)] {
            let mut d = StreamDiagnoser::new(DiagnoserConfig {
                window: 256,
                ..DiagnoserConfig::default()
            });
            let cursor = std::io::Cursor::new(bytes.as_slice());
            let n = match fmt {
                "jsonl" => {
                    stream_jsonl(std::io::BufReader::new(cursor), &mut d)
                        .unwrap()
                        .1
                }
                "ptb" => stream_ptb(cursor, &mut d).unwrap().1,
                _ => stream_ptb2(cursor, &mut d).unwrap().1,
            };
            assert_eq!(
                n,
                t.records.len() as u64,
                "{} via {fmt}: lost records",
                sc.fault
            );
            assert_eq!(
                d.findings(),
                &reference[..],
                "{} via {fmt}: findings diverged from direct push",
                sc.fault
            );
        }

        // Snapshot plane: worker count is a throughput knob.
        let path = tmp.join(format!(
            "corpus-{}-{seed}.ptb2",
            sc.fault.replace(['@', '+'], "-")
        ));
        std::fs::write(&path, &ptb2).unwrap();
        let th = Thresholds::default();
        let mut snapshots = Vec::new();
        for workers in [1usize, 2, 8] {
            let pipeline = IngestPipeline::new(IngestConfig {
                workers,
                ..IngestConfig::default()
            });
            let (_, n) = stream_file_parallel(&path, &pipeline).unwrap();
            assert_eq!(n, t.records.len() as u64);
            snapshots.push((workers, pipeline.finish()));
        }
        let (_, first) = &snapshots[0];
        let reference_findings = first.diagnose(&th);
        for (workers, snap) in &snapshots[1..] {
            assert_eq!(
                snap.diagnose(&th),
                reference_findings,
                "{} @ {workers} ingest workers: snapshot findings diverged",
                sc.fault
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
