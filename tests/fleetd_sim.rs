//! The fleet acceptance test: a simulated machine of ≥24 concurrent
//! jobs — mixed workloads, ten under fault plans — streamed through the
//! always-on `pio-fleetd` service under a bounded per-tenant memory
//! budget.
//!
//! Asserts the tentpole guarantees end to end:
//!
//! * **Golden-corpus parity** — every faulted tenant's fleet verdict is
//!   its injected class, and matches the batch `diagnose` verdict over
//!   the very same records; every clean tenant stays clean.
//! * **Determinism** — per-job reports and the machine roll-up are
//!   bit-identical across worker-pool sizes {1, 2, 8}.
//! * **Budgets** — the bounded per-tenant budget is honored without
//!   shedding a record of these jobs, and a hostile budget freezes a
//!   tenant without corrupting its neighbors or the roll-up.
//! * **Interference** — two tenants hammering the same degraded OST are
//!   jointly named on that OST by the cross-job view.

use events_to_ensembles::fleetd::{
    self, feed, fleet_config, fleet_spec, FleetService, JobReport, SimConfig,
};
use events_to_ensembles::ingest::EnsembleSnapshot;
use events_to_ensembles::stats::attribution::FaultClass;
use events_to_ensembles::stats::diagnose;
use events_to_ensembles::stats::diagnosis::{run_verdict, Verdict};
use events_to_ensembles::trace::Trace;

const JOBS: usize = 24;
const FAULTED: usize = 10;
const SCALE: u32 = 16;
const BUDGET: usize = 1 << 20; // bounded: 1 MiB of resident sketch per tenant
const POOLS: [usize; 3] = [1, 2, 8];

fn spec_and_traces() -> (Vec<fleetd::SimJob>, Vec<Trace>) {
    let cfg = SimConfig {
        jobs: JOBS,
        faulted: FAULTED,
        scale: SCALE,
    };
    let spec = fleet_spec(&cfg);
    let traces = fleetd::simulate(&spec, 4);
    (spec, traces)
}

fn run_pool(
    spec: &[fleetd::SimJob],
    traces: &[Trace],
    pool: usize,
) -> (Vec<JobReport>, EnsembleSnapshot, Vec<fleetd::OstContention>) {
    let mut svc = FleetService::new(fleet_config(pool, BUDGET));
    let ids = feed(&svc, spec, traces, 4);
    svc.shutdown();
    assert_eq!(svc.live_jobs(), 0, "all tenants evicted at end of stream");
    let reports: Vec<JobReport> = ids
        .iter()
        .map(|&id| svc.report(id).expect("report filed"))
        .collect();
    (reports, svc.rollup(), svc.interference())
}

/// The whole-run verdict batch `diagnose` reaches over a trace — the
/// same roll-up `JobReport::verdict` uses, recomputed independently.
fn batch_verdict(trace: &Trace) -> Verdict {
    run_verdict(&diagnose(trace))
}

#[test]
fn fleet_of_24_attributes_faulted_jobs_and_matches_batch_verdicts() {
    let (spec, traces) = spec_and_traces();
    assert!(spec.len() >= 24);

    let baseline = run_pool(&spec, &traces, POOLS[0]);
    for &pool in &POOLS[1..] {
        let other = run_pool(&spec, &traces, pool);
        assert_eq!(
            baseline.0, other.0,
            "per-job reports must be identical for pools {} and {pool}",
            POOLS[0]
        );
        assert_eq!(
            baseline.1, other.1,
            "machine roll-up must be identical for pools {} and {pool}",
            POOLS[0]
        );
        assert_eq!(
            baseline.2, other.2,
            "interference view must be identical for pools {} and {pool}",
            POOLS[0]
        );
    }

    let (reports, rollup, contention) = baseline;
    let mut total = 0u64;
    for ((s, t), r) in spec.iter().zip(&traces).zip(&reports) {
        assert_eq!(r.name, s.name);
        assert!(r.ingested > 0, "{}: no records ingested", s.name);
        assert_eq!(r.ingested as usize, t.records.len(), "{}", s.name);
        assert_eq!(r.shed, 0, "{}: budget must not shed these jobs", s.name);
        assert!(!r.frozen, "{}: must not freeze under the budget", s.name);
        total += r.ingested;

        // Fleet verdict == injected class (Clean for clean tenants)...
        let want = match s.expected {
            Some(c) => Verdict::Single(c),
            None => Verdict::Clean,
        };
        assert_eq!(
            r.verdict(),
            want,
            "{}: fleet verdict {}, expected {}; findings: {:?}",
            s.name,
            r.verdict().label(),
            want.label(),
            r.findings
        );
        // ...and parity with the batch detectors over the same records.
        assert_eq!(batch_verdict(t), want, "{}: batch verdict differs", s.name);
    }
    assert_eq!(rollup.ingested, total, "roll-up sums every tenant");
    assert_eq!(rollup.dropped, 0);

    // Two slow-ost tenants (jobs 0 and 5 of the faulted cycle) collide
    // on OST 1; the interference view must name both on that target.
    let slow_jobs: Vec<&str> = spec
        .iter()
        .filter(|s| s.expected == Some(FaultClass::SlowOst))
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(slow_jobs.len(), 2, "the spec provides the collision pair");
    let row = contention
        .iter()
        .find(|c| c.ost == 1)
        .expect("OST 1 must appear in the interference view");
    for name in &slow_jobs {
        assert!(
            row.jobs.iter().any(|(n, _)| n == name),
            "interference on OST 1 must name {name}: {:?}",
            row.jobs
        );
    }
    // And nothing else is jointly blamed: clean tenants never co-sign.
    for c in &contention {
        for (name, _) in &c.jobs {
            assert!(
                slow_jobs.contains(&name.as_str()),
                "clean tenant {name} flagged on OST {}",
                c.ost
            );
        }
    }
}

#[test]
fn hostile_budget_freezes_one_tenant_without_perturbing_the_rest() {
    let cfg = SimConfig {
        jobs: 3,
        faulted: 0,
        scale: SCALE,
    };
    let spec = fleet_spec(&cfg);
    let traces = fleetd::simulate(&spec, 2);

    // Generous budget: nothing shed.
    let mut free = FleetService::new(fleet_config(2, 0));
    let free_ids = feed(&free, &spec, &traces, 2);
    free.shutdown();

    // One-byte budget: every tenant freezes after its first block, yet
    // reports still file, verdicts stay clean, and the roll-up only
    // counts what was admitted.
    let mut tight = FleetService::new(fleet_config(2, 1));
    let tight_ids = feed(&tight, &spec, &traces, 2);
    tight.shutdown();

    for (&fid, &tid) in free_ids.iter().zip(&tight_ids) {
        let f = free.report(fid).expect("free report");
        let t = tight.report(tid).expect("tight report");
        assert_eq!(f.shed, 0);
        assert!(!f.frozen);
        assert!(t.frozen, "{}: 1-byte budget must freeze", t.name);
        assert!(t.ingested < f.ingested);
        assert_eq!(t.ingested + t.shed, f.ingested, "{}: conservation", t.name);
        assert_eq!(t.snapshot.dropped, t.shed);
        assert_eq!(
            t.verdict(),
            Verdict::Clean,
            "{}: prefix diagnosis stays clean",
            t.name
        );
    }
    assert_eq!(
        tight.rollup().ingested,
        tight_ids
            .iter()
            .map(|&id| tight.report(id).expect("report").ingested)
            .sum::<u64>()
    );
}
