//! The GCRM case study end-to-end: each optimization stage removes its
//! mechanism and buys run time (paper §V, Figure 6).

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, RunReport, Runner};
use events_to_ensembles::stats::diagnosis::{diagnose, Finding};
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::rates::sec_per_mb_samples;
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::gcrm::GcrmConfig;

const SCALE: u32 = 64; // 160 tasks, 2 aggregators, full metadata volume

fn run_stage(stage: u32, seed: u64) -> RunReport {
    let cfg = GcrmConfig::paper_stage(stage).scaled(SCALE);
    let job = cfg.job();
    Runner::new(
        &job,
        RunConfig::new(
            FsConfig::franklin().scaled(SCALE),
            seed,
            format!("gcrm-{stage}"),
        ),
    )
    .execute_one()
    .unwrap()
}

#[test]
fn ladder_monotonically_reduces_runtime_overall() {
    let times: Vec<f64> = (0..4).map(|s| run_stage(s, 11).wall_secs()).collect();
    assert!(
        times[2] < times[0],
        "alignment must beat baseline: {times:?}"
    );
    assert!(
        times[3] < times[2],
        "metadata aggregation must beat alignment: {times:?}"
    );
    assert!(
        times[3] < times[0] / 2.0,
        "the full ladder is worth >2x even at test scale: {times:?}"
    );
}

#[test]
fn baseline_mechanism_is_synchronous_unaligned_writes() {
    let base = run_stage(0, 3);
    // Unaligned shared-file records go synchronous and conflict.
    assert!(base.stats.sync_writes > 0);
    assert!(base.lock_stats.contended > 0);
    // Per-task rates collapse to the sub-MB/s bulge of Fig 6(c).
    let cost = EmpiricalDist::new(&sec_per_mb_samples(base.trace(), |r| {
        r.call == CallKind::Write
    }));
    let per_task_rate = 1.0 / cost.median();
    assert!(
        per_task_rate < 20.0,
        "baseline per-task rate should be pitiful, got {per_task_rate:.1} MB/s"
    );
}

#[test]
fn alignment_removes_conflicts_and_sync_writes() {
    let aligned = run_stage(2, 3);
    assert_eq!(aligned.lock_stats.contended, 0);
    assert_eq!(aligned.stats.sync_writes, 0);
    // All writes land on stripe boundaries.
    for r in aligned.trace().of_kind(CallKind::Write) {
        assert_eq!(r.offset % (1 << 20), 0, "{r:?}");
    }
}

#[test]
fn metadata_serialization_is_found_then_fixed() {
    let aligned = run_stage(2, 7);
    let final_stage = run_stage(3, 7);
    let f2 = diagnose(aligned.trace());
    assert!(
        f2.iter().any(|f| matches!(
            f,
            Finding::SerializedRank {
                rank: 0,
                metadata: true,
                ..
            }
        )),
        "stage 2 must flag rank-0 metadata: {f2:?}"
    );
    let f3 = diagnose(final_stage.trace());
    assert!(
        !f3.iter()
            .any(|f| matches!(f, Finding::SerializedRank { metadata: true, .. })),
        "stage 3 must not: {f3:?}"
    );
    // Metadata volume is aggregated, not dropped.
    let meta_bytes_2 = aligned.trace().bytes_of(CallKind::MetaWrite);
    let meta_bytes_3 = final_stage.trace().bytes_of(CallKind::MetaWrite);
    assert_eq!(meta_bytes_2, meta_bytes_3);
    let ops_2 = aligned.trace().of_kind(CallKind::MetaWrite).count();
    let ops_3 = final_stage.trace().of_kind(CallKind::MetaWrite).count();
    assert!(ops_3 * 50 < ops_2, "{ops_2} -> {ops_3}");
}

#[test]
fn collective_buffering_moves_all_data_through_aggregators() {
    let cfg = GcrmConfig::paper_stage(1).scaled(SCALE);
    let res = run_stage(1, 5);
    // Only aggregators write; payload conserved.
    let writers: std::collections::HashSet<u32> = res
        .trace()
        .of_kind(CallKind::Write)
        .map(|r| r.rank)
        .collect();
    let plan = cfg.aggregation().unwrap();
    assert_eq!(writers.len() as u32, plan.aggregators);
    for w in &writers {
        assert!(plan.is_aggregator(*w));
    }
    assert_eq!(res.stats.bytes_written, cfg.total_payload());
    // Everyone else shipped data via messages.
    let senders: std::collections::HashSet<u32> = res
        .trace()
        .of_kind(CallKind::Send)
        .map(|r| r.rank)
        .collect();
    assert_eq!(senders.len() as u32, cfg.tasks - plan.aggregators);
}

#[test]
fn trace_is_valid_and_deterministic_at_every_stage() {
    for stage in 0..4 {
        let a = run_stage(stage, 21);
        let b = run_stage(stage, 21);
        a.trace().validate().unwrap();
        assert_eq!(
            a.trace().records,
            b.trace().records,
            "stage {stage} not reproducible"
        );
    }
}
