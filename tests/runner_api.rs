//! Runner API contract tests: deadlock surfacing on both execution
//! paths, configuration errors, and builder semantics.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::program::{FileSpec, Job, Op, Program};
use events_to_ensembles::mpi::{RunConfig, RunError, Runner};
use events_to_ensembles::trace::NullSink;

fn cfg(seed: u64) -> RunConfig {
    RunConfig::new(FsConfig::franklin().scaled(128), seed, "runner-api")
}

/// Two ranks that each wait to receive before sending. Every ordered
/// (src, dst) pair has a matching send, so static validation passes —
/// but neither send can ever be reached at runtime.
fn cross_recv_job() -> Job {
    let p0 = Program {
        ops: vec![Op::Recv { from: 1 }, Op::Send { to: 1, bytes: 8 }],
    };
    let p1 = Program {
        ops: vec![Op::Recv { from: 0 }, Op::Send { to: 0, bytes: 8 }],
    };
    Job {
        programs: vec![p0, p1],
        files: vec![],
    }
}

#[test]
fn cross_recv_passes_static_validation() {
    assert_eq!(cross_recv_job().validate(), Ok(()));
}

#[test]
fn deadlock_is_reported_buffered() {
    let job = cross_recv_job();
    let err = Runner::new(&job, cfg(7)).execute_one().unwrap_err();
    match err {
        RunError::Deadlock(stuck) => {
            // Both ranks are stuck on their first op (the recv).
            assert_eq!(stuck, vec![(0, 0), (1, 0)]);
        }
        other => panic!("expected Deadlock, got {other}"),
    }
}

#[test]
fn deadlock_is_reported_streaming() {
    let job = cross_recv_job();
    let mut sink = NullSink;
    let err = Runner::new(&job, cfg(7))
        .sink(&mut sink)
        .execute()
        .unwrap_err();
    match err {
        RunError::Deadlock(stuck) => assert_eq!(stuck, vec![(0, 0), (1, 0)]),
        other => panic!("expected Deadlock, got {other}"),
    }
}

#[test]
fn deadlock_display_names_the_stuck_ranks() {
    let msg = RunError::Deadlock(vec![(0, 0), (1, 0)]).to_string();
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("2 ranks stuck"), "{msg}");
}

fn tiny_io_job() -> Job {
    let prog = Program {
        ops: vec![
            Op::Open { file: 0 },
            Op::WriteAt {
                file: 0,
                offset: 0,
                bytes: 1 << 16,
            },
            Op::Close { file: 0 },
        ],
    };
    Job {
        programs: vec![prog.clone(), prog],
        files: vec![FileSpec { shared: true }],
    }
}

#[test]
fn empty_seed_list_is_a_config_error() {
    let job = tiny_io_job();
    let err = Runner::new(&job, cfg(1)).seeds(&[]).execute().unwrap_err();
    assert!(matches!(err, RunError::Config(_)), "{err}");
}

#[test]
fn sink_with_multiple_seeds_is_a_config_error() {
    let job = tiny_io_job();
    let mut sink = NullSink;
    let err = Runner::new(&job, cfg(1))
        .seeds(&[1, 2])
        .sink(&mut sink)
        .execute()
        .unwrap_err();
    assert!(matches!(err, RunError::Config(_)), "{err}");
}

#[test]
fn execute_one_refuses_multiple_seeds() {
    let job = tiny_io_job();
    let err = Runner::new(&job, cfg(1))
        .seeds(&[1, 2])
        .execute_one()
        .unwrap_err();
    assert!(matches!(err, RunError::Config(_)), "{err}");
}

#[test]
fn reports_come_back_in_seed_order() {
    let job = tiny_io_job();
    let seeds = [11u64, 5, 42];
    let reports = Runner::new(&job, cfg(0)).seeds(&seeds).execute().unwrap();
    let got: Vec<u64> = reports.iter().map(|r| r.seed).collect();
    assert_eq!(got, seeds);
}

#[test]
fn parallel_ensemble_matches_serial() {
    let job = tiny_io_job();
    let seeds = [1u64, 2, 3, 4];
    let serial = Runner::new(&job, cfg(0)).seeds(&seeds).execute().unwrap();
    let parallel = Runner::new(&job, cfg(0))
        .seeds(&seeds)
        .threads(4)
        .execute()
        .unwrap();
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.seed, p.seed);
        assert_eq!(s.trace().records, p.trace().records);
        assert_eq!(s.end, p.end);
    }
}

#[test]
fn streaming_and_buffered_agree_on_the_trace() {
    use events_to_ensembles::trace::Trace;
    let job = tiny_io_job();
    let buffered = Runner::new(&job, cfg(9)).execute_one().unwrap();
    let mut streamed = Trace::new(buffered.trace().meta.clone());
    Runner::new(&job, cfg(9))
        .sink(&mut streamed)
        .execute()
        .unwrap();
    streamed.sort_by_start();
    assert_eq!(buffered.trace().records, streamed.records);
}
