//! The MADbench case study end-to-end: the strided read-ahead bug fires
//! on Franklin, the ensemble detectors find it, and the patch removes it
//! (paper §IV, Figures 4–5).

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, RunReport, Runner};
use events_to_ensembles::stats::diagnosis::{diagnose, Finding};
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::loghist::LogHistogram;
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::MadbenchConfig;

const SCALE: u32 = 32; // 8 tasks, full-size 300 MB matrices

fn run_on(platform: FsConfig, seed: u64) -> (MadbenchConfig, RunReport) {
    let cfg = MadbenchConfig::paper().scaled(SCALE);
    let job = cfg.job();
    let res = Runner::new(
        &job,
        RunConfig::new(platform.scaled(SCALE), seed, "madbench-int"),
    )
    .execute_one()
    .unwrap();
    (cfg, res)
}

#[test]
fn bug_fires_on_franklin_and_not_after_patch_or_on_jaguar() {
    let (_, buggy) = run_on(FsConfig::franklin(), 3);
    let (_, patched) = run_on(FsConfig::franklin_patched(), 3);
    let (_, jaguar) = run_on(FsConfig::jaguar(), 3);
    assert!(buggy.stats.degraded_reads > 0);
    assert_eq!(patched.stats.degraded_reads, 0);
    assert_eq!(jaguar.stats.degraded_reads, 0);
    // Paper's ordering: buggy Franklin ≫ patched Franklin > Jaguar.
    assert!(buggy.wall_secs() > 2.0 * patched.wall_secs());
    assert!(patched.wall_secs() > jaguar.wall_secs());
}

#[test]
fn read_shoulder_appears_only_on_the_buggy_platform() {
    let (_, buggy) = run_on(FsConfig::franklin(), 7);
    let (_, patched) = run_on(FsConfig::franklin_patched(), 7);
    let f_buggy = diagnose(buggy.trace());
    let f_patched = diagnose(patched.trace());
    assert!(
        f_buggy.iter().any(|f| matches!(
            f,
            Finding::RightShoulder {
                kind: CallKind::Read,
                ..
            }
        )),
        "{f_buggy:?}"
    );
    assert!(
        !f_patched.iter().any(|f| matches!(
            f,
            Finding::RightShoulder {
                kind: CallKind::Read,
                ..
            }
        )),
        "{f_patched:?}"
    );
}

#[test]
fn middle_reads_deteriorate_progressively() {
    let (cfg, buggy) = run_on(FsConfig::franklin(), 5);
    let groups = cfg.middle_reads_by_index(buggy.trace());
    assert_eq!(groups.len(), cfg.n_matrices as usize);
    let medians: Vec<f64> = groups
        .iter()
        .map(|g| EmpiricalDist::new(g).median())
        .collect();
    // Reads 4..8 slower than reads 1..3 (first strided trigger at 4),
    // and the last read is the worst (growing erroneous window).
    let early = medians[..3]
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        medians[5..].iter().all(|&m| m > early),
        "late reads must exceed early ones: {medians:?}"
    );
    let last = *medians.last().unwrap();
    assert!(
        last >= medians[3],
        "deterioration should not reverse: {medians:?}"
    );
}

#[test]
fn write_ensembles_similar_but_read_ensembles_differ_across_platforms() {
    // Paper: "the two write distributions display similar performance
    // characteristics, while the read distributions show a markedly
    // different pattern from each other."
    let (_, franklin) = run_on(FsConfig::franklin(), 9);
    let (_, jaguar) = run_on(FsConfig::jaguar(), 9);
    let w_f = EmpiricalDist::new(&franklin.trace().durations_of(CallKind::Write));
    let w_j = EmpiricalDist::new(&jaguar.trace().durations_of(CallKind::Write));
    let r_f = EmpiricalDist::new(&franklin.trace().durations_of(CallKind::Read));
    let r_j = EmpiricalDist::new(&jaguar.trace().durations_of(CallKind::Read));
    let write_gap = w_f.quantile(0.95) / w_j.quantile(0.95);
    let read_gap = r_f.quantile(0.95) / r_j.quantile(0.95);
    assert!(
        read_gap > 2.0 * write_gap,
        "reads must separate the platforms far more than writes: \
         read {read_gap:.2} vs write {write_gap:.2}"
    );
}

#[test]
fn log_histogram_shows_the_slow_read_band() {
    let (_, buggy) = run_on(FsConfig::franklin(), 11);
    let reads = buggy.trace().durations_of(CallKind::Read);
    let hist = LogHistogram::from_samples(&reads, 60);
    // A material fraction of reads live beyond 30 s (the paper's
    // "slowest read() calls vary from 30 to 500 seconds").
    let tail = hist.tail_fraction(30.0);
    assert!(tail > 0.02, "slow-read band missing: {tail}");
    // And the patched run has essentially nothing out there.
    let (_, patched) = run_on(FsConfig::franklin_patched(), 11);
    let hist_p = LogHistogram::from_samples(&patched.trace().durations_of(CallKind::Read), 60);
    assert!(hist_p.tail_fraction(120.0) < 0.01);
}

#[test]
fn no_lock_conflicts_in_madbench() {
    // Exclusive per-task regions + alignment gaps: the paper's MADbench
    // problem is read-ahead, never extent locking.
    let (_, buggy) = run_on(FsConfig::franklin(), 13);
    assert_eq!(buggy.lock_stats.contended, 0);
}
