//! End-to-end IOR pipeline: workload → simulator → trace → ensemble
//! statistics, asserting the paper's Figure 1/2 structure at test scale.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{Job, RunConfig, RunReport, Runner};
use events_to_ensembles::stats::distance::ks_statistic;
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::order_stats;
use events_to_ensembles::stats::rates::write_rate_curve;
use events_to_ensembles::trace::phase::{barrier_wait_fraction, phase_summaries};
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::IorConfig;

fn scaled_platform() -> FsConfig {
    FsConfig::franklin().scaled(64)
}

fn run(job: &Job, cfg: RunConfig) -> RunReport {
    Runner::new(job, cfg).execute_one().unwrap()
}

fn ior(reps: u32, segments: u32) -> IorConfig {
    IorConfig {
        segments,
        repetitions: reps,
        ..IorConfig::paper_fig1().scaled(64) // 16 tasks × 512 MB
    }
}

#[test]
fn trace_is_well_formed_and_conserves_bytes() {
    let cfg = ior(2, 1);
    let res = run(&cfg.job(), RunConfig::new(scaled_platform(), 1, "ior-int"));
    res.trace().validate().unwrap();
    assert_eq!(res.stats.bytes_written, cfg.total_bytes());
    assert_eq!(
        res.trace().bytes_of(CallKind::Write),
        cfg.total_bytes(),
        "trace and simulator must agree on bytes"
    );
    // Every rank produced the same op sequence length.
    for rank in 0..cfg.tasks {
        assert_eq!(
            res.trace().of_rank(rank).count(),
            res.trace().of_rank(0).count()
        );
    }
}

#[test]
fn phases_are_synchronous_and_barriers_cost_time() {
    let cfg = ior(3, 1);
    let res = run(
        &cfg.job(),
        RunConfig::new(scaled_platform(), 2, "ior-phases"),
    );
    let phases = phase_summaries(res.trace());
    // Open barrier phase + 3 write phases + close phase.
    assert!(phases.len() >= 4, "{}", phases.len());
    // Write phases move the full per-phase volume.
    let per_phase = cfg.tasks as u64 * cfg.block_bytes;
    let write_phases: Vec<_> = phases
        .iter()
        .filter(|p| p.bytes_written >= per_phase)
        .collect();
    assert_eq!(write_phases.len(), 3);
    // Somebody always waits at a barrier (the order-statistics tax).
    assert!(barrier_wait_fraction(res.trace()) > 0.01);
    // The phase ends at its slowest op (within barrier-exit jitter).
    for p in &write_phases {
        assert!(p.slowest_op.as_secs_f64() <= p.duration().as_secs_f64() + 1e-6);
        assert!(p.slowest_op.as_secs_f64() > 0.5 * p.duration().as_secs_f64());
    }
}

#[test]
fn distribution_reproduces_across_runs_while_traces_differ() {
    let cfg = ior(2, 1);
    let base = RunConfig::new(scaled_platform(), 0, "ior-ens");
    let job = cfg.job();
    let traces: Vec<_> = Runner::new(&job, base)
        .seeds(&[11, 22, 33])
        .execute()
        .unwrap()
        .into_iter()
        .map(RunReport::into_trace)
        .collect();
    let dists: Vec<EmpiricalDist> = traces
        .iter()
        .map(|t| EmpiricalDist::new(&t.durations_of(CallKind::Write)))
        .collect();
    // Traces differ event-by-event...
    assert_ne!(traces[0].records, traces[1].records);
    // ...but the ensembles nearly coincide (paper Fig 1c claim).
    for i in 0..dists.len() {
        for j in i + 1..dists.len() {
            let ks = ks_statistic(&dists[i], &dists[j]);
            assert!(ks < 0.35, "runs {i},{j} diverge: KS {ks}");
        }
    }
}

#[test]
fn splitting_transfers_narrows_totals_and_helps_the_worst_case() {
    let k1 = run(&ior(1, 1).job(), RunConfig::new(scaled_platform(), 5, "k1"));
    let k8 = run(&ior(1, 8).job(), RunConfig::new(scaled_platform(), 5, "k8"));
    let totals = |res: &RunReport| {
        let mut t = vec![0.0f64; res.trace().meta.ranks as usize];
        for r in res.trace().of_kind(CallKind::Write) {
            t[r.rank as usize] += r.secs();
        }
        EmpiricalDist::new(&t)
    };
    let d1 = totals(&k1);
    let d8 = totals(&k8);
    assert!(
        d8.cv().unwrap() < d1.cv().unwrap(),
        "LLN: cv must shrink ({} -> {})",
        d1.cv().unwrap(),
        d8.cv().unwrap()
    );
    assert!(
        d8.max() < d1.max() * 1.05,
        "worst case must not get worse: {} vs {}",
        d8.max(),
        d1.max()
    );
}

#[test]
fn order_statistics_predict_the_phase_time() {
    let cfg = ior(1, 1);
    let res = run(&cfg.job(), RunConfig::new(scaled_platform(), 9, "ostat"));
    let d = EmpiricalDist::new(&res.trace().durations_of(CallKind::Write));
    // The observed slowest write is the N-th order statistic; under the
    // empirical measure its expectation is below the sample max and above
    // the p75.
    let emax = order_stats::expected_max(&d, cfg.tasks);
    assert!(emax <= d.max() + 1e-9);
    assert!(emax >= d.quantile(0.75));
    // The write phase's wall time is governed by that slowest op.
    let phases = phase_summaries(res.trace());
    let wp = phases.iter().find(|p| p.bytes_written > 0).unwrap();
    let ratio = wp.slowest_op.as_secs_f64() / d.max();
    assert!((ratio - 1.0).abs() < 1e-9);
}

#[test]
fn rate_curve_conserves_volume() {
    let cfg = ior(2, 2);
    let res = run(&cfg.job(), RunConfig::new(scaled_platform(), 4, "rates"));
    let curve = write_rate_curve(res.trace(), res.wall_secs() / 64.0);
    let mb: f64 = curve.points.iter().map(|&(_, r)| r * curve.dt).sum();
    let expect = res.stats.bytes_written as f64 / 1e6;
    assert!(
        (mb - expect).abs() < 1e-6 * expect,
        "curve {} MB vs written {} MB",
        mb,
        expect
    );
    assert!(curve.peak() >= curve.average());
}
