//! The fast-trace-plane contract, property-tested end to end:
//!
//! * JSONL ↔ ptb conversion preserves every `Record` field and the
//!   `TraceMeta`, for arbitrary records across the full field ranges.
//! * The hand-rolled JSONL scanner agrees with `serde_json` on
//!   arbitrary records — and on malformed lines, where its fallback
//!   must reproduce the strict parser's accept/reject decision exactly.
//! * Truncated or bit-flipped ptb bytes are rejected with a clean
//!   `io::Error`, never a panic or a silently short read.
//! * Batched channel transport and parallel ptb ingestion produce
//!   snapshots bit-identical to the sequential per-record path, and the
//!   online diagnoser reaches identical findings from either encoding
//!   of a real simulated trace.

use events_to_ensembles::ingest::{
    stream_file, stream_jsonl, stream_ptb, stream_ptb_parallel, DiagnoserConfig, IngestConfig,
    IngestPipeline, StreamDiagnoser,
};
use events_to_ensembles::trace::io::{read_jsonl, write_jsonl, TraceFormat};
use events_to_ensembles::trace::jsonl::{parse_record, parse_record_fast};
use events_to_ensembles::trace::ptb::{read_ptb, write_ptb};
use events_to_ensembles::trace::{CallKind, Record, RecordSink, Trace, TraceMeta};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (
        0u32..u32::MAX,
        0usize..12,
        -2i32..1 << 20,
        (0u64..u64::MAX, 0u64..u64::MAX),
        (0u64..u64::MAX, 0u64..u64::MAX),
        0u32..1 << 16,
    )
        .prop_map(
            |(rank, call, fd, (offset, bytes), (start_ns, end_ns), phase)| Record {
                rank,
                call: CallKind::ALL[call],
                fd,
                offset,
                bytes,
                start_ns,
                end_ns,
                phase,
            },
        )
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(arb_record(), 0..300),
        0u32..4096,
        0u64..u64::MAX,
    )
        .prop_map(|(records, ranks, seed)| {
            let mut t = Trace::new(TraceMeta {
                experiment: "prop".into(),
                platform: "test".into(),
                ranks,
                seed,
            });
            for r in records {
                t.push(r);
            }
            t
        })
}

proptest! {
    #[test]
    fn jsonl_and_ptb_round_trips_preserve_everything(t in arb_trace()) {
        let mut jsonl = Vec::new();
        write_jsonl(&t, &mut jsonl).unwrap();
        let from_jsonl = read_jsonl(std::io::Cursor::new(&jsonl)).unwrap();
        prop_assert_eq!(&from_jsonl.meta, &t.meta);
        prop_assert_eq!(&from_jsonl.records, &t.records);

        let mut ptb = Vec::new();
        write_ptb(&t, &mut ptb).unwrap();
        let from_ptb = read_ptb(std::io::Cursor::new(&ptb)).unwrap();
        prop_assert_eq!(&from_ptb.meta, &t.meta);
        prop_assert_eq!(&from_ptb.records, &t.records);
    }

    #[test]
    fn fast_parser_accepts_all_serialized_records(r in arb_record()) {
        let line = serde_json::to_string(&r).unwrap();
        // Canonical writer output must take the fast path and agree.
        let fast = parse_record_fast(&line);
        prop_assert_eq!(fast.clone(), Some(r.clone()));
        prop_assert_eq!(parse_record(&line).unwrap(), r);
    }

    #[test]
    fn fast_parser_agrees_with_serde_on_mangled_lines(
        r in arb_record(),
        cut in 0usize..200,
        flip in 0usize..200,
        bit in 0u8..7,
    ) {
        // Mangle a valid line by truncation and a byte tweak; whatever
        // comes out, fast-path accepts only if serde accepts with the
        // same value, and the public parser matches serde exactly.
        let line = serde_json::to_string(&r).unwrap();
        let mut bytes = line.clone().into_bytes();
        bytes.truncate(cut.min(bytes.len()));
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        if let Ok(mangled) = String::from_utf8(bytes) {
            let strict = serde_json::from_str::<Record>(&mangled).ok();
            if let Some(fast) = parse_record_fast(&mangled) {
                prop_assert_eq!(Some(fast), strict.clone(), "fast diverged on {}", mangled);
            }
            prop_assert_eq!(parse_record(&mangled).ok(), strict, "fallback diverged on {}", mangled);
        }
    }

    #[test]
    fn corrupt_ptb_is_an_error_never_a_panic(
        t in arb_trace(),
        cut in 0usize..20_000,
        flip in 0usize..20_000,
        bit in 0u8..8,
    ) {
        let mut clean = Vec::new();
        write_ptb(&t, &mut clean).unwrap();

        // Truncation at any depth: error, not a short read.
        let cut = cut % clean.len();
        if cut < clean.len() {
            prop_assert!(read_ptb(std::io::Cursor::new(&clean[..cut])).is_err());
        }

        // One flipped bit anywhere: either a clean error, or (only when
        // the flip lands in the meta-length field padding-compatible
        // way) never silently different records.
        let mut bent = clean.clone();
        let i = flip % bent.len();
        bent[i] ^= 1 << bit;
        match read_ptb(std::io::Cursor::new(&bent)) {
            Err(_) => {}
            Ok(back) => {
                // A surviving read must mean the flip was immaterial —
                // which can't happen: every payload byte is CRC'd and
                // every structural byte changes framing.
                prop_assert_eq!(back.records, t.records, "bit flip at {} read differently", i);
            }
        }
    }
}

/// Collect a sink stream into (records, phase_ends) for parity checks.
#[derive(Default)]
struct Collector {
    records: Vec<Record>,
    phase_ends: Vec<u32>,
    finished: bool,
}

impl RecordSink for Collector {
    fn push(&mut self, r: &Record) {
        self.records.push(r.clone());
    }
    fn phase_end(&mut self, p: u32) {
        self.phase_ends.push(p);
    }
    fn finish(&mut self) {
        self.finished = true;
    }
}

/// A real simulated trace (scaled-down IOR fig1 run) for end-to-end
/// format-parity checks.
fn ior_trace() -> Trace {
    use events_to_ensembles::fs::FsConfig;
    use events_to_ensembles::mpi::{RunConfig, Runner};
    use events_to_ensembles::workloads::IorConfig;
    let cfg = IorConfig {
        repetitions: 2,
        ..IorConfig::paper_fig1().scaled(64)
    };
    let job = cfg.job();
    let res = Runner::new(
        &job,
        RunConfig::new(FsConfig::franklin().scaled(64), 7, "fmt-parity"),
    )
    .execute_one()
    .unwrap();
    res.trace().clone()
}

#[test]
fn jsonl_and_ptb_streams_are_event_identical_on_a_real_trace() {
    let t = ior_trace();
    let mut jsonl = Vec::new();
    write_jsonl(&t, &mut jsonl).unwrap();
    let mut ptb = Vec::new();
    write_ptb(&t, &mut ptb).unwrap();
    // ptb earns its keep: smaller than the text encoding.
    assert!(
        ptb.len() < jsonl.len(),
        "ptb {} >= jsonl {}",
        ptb.len(),
        jsonl.len()
    );

    let mut a = Collector::default();
    let (meta_a, n_a) = stream_jsonl(std::io::Cursor::new(&jsonl), &mut a).unwrap();
    let mut b = Collector::default();
    let (meta_b, n_b) = stream_ptb(std::io::Cursor::new(&ptb), &mut b).unwrap();
    assert_eq!(meta_a, meta_b);
    assert_eq!(n_a, n_b);
    assert_eq!(a.records, b.records);
    assert_eq!(a.phase_ends, b.phase_ends);
    assert!(a.finished && b.finished);
}

#[test]
fn diagnoser_and_snapshot_parity_across_formats_and_transport() {
    let t = ior_trace();
    let dir = std::env::temp_dir().join("pio_trace_formats_parity");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl_path = dir.join("t.jsonl");
    let ptb_path = dir.join("t.ptb");
    events_to_ensembles::trace::io::save_as(&t, &jsonl_path, TraceFormat::Jsonl).unwrap();
    events_to_ensembles::trace::io::save_as(&t, &ptb_path, TraceFormat::Ptb).unwrap();

    // One diagnoser + pipeline run per on-disk format, via the sniffing
    // entry point — verdicts and snapshots must be bit-identical.
    let run = |path: &std::path::Path| {
        let mut diagnoser = StreamDiagnoser::new(DiagnoserConfig::default());
        let pipeline = IngestPipeline::new(IngestConfig::default());
        {
            let mut tee = events_to_ensembles::trace::Tee(&mut diagnoser, pipeline.sink());
            stream_file(path, &mut tee).unwrap();
        }
        (pipeline.finish(), format!("{:?}", diagnoser.findings()))
    };
    let (snap_jsonl, findings_jsonl) = run(&jsonl_path);
    let (snap_ptb, findings_ptb) = run(&ptb_path);
    assert_eq!(snap_jsonl, snap_ptb);
    assert_eq!(findings_jsonl, findings_ptb);

    // Parallel block-split ingestion: same snapshot again.
    let pipeline = IngestPipeline::new(IngestConfig::default());
    let (meta, n) = stream_ptb_parallel(&ptb_path, &pipeline).unwrap();
    assert_eq!(meta, t.meta);
    assert_eq!(n as usize, t.records.len());
    assert_eq!(pipeline.finish(), snap_ptb);

    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&ptb_path).ok();
}
