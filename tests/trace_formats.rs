//! The fast-trace-plane contract, property-tested end to end:
//!
//! * JSONL ↔ ptb ↔ ptb2 conversion preserves every `Record` field and
//!   the `TraceMeta`, for arbitrary records across the full field
//!   ranges.
//! * The hand-rolled JSONL scanner agrees with `serde_json` on
//!   arbitrary records — and on malformed lines, where its fallback
//!   must reproduce the strict parser's accept/reject decision exactly.
//! * Truncated or bit-flipped ptb / ptb2 bytes are rejected with a
//!   clean `io::Error`, never a panic or a silently short read.
//! * Batched channel transport and parallel ingestion (1, 2, and 8
//!   worker threads) produce snapshots bit-identical to the sequential
//!   per-record path, and the online diagnoser reaches identical
//!   findings from every encoding of a real simulated trace.
//! * ptb2's columnar compression earns its keep: ≥2× smaller than ptb
//!   v1 on a real trace.

use events_to_ensembles::ingest::{
    stream_file, stream_file_parallel, stream_jsonl, stream_ptb, stream_ptb2, DiagnoserConfig,
    IngestConfig, IngestPipeline, StreamDiagnoser,
};
use events_to_ensembles::trace::io::{read_jsonl, write_jsonl, TraceFormat};
use events_to_ensembles::trace::jsonl::{parse_record, parse_record_fast};
use events_to_ensembles::trace::ptb::{read_ptb, write_ptb};
use events_to_ensembles::trace::ptb2::{read_ptb2, write_ptb2};
use events_to_ensembles::trace::{CallKind, Record, RecordSink, Trace, TraceMeta};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (
        0u32..u32::MAX,
        0usize..12,
        -2i32..1 << 20,
        (0u64..u64::MAX, 0u64..u64::MAX),
        (0u64..u64::MAX, 0u64..u64::MAX),
        0u32..1 << 16,
    )
        .prop_map(
            |(rank, call, fd, (offset, bytes), (start_ns, end_ns), phase)| Record {
                rank,
                call: CallKind::ALL[call],
                fd,
                offset,
                bytes,
                start_ns,
                end_ns,
                phase,
            },
        )
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(arb_record(), 0..300),
        0u32..4096,
        0u64..u64::MAX,
    )
        .prop_map(|(records, ranks, seed)| {
            let mut t = Trace::new(TraceMeta {
                experiment: "prop".into(),
                platform: "test".into(),
                ranks,
                seed,
            });
            for r in records {
                t.push(r);
            }
            t
        })
}

proptest! {
    #[test]
    fn jsonl_and_ptb_round_trips_preserve_everything(t in arb_trace()) {
        let mut jsonl = Vec::new();
        write_jsonl(&t, &mut jsonl).unwrap();
        let from_jsonl = read_jsonl(std::io::Cursor::new(&jsonl)).unwrap();
        prop_assert_eq!(&from_jsonl.meta, &t.meta);
        prop_assert_eq!(&from_jsonl.records, &t.records);

        let mut ptb = Vec::new();
        write_ptb(&t, &mut ptb).unwrap();
        let from_ptb = read_ptb(std::io::Cursor::new(&ptb)).unwrap();
        prop_assert_eq!(&from_ptb.meta, &t.meta);
        prop_assert_eq!(&from_ptb.records, &t.records);

        let mut ptb2 = Vec::new();
        write_ptb2(&t, &mut ptb2).unwrap();
        let from_ptb2 = read_ptb2(std::io::Cursor::new(&ptb2)).unwrap();
        prop_assert_eq!(&from_ptb2.meta, &t.meta);
        prop_assert_eq!(&from_ptb2.records, &t.records);
    }

    #[test]
    fn ptb_v1_v2_convert_parity(t in arb_trace()) {
        // v1 -> decode -> v2 -> decode must be the identity: the two
        // block layouts encode exactly the same record model.
        let mut v1 = Vec::new();
        write_ptb(&t, &mut v1).unwrap();
        let decoded_v1 = read_ptb(std::io::Cursor::new(&v1)).unwrap();
        let mut v2 = Vec::new();
        write_ptb2(&decoded_v1, &mut v2).unwrap();
        let decoded_v2 = read_ptb2(std::io::Cursor::new(&v2)).unwrap();
        prop_assert_eq!(&decoded_v2.meta, &t.meta);
        prop_assert_eq!(&decoded_v2.records, &t.records);
    }

    #[test]
    fn fast_parser_accepts_all_serialized_records(r in arb_record()) {
        let line = serde_json::to_string(&r).unwrap();
        // Canonical writer output must take the fast path and agree.
        let fast = parse_record_fast(&line);
        prop_assert_eq!(fast.clone(), Some(r.clone()));
        prop_assert_eq!(parse_record(&line).unwrap(), r);
    }

    #[test]
    fn fast_parser_agrees_with_serde_on_mangled_lines(
        r in arb_record(),
        cut in 0usize..200,
        flip in 0usize..200,
        bit in 0u8..7,
    ) {
        // Mangle a valid line by truncation and a byte tweak; whatever
        // comes out, fast-path accepts only if serde accepts with the
        // same value, and the public parser matches serde exactly.
        let line = serde_json::to_string(&r).unwrap();
        let mut bytes = line.clone().into_bytes();
        bytes.truncate(cut.min(bytes.len()));
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        if let Ok(mangled) = String::from_utf8(bytes) {
            let strict = serde_json::from_str::<Record>(&mangled).ok();
            if let Some(fast) = parse_record_fast(&mangled) {
                prop_assert_eq!(Some(fast), strict.clone(), "fast diverged on {}", mangled);
            }
            prop_assert_eq!(parse_record(&mangled).ok(), strict, "fallback diverged on {}", mangled);
        }
    }

    #[test]
    fn corrupt_ptb_is_an_error_never_a_panic(
        t in arb_trace(),
        cut in 0usize..20_000,
        flip in 0usize..20_000,
        bit in 0u8..8,
    ) {
        let mut clean = Vec::new();
        write_ptb(&t, &mut clean).unwrap();

        // Truncation at any depth: error, not a short read.
        let cut = cut % clean.len();
        if cut < clean.len() {
            prop_assert!(read_ptb(std::io::Cursor::new(&clean[..cut])).is_err());
        }

        // One flipped bit anywhere: either a clean error, or (only when
        // the flip lands in the meta-length field padding-compatible
        // way) never silently different records.
        let mut bent = clean.clone();
        let i = flip % bent.len();
        bent[i] ^= 1 << bit;
        match read_ptb(std::io::Cursor::new(&bent)) {
            Err(_) => {}
            Ok(back) => {
                // A surviving read must mean the flip was immaterial —
                // which can't happen: every payload byte is CRC'd and
                // every structural byte changes framing.
                prop_assert_eq!(back.records, t.records, "bit flip at {} read differently", i);
            }
        }
    }

    #[test]
    fn corrupt_ptb2_is_an_error_never_a_panic(
        t in arb_trace(),
        cut in 0usize..20_000,
        flip in 0usize..20_000,
        bit in 0u8..8,
    ) {
        let mut clean = Vec::new();
        write_ptb2(&t, &mut clean).unwrap();

        // Truncation at any depth: error, not a short read.
        let cut = cut % clean.len();
        if cut < clean.len() {
            prop_assert!(read_ptb2(std::io::Cursor::new(&clean[..cut])).is_err());
        }

        // One flipped bit anywhere: a clean error or an immaterial flip
        // — never silently different records, and never a panic in the
        // columnar decoders (all decode arithmetic is wrapping).
        let mut bent = clean.clone();
        let i = flip % bent.len();
        bent[i] ^= 1 << bit;
        match read_ptb2(std::io::Cursor::new(&bent)) {
            Err(_) => {}
            Ok(back) => {
                prop_assert_eq!(back.records, t.records, "bit flip at {} read differently", i);
            }
        }
    }
}

/// Collect a sink stream into (records, phase_ends) for parity checks.
#[derive(Default)]
struct Collector {
    records: Vec<Record>,
    phase_ends: Vec<u32>,
    finished: bool,
}

impl RecordSink for Collector {
    fn push(&mut self, r: &Record) {
        self.records.push(r.clone());
    }
    fn phase_end(&mut self, p: u32) {
        self.phase_ends.push(p);
    }
    fn finish(&mut self) {
        self.finished = true;
    }
}

/// A real simulated trace (scaled-down IOR fig1 run) for end-to-end
/// format-parity checks.
fn ior_trace() -> Trace {
    use events_to_ensembles::fs::FsConfig;
    use events_to_ensembles::mpi::{RunConfig, Runner};
    use events_to_ensembles::workloads::IorConfig;
    let cfg = IorConfig {
        repetitions: 2,
        ..IorConfig::paper_fig1().scaled(64)
    };
    let job = cfg.job();
    let res = Runner::new(
        &job,
        RunConfig::new(FsConfig::franklin().scaled(64), 7, "fmt-parity"),
    )
    .execute_one()
    .unwrap();
    res.trace().clone()
}

#[test]
fn all_format_streams_are_event_identical_on_a_real_trace() {
    let t = ior_trace();
    let mut jsonl = Vec::new();
    write_jsonl(&t, &mut jsonl).unwrap();
    let mut ptb = Vec::new();
    write_ptb(&t, &mut ptb).unwrap();
    let mut ptb2 = Vec::new();
    write_ptb2(&t, &mut ptb2).unwrap();
    // The binary formats earn their keep: ptb smaller than the text
    // encoding, and columnar ptb2 at least 2x smaller again than ptb's
    // fixed 45-byte frames on a real simulated trace.
    assert!(
        ptb.len() < jsonl.len(),
        "ptb {} >= jsonl {}",
        ptb.len(),
        jsonl.len()
    );
    assert!(
        ptb2.len() * 2 <= ptb.len(),
        "ptb2 {} not >=2x smaller than ptb {}",
        ptb2.len(),
        ptb.len()
    );

    let mut a = Collector::default();
    let (meta_a, n_a) = stream_jsonl(std::io::Cursor::new(&jsonl), &mut a).unwrap();
    let mut b = Collector::default();
    let (meta_b, n_b) = stream_ptb(std::io::Cursor::new(&ptb), &mut b).unwrap();
    let mut c = Collector::default();
    let (meta_c, n_c) = stream_ptb2(std::io::Cursor::new(&ptb2), &mut c).unwrap();
    assert_eq!(meta_a, meta_b);
    assert_eq!(meta_a, meta_c);
    assert_eq!(n_a, n_b);
    assert_eq!(n_a, n_c);
    assert_eq!(a.records, b.records);
    assert_eq!(a.records, c.records);
    assert_eq!(a.phase_ends, b.phase_ends);
    assert_eq!(a.phase_ends, c.phase_ends);
    assert!(a.finished && b.finished && c.finished);
}

#[test]
fn diagnoser_and_snapshot_parity_across_formats_and_transport() {
    let t = ior_trace();
    let dir = std::env::temp_dir().join("pio_trace_formats_parity");
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<_> = TraceFormat::ALL
        .iter()
        .map(|&format| {
            let p = dir.join(format!("t.{}", format.name()));
            events_to_ensembles::trace::io::save_as(&t, &p, format).unwrap();
            p
        })
        .collect();

    // One diagnoser + pipeline run per on-disk format, via the sniffing
    // entry point — verdicts and snapshots must be bit-identical.
    let run = |path: &std::path::Path| {
        let mut diagnoser = StreamDiagnoser::new(DiagnoserConfig::default());
        let pipeline = IngestPipeline::new(IngestConfig::default());
        {
            let mut tee = events_to_ensembles::trace::Tee(&mut diagnoser, pipeline.sink());
            stream_file(path, &mut tee).unwrap();
        }
        (pipeline.finish(), format!("{:?}", diagnoser.findings()))
    };
    let (snap_ref, findings_ref) = run(&paths[0]);
    for p in &paths[1..] {
        let (snap, findings) = run(p);
        assert_eq!(snap, snap_ref, "{p:?}");
        assert_eq!(findings, findings_ref, "{p:?}");
    }

    // Parallel block-split ingestion at each pool size: every format's
    // parallel snapshot must be bit-identical to a sequential ingest
    // with the same worker count (per-worker f64 accumulation order is
    // part of the snapshot, so the baseline is per pool size).
    for workers in [1usize, 2, 8] {
        let cfg = IngestConfig {
            workers,
            ..IngestConfig::default()
        };
        let sequential = {
            let pipeline = IngestPipeline::new(cfg.clone());
            let mut sink = pipeline.sink();
            stream_file(&paths[0], &mut sink).unwrap();
            drop(sink);
            pipeline.finish()
        };
        for path in &paths {
            let pipeline = IngestPipeline::new(cfg.clone());
            let (meta, n) = stream_file_parallel(path, &pipeline).unwrap();
            assert_eq!(meta, t.meta, "{path:?} workers={workers}");
            assert_eq!(n as usize, t.records.len(), "{path:?} workers={workers}");
            assert_eq!(pipeline.finish(), sequential, "{path:?} workers={workers}");
        }
    }

    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}
