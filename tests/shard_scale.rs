//! Scale proof for the sharded engine: a 100 000-rank IOR shared-file
//! write runs as a routine (non-ignored) test, and the shard count is
//! still invisible at that size — the report from an 8-shard run is
//! bit-identical to a single shard's.
//!
//! The classic serial loop was never asked to hold a run this large;
//! the sharded engine's per-node mini-DES keeps per-heap sizes bounded
//! by ranks-per-node, so memory and time stay linear in rank count.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::workloads::IorConfig;

/// 100k ranks, one 4 MiB block each into a single shared file: big
/// enough to prove scale, small enough per rank that the run stays
/// well under a minute in debug builds.
fn ior_100k() -> IorConfig {
    IorConfig {
        tasks: 100_000,
        block_bytes: 4 << 20,
        segments: 1,
        repetitions: 1,
        read_back: false,
        file_per_process: false,
    }
}

#[test]
fn hundred_thousand_ranks_run_and_shard_invariantly() {
    let ior = ior_100k();
    let job = ior.job();
    let fs = FsConfig::franklin();

    let run = |shards: u32| {
        Runner::new(&job, RunConfig::new(fs.clone(), 4242, "shard-scale-100k"))
            .shards(shards)
            .execute_one()
            .unwrap_or_else(|e| panic!("100k-rank run @ {shards} shards: {e}"))
    };

    let base = run(1);

    // Every rank completed its full program: Open, Barrier, WriteAt,
    // Barrier, Flush, Close — six records each.
    assert_eq!(base.trace().records.len(), 6 * 100_000);
    assert_eq!(base.stats.bytes_written, 100_000 * (4 << 20) as u64);
    assert_eq!(base.stats.bytes_read, 0);
    assert!(base.events > 0 && base.end.as_secs_f64() > 0.0);

    // The shard count is a throughput knob, never a semantic one —
    // even at this size.
    let wide = run(8);
    assert_eq!(base.trace().records, wide.trace().records);
    assert_eq!(base.events, wide.events);
    assert_eq!(base.end, wide.end);
    assert_eq!(base.stats, wide.stats);
    assert_eq!(base.lock_stats, wide.lock_stats);
    assert_eq!(base.util, wide.util);
}
