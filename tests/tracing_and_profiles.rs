//! Cross-crate trace-plumbing checks: serialization round-trips on real
//! simulator output, the online-profiling mode agreeing with full traces,
//! and the IPM summary reflecting the run.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::trace::io as trace_io;
use events_to_ensembles::trace::summary;
use events_to_ensembles::trace::{CallKind, OnlineProfile, Trace};
use events_to_ensembles::workloads::IorConfig;

fn small_run(seed: u64) -> Trace {
    let cfg = IorConfig {
        tasks: 8,
        block_bytes: 64 << 20,
        segments: 2,
        repetitions: 2,
        read_back: true,
        file_per_process: false,
    };
    let job = cfg.job();
    Runner::new(
        &job,
        RunConfig::new(FsConfig::franklin().scaled(128), seed, "trace-int"),
    )
    .execute_one()
    .unwrap()
    .into_trace()
}

#[test]
fn jsonl_round_trip_preserves_a_real_trace() {
    let trace = small_run(1);
    let mut buf = Vec::new();
    trace_io::write_jsonl(&trace, &mut buf).unwrap();
    let back = trace_io::read_jsonl(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(back.meta, trace.meta);
    assert_eq!(back.records, trace.records);
    back.validate().unwrap();
}

#[test]
fn csv_export_row_count_matches() {
    let trace = small_run(2);
    let mut buf = Vec::new();
    trace_io::write_csv(&trace, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), trace.records.len() + 1);
}

#[test]
fn online_profile_matches_the_full_trace() {
    // The paper's future-work mode: collect only the distribution. It
    // must agree with post-hoc analysis of the full trace.
    let trace = small_run(3);
    let mut profile = OnlineProfile::default();
    profile.record_all(&trace.records);
    for kind in [CallKind::Write, CallKind::Read, CallKind::Barrier] {
        assert_eq!(
            profile.count(kind) as usize,
            trace.of_kind(kind).count(),
            "{kind:?} count"
        );
        assert_eq!(profile.bytes(kind), trace.bytes_of(kind), "{kind:?} bytes");
    }
    // Quantiles agree within log-bin resolution (bins are ~1.3x wide).
    let d = EmpiricalDist::new(&trace.durations_of(CallKind::Write));
    let q = profile.quantile(CallKind::Write, 0.5).unwrap();
    assert!(
        q > d.median() / 2.0 && q < d.median() * 2.0,
        "profile median {q} vs exact {}",
        d.median()
    );
}

#[test]
fn per_rank_profiles_merge_to_the_global_one() {
    let trace = small_run(4);
    let mut global = OnlineProfile::default();
    global.record_all(&trace.records);
    // Build one profile per rank (as each rank's IPM would) and reduce.
    let mut merged = OnlineProfile::default();
    for rank in 0..trace.meta.ranks {
        let mut p = OnlineProfile::default();
        for r in trace.of_rank(rank) {
            p.record(r);
        }
        merged.merge(&p);
    }
    for kind in CallKind::ALL {
        assert_eq!(merged.count(kind), global.count(kind));
        assert_eq!(merged.histogram(kind), global.histogram(kind));
    }
}

#[test]
fn summary_reflects_the_run() {
    let trace = small_run(5);
    let s = summary::summarize(&trace);
    assert_eq!(s.ranks, 8);
    let w = s
        .kinds
        .iter()
        .find(|k| k.kind == CallKind::Write)
        .expect("writes in summary");
    assert_eq!(w.count as usize, trace.of_kind(CallKind::Write).count());
    assert!(w.min_s <= w.mean_s && w.mean_s <= w.max_s);
    let text = summary::render(&trace);
    assert!(text.contains("write"));
    assert!(text.contains("read"));
    assert!(text.contains("barrier"));
}

#[test]
fn file_round_trip_on_disk() {
    let trace = small_run(6);
    let dir = std::env::temp_dir().join("pio_int_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    trace_io::save(&trace, &path).unwrap();
    let back = trace_io::load(&path).unwrap();
    assert_eq!(back.records.len(), trace.records.len());
    std::fs::remove_file(&path).ok();
}
