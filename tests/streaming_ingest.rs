//! End-to-end streaming diagnosis: the MADbench read-ahead bug (paper
//! §IV) must be flagged by the online diagnoser *mid-run* — before the
//! trace ends — with the same verdict the batch ensemble analysis
//! reaches on the buffered trace, and the sharded pipeline must hold
//! only O(shards × bins) state while doing it.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::ingest::{
    DiagnoserConfig, IngestConfig, IngestPipeline, StreamDiagnoser, TimedFinding,
};
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::diagnosis::{diagnose, Finding};
use events_to_ensembles::trace::{CallKind, RecordSink, Tee, Trace, TraceMeta};
use events_to_ensembles::workloads::MadbenchConfig;

const SCALE: u32 = 32; // 8 tasks, full-size 300 MB matrices

fn madbench_cfg() -> (events_to_ensembles::mpi::Job, MadbenchConfig) {
    let cfg = MadbenchConfig::paper().scaled(SCALE);
    (cfg.job(), cfg)
}

fn has_read_shoulder(findings: &[Finding]) -> bool {
    findings.iter().any(|f| {
        matches!(
            f,
            Finding::RightShoulder {
                kind: CallKind::Read,
                ..
            }
        )
    })
}

fn timed_read_shoulder(findings: &[TimedFinding]) -> Option<&TimedFinding> {
    findings.iter().find(|t| {
        matches!(
            t.finding,
            Finding::RightShoulder {
                kind: CallKind::Read,
                ..
            }
        )
    })
}

/// Streaming the buggy Franklin run raises the read right-shoulder
/// finding before end-of-run, and the verdict agrees with the batch
/// analysis of the full buffered trace.
#[test]
fn streaming_flags_madbench_bug_before_end_of_run_matching_batch() {
    let (job, _) = madbench_cfg();
    let cfg = RunConfig::new(FsConfig::franklin().scaled(SCALE), 7, "madbench-stream");

    // One simulation, two consumers: the online diagnoser and a buffered
    // trace for the batch reference verdict. The window is sized for this
    // small 8-task run so several windows tumble before the run ends.
    let mut diagnoser = StreamDiagnoser::new(DiagnoserConfig {
        window: 64,
        ..DiagnoserConfig::default()
    });
    let mut trace = Trace::new(TraceMeta {
        experiment: "madbench-stream".into(),
        platform: "franklin".into(),
        ranks: job.ranks(),
        seed: 7,
    });
    {
        let mut tee = Tee(&mut diagnoser, &mut trace);
        Runner::new(&job, cfg)
            .sink(&mut tee)
            .execute_one()
            .expect("streaming run");
    }
    trace.records.sort_by_key(|r| (r.start_ns, r.rank));

    let batch = diagnose(&trace);
    assert!(
        has_read_shoulder(&batch),
        "batch must see the bug: {batch:?}"
    );

    let total = trace.records.len() as u64;
    let timed = timed_read_shoulder(diagnoser.findings())
        .unwrap_or_else(|| panic!("stream must see the bug: {:?}", diagnoser.findings()));
    assert!(
        timed.after_records < total,
        "finding must fire mid-run ({} records in, {} total)",
        timed.after_records,
        total
    );
}

/// The patched platform stays clean in both the streaming and batch
/// analyses — no false alarms from the sketch approximations.
#[test]
fn streaming_stays_clean_on_patched_platform() {
    let (job, _) = madbench_cfg();
    let cfg = RunConfig::new(
        FsConfig::franklin_patched().scaled(SCALE),
        7,
        "madbench-patched-stream",
    );

    let mut diagnoser = StreamDiagnoser::new(DiagnoserConfig::default());
    let res = Runner::new(&job, cfg).execute_one().expect("buffered run");
    for r in &res.trace().records {
        diagnoser.push(r);
    }
    diagnoser.finish();

    let batch = diagnose(res.trace());
    assert!(!has_read_shoulder(&batch), "{batch:?}");
    assert!(
        timed_read_shoulder(diagnoser.findings()).is_none(),
        "{:?}",
        diagnoser.findings()
    );
}

/// The sharded pipeline's snapshot diagnosis agrees with batch on the
/// buggy run, and its state is O(shards × bins): replaying the same
/// stream four times over leaves the footprint unchanged.
#[test]
fn pipeline_snapshot_diagnosis_is_bounded_and_agrees_with_batch() {
    let (job, _) = madbench_cfg();
    let cfg = RunConfig::new(FsConfig::franklin().scaled(SCALE), 7, "madbench-pipeline");

    let pipeline = IngestPipeline::new(IngestConfig::default());
    let res = {
        let mut sink = pipeline.sink();
        Runner::new(&job, cfg.clone())
            .sink(&mut sink)
            .execute_one()
            .expect("streaming run")
    };
    let snap = pipeline.finish();
    assert_eq!(snap.dropped, 0, "blocking policy must be lossless");
    assert!(res.stats.bytes_read > 0);

    let snap_findings =
        snap.diagnose(&events_to_ensembles::stats::diagnosis::Thresholds::default());
    assert!(has_read_shoulder(&snap_findings), "{snap_findings:?}");

    // Constant memory: the same record stream replayed 4x over the same
    // key space must not grow the snapshot at all — state scales with
    // shards × bins, never with records ingested.
    let buffered = Runner::new(&job, cfg).execute_one().expect("buffered run");
    let replay = |times: usize| {
        let p = IngestPipeline::new(IngestConfig::default());
        {
            let mut sink = p.sink();
            for _ in 0..times {
                for r in &buffered.trace().records {
                    sink.push(r);
                }
            }
        }
        p.finish()
    };
    let once = replay(1);
    let four = replay(4);
    assert_eq!(four.ingested, 4 * once.ingested);
    assert_eq!(once.approx_bytes(), four.approx_bytes());
    assert_eq!(once.approx_bytes(), snap.approx_bytes());
}
