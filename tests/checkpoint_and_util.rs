//! Integration coverage for the checkpoint workload and the utilization
//! reporting path: where the time goes must add up.

use events_to_ensembles::des::SimSpan;
use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{Job, RunConfig, RunReport, Runner};
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::CheckpointConfig;

fn run(job: &Job, cfg: RunConfig) -> RunReport {
    Runner::new(job, cfg).execute_one().unwrap()
}

fn cfg() -> CheckpointConfig {
    CheckpointConfig {
        compute: SimSpan::from_secs(10),
        ..CheckpointConfig::default().scaled(32) // 8 tasks × 256 MB
    }
}

#[test]
fn checkpoint_runs_and_io_fraction_is_sane() {
    let res = run(
        &cfg().job(),
        RunConfig::new(FsConfig::franklin().scaled(32), 1, "ckpt-int"),
    );
    res.trace().validate().unwrap();
    let frac = CheckpointConfig::io_fraction(res.trace());
    assert!(frac > 0.0 && frac < 1.0, "{frac}");
    // 4 epochs × 8 ranks of flushes.
    assert_eq!(res.stats.flushes, 32);
    assert_eq!(res.stats.bytes_written, cfg().total_bytes_written());
}

#[test]
fn utilization_report_is_consistent_with_the_trace() {
    let res = run(
        &cfg().job(),
        RunConfig::new(FsConfig::franklin().scaled(32), 2, "ckpt-util"),
    );
    let u = &res.util;
    // Horizon equals the run end.
    assert!((u.horizon_s - res.wall_secs()).abs() < 1e-9);
    // OSTs served exactly the written payload (flushes guarantee drain).
    assert_eq!(u.ost_bytes.iter().sum::<u64>(), res.stats.bytes_written);
    // Busy fractions are fractions.
    assert!(u.fabric_utilization() >= 0.0 && u.fabric_utilization() <= 1.0);
    assert!(u.mean_ost_utilization() > 0.0 && u.mean_ost_utilization() <= 1.0);
    // Per-node dirty: peak bounds average.
    for (peak, avg) in u.node_dirty_peak.iter().zip(&u.node_dirty_avg) {
        assert!(*avg <= *peak as f64 + 1e-6, "avg {avg} > peak {peak}");
    }
    // Something was actually buffered.
    assert!(u.node_dirty_peak.iter().any(|&p| p > 0));
    // OST load is reasonably balanced for stripe-aligned slots.
    assert!(u.ost_imbalance() < 3.0, "imbalance {}", u.ost_imbalance());
}

#[test]
fn more_frequent_checkpoints_cost_more_io_time() {
    let mut few = cfg();
    few.epochs = 2;
    let mut many = cfg();
    many.epochs = 8;
    let r_few = run(
        &few.job(),
        RunConfig::new(FsConfig::franklin().scaled(32), 3, "ckpt-few"),
    );
    let r_many = run(
        &many.job(),
        RunConfig::new(FsConfig::franklin().scaled(32), 3, "ckpt-many"),
    );
    let io =
        |t: &events_to_ensembles::trace::Trace| t.durations_of(CallKind::Write).iter().sum::<f64>();
    assert!(io(r_many.trace()) > 3.0 * io(r_few.trace()));
    assert!(r_many.wall_secs() > r_few.wall_secs());
}

#[test]
fn fpp_checkpoint_avoids_shared_file_machinery_entirely() {
    let mut c = cfg();
    c.file_per_process = true;
    let res = run(
        &c.job(),
        RunConfig::new(FsConfig::franklin().scaled(32), 4, "ckpt-fpp"),
    );
    assert_eq!(
        res.lock_stats.acquired, 0,
        "private files take no shared locks"
    );
    assert_eq!(res.stats.sync_writes, 0);
}
