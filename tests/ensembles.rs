//! The paper's core statistical claim, end to end: ensembles are stable
//! across runs, order statistics explain phase times, and the LLN
//! prediction machinery tracks measurements — and the attribution
//! verdicts built on top are deterministic across ingest parallelism
//! and trace encodings.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::ingest::{stream_file, IngestConfig, IngestPipeline};
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::attribution::FaultClass;
use events_to_ensembles::stats::diagnosis::{Finding, Thresholds};
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::ensemble::Ensemble;
use events_to_ensembles::stats::lln;
use events_to_ensembles::trace::io::TraceFormat;
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::IorConfig;

fn experiment() -> IorConfig {
    IorConfig {
        repetitions: 2,
        ..IorConfig::paper_fig1().scaled(64)
    }
}

#[test]
fn ensemble_is_reproducible_across_seeds_and_across_file_systems() {
    let cfg = experiment();
    let base = RunConfig::new(FsConfig::franklin().scaled(64), 0, "ens");
    let job = cfg.job();
    let reports = Runner::new(&job, base)
        .seeds(&[1, 2, 3, 4])
        .execute()
        .unwrap();
    let runs: Vec<Vec<f64>> = reports
        .iter()
        .map(|r| r.trace().durations_of(CallKind::Write))
        .collect();
    let ens = Ensemble::from_samples(&runs);
    let stability = ens.stability().unwrap();
    assert!(
        ens.is_reproducible(0.35),
        "ensemble unstable: {stability:?}"
    );
    // The "other file system" (scratch2): same hardware, fresh seed —
    // still the same distribution.
    let fs2 = RunConfig::new(FsConfig::franklin_scratch2().scaled(64), 99, "ens2");
    let t2 = Runner::new(&job, fs2).execute_one().unwrap().into_trace();
    let mut all = runs;
    all.push(t2.durations_of(CallKind::Write));
    let ens2 = Ensemble::from_samples(&all);
    assert!(ens2.is_reproducible(0.35));
    let (mean, sd) = ens2.mean_of_means();
    assert!(sd / mean < 0.2, "means vary too much: {mean} ± {sd}");
}

#[test]
fn a_pathological_run_breaks_stability() {
    // Mix healthy Franklin runs with a buggy MADbench-style read
    // ensemble: the stability metric must notice.
    let cfg = experiment();
    let base = RunConfig::new(FsConfig::franklin().scaled(64), 0, "ens-bad");
    let job = cfg.job();
    let reports = Runner::new(&job, base).seeds(&[5, 6]).execute().unwrap();
    let mut runs: Vec<Vec<f64>> = reports
        .iter()
        .map(|r| r.trace().durations_of(CallKind::Write))
        .collect();
    // Synthetic pathological run: everything 20x slower.
    runs.push(runs[0].iter().map(|&d| d * 20.0).collect());
    let ens = Ensemble::from_samples(&runs);
    assert!(!ens.is_reproducible(0.5));
}

#[test]
fn lln_prediction_tracks_measurement_direction() {
    let platform = FsConfig::franklin().scaled(64);
    let mut measured = Vec::new();
    let mut k1_totals = None;
    for k in [1u32, 4] {
        let cfg = IorConfig {
            segments: k,
            repetitions: 1,
            ..IorConfig::paper_fig1().scaled(64)
        };
        let job = cfg.job();
        let res = Runner::new(&job, RunConfig::new(platform.clone(), 40 + k as u64, "lln"))
            .execute_one()
            .unwrap();
        let start = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.start_ns)
            .min()
            .unwrap();
        let end = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.end_ns)
            .max()
            .unwrap();
        measured.push(res.stats.bytes_written as f64 / ((end - start) as f64 / 1e9));
        if k == 1 {
            let mut totals = vec![0.0f64; cfg.tasks as usize];
            for r in res.trace().of_kind(CallKind::Write) {
                totals[r.rank as usize] += r.secs();
            }
            k1_totals = Some(EmpiricalDist::new(&totals));
        }
    }
    // Measurement: k=4 at least as fast as k=1.
    assert!(measured[1] >= measured[0] * 0.98, "{measured:?}");
    // Prediction from the k=1 ensemble alone agrees in direction.
    let pred = lln::predicted_rate_vs_k(&k1_totals.unwrap(), &[1, 4], 16, measured[0], 96);
    assert!(pred[1].1 >= pred[0].1, "{pred:?}");
}

/// Attribution verdicts are a function of the trace alone: sharded
/// ingest at 1, 2, and 8 workers, from either on-disk encoding, reaches
/// bit-identical findings — and the straggler run is actually named.
#[test]
fn attribution_verdicts_identical_across_threads_and_formats() {
    let sc = pio_bench::fault_matrix::scenarios(16)
        .into_iter()
        .find(|s| s.expected == pio_bench::fault_matrix::Expect::Single(FaultClass::StragglerNode))
        .expect("straggler cell");
    let trace = pio_bench::fault_matrix::run_once(sc.job(), sc.fs(), 101, "det", Some(sc.plan()))
        .into_trace();

    let dir = std::env::temp_dir().join("pio_attr_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let paths = [
        (dir.join("t.jsonl"), TraceFormat::Jsonl),
        (dir.join("t.ptb"), TraceFormat::Ptb),
    ];
    for (path, format) in &paths {
        events_to_ensembles::trace::io::save_as(&trace, path, *format).unwrap();
    }

    let mut verdicts: Vec<(String, String)> = Vec::new();
    for (path, _) in &paths {
        for workers in [1usize, 2, 8] {
            let pipeline = IngestPipeline::new(IngestConfig {
                workers,
                ..IngestConfig::default()
            });
            {
                let mut sink = pipeline.sink();
                stream_file(path, &mut sink).unwrap();
            }
            let findings = pipeline.finish().diagnose(&Thresholds::default());
            assert!(
                findings
                    .iter()
                    .filter_map(Finding::attribution)
                    .any(|a| a.implicates(FaultClass::StragglerNode)),
                "{path:?} x{workers}: {findings:?}"
            );
            verdicts.push((format!("{path:?} x{workers}"), format!("{findings:?}")));
        }
    }
    let (_, reference) = &verdicts[0];
    for (label, v) in &verdicts {
        assert_eq!(v, reference, "verdicts diverge at {label}");
    }

    for (path, _) in &paths {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn pooled_distribution_has_the_runs_inside_it() {
    let cfg = experiment();
    let base = RunConfig::new(FsConfig::franklin().scaled(64), 0, "pool");
    let job = cfg.job();
    let reports = Runner::new(&job, base).seeds(&[7, 8]).execute().unwrap();
    let runs: Vec<Vec<f64>> = reports
        .iter()
        .map(|r| r.trace().durations_of(CallKind::Write))
        .collect();
    let n: usize = runs.iter().map(Vec::len).sum();
    let ens = Ensemble::from_samples(&runs);
    let pooled = ens.pooled();
    assert_eq!(pooled.n(), n);
    for d in ens.distributions() {
        assert!(pooled.min() <= d.min());
        assert!(pooled.max() >= d.max());
    }
}
