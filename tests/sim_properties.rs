//! Property-based fuzzing of the whole simulator: random (valid) jobs
//! must run to completion with conserved bytes, well-formed traces, and
//! deterministic replay — no matter what op soup the generator produces.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::FileSpec;
use events_to_ensembles::mpi::{Job, Op, Program, RunConfig, RunReport, Runner};
use events_to_ensembles::trace::CallKind;
use proptest::prelude::*;

const MB: u64 = 1 << 20;

fn run(job: &Job, cfg: RunConfig) -> Result<RunReport, events_to_ensembles::mpi::RunError> {
    Runner::new(job, cfg).execute_one()
}

/// A random per-rank op body over `n_files` files (open/close bracketing
/// is added afterwards so the job always validates).
fn arb_body(n_files: u32) -> impl Strategy<Value = Vec<Op>> {
    let op = (0u32..n_files, 0u64..64, 1u64..8, 0u8..6).prop_map(|(f, off_mb, len_mb, kind)| {
        let offset = off_mb * MB;
        let bytes = len_mb * MB;
        match kind {
            0 => Op::WriteAt {
                file: f,
                offset,
                bytes,
            },
            1 => Op::ReadAt {
                file: f,
                offset,
                bytes,
            },
            2 => Op::Seek { file: f, offset },
            3 => Op::Write { file: f, bytes },
            4 => Op::MetaWrite {
                file: f,
                offset: offset % MB,
                bytes: 2048,
            },
            _ => Op::Flush { file: f },
        }
    });
    proptest::collection::vec(op, 1..12)
}

fn arb_job() -> impl Strategy<Value = Job> {
    (2u32..9, 1u32..4).prop_flat_map(|(ranks, n_files)| {
        proptest::collection::vec(arb_body(n_files), ranks as usize).prop_map(move |bodies| {
            let programs = bodies
                .into_iter()
                .map(|body| {
                    let mut ops = Vec::new();
                    for f in 0..n_files {
                        ops.push(Op::Open { file: f });
                    }
                    ops.push(Op::Barrier);
                    ops.extend(body);
                    ops.push(Op::Barrier);
                    for f in 0..n_files {
                        ops.push(Op::Close { file: f });
                    }
                    Program { ops }
                })
                .collect();
            Job {
                programs,
                files: (0..n_files).map(|_| FileSpec { shared: true }).collect(),
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid job terminates with a well-formed trace and exact byte
    /// accounting against its own program text.
    #[test]
    fn random_jobs_run_and_conserve_bytes(job in arb_job(), seed in 0u64..1000) {
        let res = run(&job, RunConfig::new(FsConfig::tiny_test(), seed, "fuzz"))
            .expect("valid jobs must not deadlock");
        res.trace().validate().expect("trace well-formed");
        prop_assert_eq!(res.stats.bytes_written, job.total_bytes_written());
        prop_assert_eq!(res.stats.bytes_read, job.total_bytes_read());
        // Trace record counts match program op counts (every op traced).
        let total_ops: usize = job.programs.iter().map(|p| p.ops.len()).sum();
        prop_assert_eq!(res.trace().records.len(), total_ops);
        // Time moves forward and ends after it starts.
        prop_assert!(res.end.as_secs_f64() > 0.0);
    }

    /// Bit-identical replay under the same seed; different seeds still
    /// agree on totals.
    #[test]
    fn determinism_under_replay(job in arb_job()) {
        let a = run(&job, RunConfig::new(FsConfig::tiny_test(), 77, "fuzz-a")).unwrap();
        let b = run(&job, RunConfig::new(FsConfig::tiny_test(), 77, "fuzz-b")).unwrap();
        prop_assert_eq!(&a.trace().records, &b.trace().records);
        prop_assert_eq!(a.end, b.end);
        let c = run(&job, RunConfig::new(FsConfig::tiny_test(), 78, "fuzz-c")).unwrap();
        prop_assert_eq!(a.stats.bytes_written, c.stats.bytes_written);
    }

    /// Node caches fully drain by the end of every run (flush or not):
    /// whatever was written is on the OSTs when the event queue empties.
    #[test]
    fn all_dirty_data_eventually_drains(job in arb_job(), seed in 0u64..100) {
        let res = run(&job, RunConfig::new(FsConfig::tiny_test(), seed, "fuzz-drain")).unwrap();
        let ost_bytes: u64 = res.util.ost_bytes.iter().sum();
        // OSTs served at least the data-plane write bytes (reads and RMW
        // traffic add more; metadata adds its own).
        prop_assert!(ost_bytes >= res.stats.bytes_written);
    }

    /// Barrier semantics survive arbitrary op bodies: every rank's
    /// records in phase p end before any rank's records in phase p+2
    /// begin (adjacent phases may overlap only via write-back, which is
    /// not traced as a call).
    #[test]
    fn phases_never_invert(job in arb_job(), seed in 0u64..100) {
        let res = run(&job, RunConfig::new(FsConfig::tiny_test(), seed, "fuzz-phase")).unwrap();
        let mut max_end = vec![0u64; res.trace().phase_count() as usize + 1];
        let mut min_start = vec![u64::MAX; res.trace().phase_count() as usize + 1];
        for r in &res.trace().records {
            if r.call == CallKind::Barrier {
                continue;
            }
            let p = r.phase as usize;
            max_end[p] = max_end[p].max(r.end_ns);
            min_start[p] = min_start[p].min(r.start_ns);
        }
        for p in 0..max_end.len().saturating_sub(2) {
            if min_start[p + 2] == u64::MAX || max_end[p] == 0 {
                continue;
            }
            prop_assert!(
                min_start[p + 2] >= max_end[p].saturating_sub(1),
                "phase {} ends at {} but phase {} starts at {}",
                p, max_end[p], p + 2, min_start[p + 2]
            );
        }
    }
}
