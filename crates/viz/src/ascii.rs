//! Text renderings of the paper's figure panels.
//!
//! * [`trace_diagram`] — Figure 1(a)-style: one row per task (or task
//!   bucket), time on the x-axis, `W`/`R`/`m` marks where the task is
//!   inside a write/read/metadata call, space elsewhere (the barrier
//!   "white space").
//! * [`rate_curve_text`] — Figure 1(b)-style aggregate rate over time.
//! * [`histogram_text`] — Figure 1(c)-style completion-time histograms.

use pio_core::hist::Histogram;
use pio_core::rates::RateCurve;
use pio_trace::{CallKind, Trace};
use std::fmt::Write as _;

fn mark_of(call: CallKind) -> char {
    match call {
        CallKind::Write => 'W',
        CallKind::Read => 'R',
        CallKind::MetaWrite | CallKind::MetaRead => 'm',
        CallKind::Send | CallKind::Recv => '.',
        CallKind::Flush => 'f',
        _ => ' ',
    }
}

/// Render the trace diagram: `rows` task rows × `cols` time columns.
/// When there are more tasks than rows, tasks are bucketed and a bucket
/// shows the mark of the most common active call. Marks: `W` write,
/// `R` read, `m` metadata, `f` flush, space = barrier/idle.
pub fn trace_diagram(trace: &Trace, rows: usize, cols: usize) -> String {
    assert!(rows > 0 && cols > 0);
    let ranks = trace.meta.ranks.max(1) as usize;
    let rows = rows.min(ranks);
    let end = trace.end_time().as_secs_f64().max(1e-9);
    // grid[row][col] → counts per mark.
    let mut grid = vec![vec![[0u32; 5]; cols]; rows];
    let slot = |c: char| match c {
        'W' => 0,
        'R' => 1,
        'm' => 2,
        'f' => 3,
        _ => 4,
    };
    for r in &trace.records {
        let mark = mark_of(r.call);
        if mark == ' ' {
            continue;
        }
        let row = (r.rank as usize * rows) / ranks;
        let c0 = ((r.start().as_secs_f64() / end) * cols as f64) as usize;
        let c1 = ((r.end().as_secs_f64() / end) * cols as f64).ceil() as usize;
        for cell in grid[row.min(rows - 1)][c0..c1.min(cols)].iter_mut() {
            cell[slot(mark)] += 1;
        }
    }
    let mut out = String::with_capacity(rows * (cols + 1) + 64);
    let _ = writeln!(
        out,
        "# trace {} [{}]: {} ranks, {:.2}s  (W=write R=read m=meta f=flush)",
        trace.meta.experiment, trace.meta.platform, ranks, end
    );
    for row in &grid {
        for cell in row {
            let marks = ['W', 'R', 'm', 'f'];
            let best = (0..4).max_by_key(|&i| cell[i]).unwrap_or(4);
            out.push(if cell[best] > 0 { marks[best] } else { ' ' });
        }
        out.push('\n');
    }
    let _ = writeln!(out, "0{:>width$.1}s", end, width = cols - 1);
    out
}

/// Render a rate curve as a bar chart over time.
pub fn rate_curve_text(curve: &RateCurve, height: usize, label: &str) -> String {
    assert!(height > 0);
    let peak = curve.peak().max(1e-12);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {label}: peak {:.1} MB/s, avg {:.1} MB/s",
        curve.peak(),
        curve.average()
    );
    for level in (1..=height).rev() {
        let threshold = peak * level as f64 / height as f64;
        let _ = write!(out, "{:>10.0} |", threshold);
        for &(_, r) in &curve.points {
            out.push(if r >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = write!(out, "{:>10} +", "MB/s");
    for _ in &curve.points {
        out.push('-');
    }
    let secs = curve.points.len() as f64 * curve.dt;
    let _ = writeln!(out, " {secs:.1}s");
    out
}

/// Render a histogram as horizontal count bars.
pub fn histogram_text(hist: &Histogram, width: usize, label: &str) -> String {
    assert!(width > 0);
    let max = hist.counts().iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "# {label}: {} events", hist.in_range());
    for i in 0..hist.bins() {
        let c = hist.count(i);
        if c == 0 {
            continue;
        }
        let bar = (c as usize * width).div_ceil(max as usize);
        let _ = writeln!(
            out,
            "{:>10.3}s |{:<width$} {}",
            hist.bin_center(i),
            "#".repeat(bar),
            c,
            width = width
        );
    }
    out
}

/// Render progress curves (Figure 5(a) style): one labelled row group per
/// curve, `#` up to the fraction complete at each of `cols` time columns
/// spanning `[0, t_max]`.
pub fn cdf_text(curves: &[(String, Vec<(f64, f64)>)], cols: usize, label: &str) -> String {
    assert!(cols > 0);
    let t_max = curves
        .iter()
        .flat_map(|(_, c)| c.iter().map(|&(t, _)| t))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {label} (x: 0..{t_max:.1}s, bar = fraction complete)"
    );
    for (name, curve) in curves {
        let _ = write!(out, "{name:>12} |");
        for c in 0..cols {
            let t = t_max * (c as f64 + 0.5) / cols as f64;
            // Fraction complete at time t: last point with time <= t.
            let frac = curve
                .iter()
                .take_while(|&&(ct, _)| ct <= t)
                .last()
                .map(|&(_, f)| f)
                .unwrap_or(0.0);
            out.push(match (frac * 4.0) as u32 {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => '+',
                _ => '#',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_core::rates::write_rate_curve;
    use pio_trace::{Record, TraceMeta};

    fn trace() -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "viz".into(),
            platform: "test".into(),
            ranks: 4,
            seed: 0,
        });
        for rank in 0..4u32 {
            t.push(Record {
                rank,
                call: CallKind::Write,
                fd: 3,
                offset: 0,
                bytes: 10_000_000,
                start_ns: 0,
                end_ns: (rank as u64 + 1) * 1_000_000_000,
                phase: 0,
            });
            t.push(Record {
                rank,
                call: CallKind::Read,
                fd: 3,
                offset: 0,
                bytes: 10_000_000,
                start_ns: 5_000_000_000,
                end_ns: 6_000_000_000,
                phase: 1,
            });
        }
        t
    }

    #[test]
    fn diagram_shape_and_marks() {
        let t = trace();
        let d = trace_diagram(&t, 4, 60);
        let lines: Vec<&str> = d.lines().collect();
        // Header + 4 rows + axis.
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("4 ranks"));
        // Rank 0 wrote for 1/6 of the time: leading Ws then blank.
        assert!(lines[1].starts_with('W'));
        // All rows contain both W and R marks.
        for row in &lines[1..5] {
            assert!(row.contains('W'), "{row}");
            assert!(row.contains('R'), "{row}");
        }
        // The barrier gap (between write end and read start) is blank.
        assert!(lines[1].contains("  "), "white space expected");
    }

    #[test]
    fn diagram_buckets_many_ranks() {
        let t = trace();
        let d = trace_diagram(&t, 2, 30);
        assert_eq!(d.lines().count(), 4); // header + 2 rows + axis
    }

    #[test]
    fn rate_curve_renders() {
        let t = trace();
        let c = write_rate_curve(&t, 0.2);
        let text = rate_curve_text(&c, 5, "write rate");
        assert!(text.contains("write rate"));
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 7);
    }

    #[test]
    fn histogram_renders_nonzero_bins() {
        let h = Histogram::from_samples(&[1.0, 1.1, 1.2, 4.0, 4.1], 10);
        let text = histogram_text(&h, 20, "durations");
        assert!(text.contains("5 events"));
        // Two clusters → at least two bar lines.
        assert!(text.lines().filter(|l| l.contains('#')).count() >= 2);
    }

    #[test]
    fn cdf_text_orders_fast_before_slow() {
        let fast: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, i as f64 / 10.0)).collect();
        let slow: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64 * 4.0, i as f64 / 10.0))
            .collect();
        let text = cdf_text(
            &[("fast".into(), fast), ("slow".into(), slow)],
            40,
            "progress",
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // The fast curve saturates ('#') earlier than the slow one.
        let first_hash = |l: &str| l.find('#').unwrap_or(usize::MAX);
        assert!(first_hash(lines[1]) < first_hash(lines[2]), "{text}");
    }

    #[test]
    fn empty_trace_diagram_is_safe() {
        let t = Trace::default();
        let d = trace_diagram(&t, 3, 10);
        assert!(d.contains("0.00s") || d.contains("ranks"));
    }
}
