//! # pio-viz — terminal rendering and data export for traces
//!
//! Text renderings of the paper's three panel types — trace diagram,
//! aggregate rate curve, completion-time histogram — plus CSV export of
//! the underlying series so external plotting tools can regenerate the
//! figures faithfully, and monitoring panels for streaming-ingest
//! snapshots ([`snapshot`]).

pub mod ascii;
pub mod csv;
pub mod fleet;
pub mod snapshot;

pub use ascii::{histogram_text, rate_curve_text, trace_diagram};
pub use fleet::{fleet_panel, FleetJobRow, OstContentionRow};
pub use snapshot::{findings_text, snapshot_panel};
