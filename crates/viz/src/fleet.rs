//! Rendering for the fleet service: the machine-wide roll-up, the
//! per-tenant verdict table, and the cross-job interference view.

use crate::snapshot::snapshot_panel;
use pio_ingest::shard::EnsembleSnapshot;
use std::fmt::Write as _;

/// One tenant row of the fleet panel.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetJobRow {
    /// Tenant label.
    pub name: String,
    /// Records the service ingested for this tenant.
    pub records: u64,
    /// Records shed (budget or transport).
    pub shed: u64,
    /// Tenant was frozen by its memory budget.
    pub frozen: bool,
    /// Attributed fault class name, `None` for a clean tenant.
    pub verdict: Option<String>,
    /// The tenant's slowest operation (seconds), 0 when idle.
    pub slowest_s: f64,
}

/// One contended-target row of the fleet panel.
#[derive(Debug, Clone, PartialEq)]
pub struct OstContentionRow {
    /// The shared object storage target.
    pub ost: usize,
    /// `(tenant name, severity)` for every tenant slow on it.
    pub jobs: Vec<(String, f64)>,
}

/// Render the fleet roll-up panel: the merged machine-wide ensemble
/// snapshot, one row per tenant (records, sheds, verdict, slowest op),
/// and the interference view naming jobs that contend on the same OST.
/// `width` is the histogram bar width of the embedded snapshot panel.
pub fn fleet_panel(
    machine: &EnsembleSnapshot,
    jobs: &[FleetJobRow],
    contention: &[OstContentionRow],
    width: usize,
) -> String {
    let mut out = String::new();
    let faulted = jobs.iter().filter(|j| j.verdict.is_some()).count();
    let _ = writeln!(
        out,
        "# fleet: {} jobs ({} attributed, {} clean)\n",
        jobs.len(),
        faulted,
        jobs.len() - faulted
    );
    out.push_str("## machine roll-up\n");
    out.push_str(&snapshot_panel(machine, width));
    out.push_str("\n## jobs\n");
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>8} {:>7} {:>10}  verdict",
        "job", "records", "shed", "frozen", "slowest(s)"
    );
    for j in jobs {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>8} {:>7} {:>10.4}  {}",
            j.name,
            j.records,
            j.shed,
            if j.frozen { "yes" } else { "-" },
            j.slowest_s,
            j.verdict.as_deref().unwrap_or("clean"),
        );
    }
    out.push_str("\n## interference\n");
    if contention.is_empty() {
        out.push_str("no shared-target contention: no OST is slow for two or more jobs\n");
    } else {
        for row in contention {
            let jobs = row
                .jobs
                .iter()
                .map(|(name, sev)| format!("{name} ({sev:.1}x)"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "OST {:>3} contended by: {}", row.ost, jobs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_ingest::shard::SnapshotConfig;

    fn rows() -> Vec<FleetJobRow> {
        vec![
            FleetJobRow {
                name: "job-00-slow-ost".into(),
                records: 1000,
                shed: 0,
                frozen: false,
                verdict: Some("slow-ost".into()),
                slowest_s: 1.25,
            },
            FleetJobRow {
                name: "job-01-paced-read".into(),
                records: 800,
                shed: 12,
                frozen: true,
                verdict: None,
                slowest_s: 0.02,
            },
        ]
    }

    #[test]
    fn panel_names_jobs_verdicts_and_contention() {
        let machine = EnsembleSnapshot::empty(&SnapshotConfig::default());
        let contention = vec![OstContentionRow {
            ost: 1,
            jobs: vec![
                ("job-00-slow-ost".into(), 7.9),
                ("job-05-slow-ost".into(), 8.2),
            ],
        }];
        let text = fleet_panel(&machine, &rows(), &contention, 30);
        assert!(
            text.contains("fleet: 2 jobs (1 attributed, 1 clean)"),
            "{text}"
        );
        assert!(text.contains("job-00-slow-ost"));
        assert!(text.contains("slow-ost"));
        assert!(text.contains("clean"));
        assert!(
            text.contains("OST   1 contended by: job-00-slow-ost (7.9x), job-05-slow-ost (8.2x)")
        );
    }

    #[test]
    fn quiet_fleet_renders_no_contention() {
        let machine = EnsembleSnapshot::empty(&SnapshotConfig::default());
        let text = fleet_panel(&machine, &[], &[], 20);
        assert!(text.contains("fleet: 0 jobs"));
        assert!(text.contains("no shared-target contention"));
    }
}
