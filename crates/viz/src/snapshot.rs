//! Rendering for streaming-ingest snapshots: the monitoring view of a
//! run in flight, from `O(shards × bins)` state instead of a full trace.

use pio_core::diagnosis::{run_verdict, Finding, Thresholds, Verdict};
use pio_ingest::diagnose::TimedFinding;
use pio_ingest::shard::EnsembleSnapshot;
use pio_trace::CallKind;
use std::fmt::Write as _;

/// Render an ensemble snapshot: the ingest totals, a per-call-class
/// summary table (sketch quantiles), and a duration histogram per data
/// call class. `width` is the histogram bar width.
pub fn snapshot_panel(snap: &EnsembleSnapshot, width: usize) -> String {
    assert!(width > 0);
    if snap.is_empty() {
        // A zero-record stream is a clean outcome, not an error: say so
        // instead of rendering an all-zero table the detectors never saw.
        return format!(
            "# ensemble snapshot: no data ({} records dropped)\nverdict: no data — nothing to diagnose\n",
            snap.dropped
        );
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ensemble snapshot: {} records ({} dropped), {} ranks, {} shards (~{:.1} KiB)",
        snap.ingested,
        snap.dropped,
        snap.ranks,
        snap.shards.len(),
        snap.approx_bytes() as f64 / 1024.0
    );
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "kind", "ops", "MB", "mean(s)", "p50(s)", "p99(s)", "max(s)"
    );
    for kind in CallKind::ALL {
        let Some(stats) = snap.kind_stats(kind) else {
            continue;
        };
        let s = &stats.sketch;
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>12.1} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            kind.name(),
            stats.ops,
            stats.bytes as f64 / 1e6,
            stats.moments.mean().unwrap_or(0.0),
            s.quantile(0.5).unwrap_or(0.0),
            s.quantile(0.99).unwrap_or(0.0),
            s.max().unwrap_or(0.0),
        );
    }
    for kind in [CallKind::Read, CallKind::Write] {
        let Some(stats) = snap.kind_stats(kind) else {
            continue;
        };
        let hist = &stats.hist;
        if hist.in_range() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "\n## {} durations ({} events)",
            kind.name(),
            hist.in_range()
        );
        let max = hist.counts().iter().copied().max().unwrap_or(0).max(1);
        for i in 0..hist.bins() {
            let c = hist.counts()[i];
            if c == 0 {
                continue;
            }
            let bar = (c as usize * width).div_ceil(max as usize);
            let _ = writeln!(
                out,
                "{:>10.4}s |{:<width$} {}",
                hist.bin_center(i),
                "#".repeat(bar),
                c,
                width = width
            );
        }
    }
    let findings = snap.diagnose(&Thresholds::default());
    if !findings.is_empty() {
        let _ = writeln!(out, "\n## findings");
        for f in &findings {
            let _ = writeln!(out, "- {f}");
        }
        let verdict = run_verdict(&findings);
        if verdict != Verdict::Clean {
            let _ = writeln!(out, "verdict: {}", verdict.label());
        }
    }
    out
}

/// Render the online diagnoser's findings with when they fired.
pub fn findings_text(findings: &[TimedFinding]) -> String {
    if findings.is_empty() {
        return "no findings: ensemble statistics look healthy\n".to_string();
    }
    let mut out = String::new();
    for t in findings {
        let _ = writeln!(
            out,
            "[{:>9} records, phase {:>3}] {}",
            t.after_records, t.phase, t.finding
        );
    }
    let inner: Vec<Finding> = findings.iter().map(|t| t.finding.clone()).collect();
    let verdict = run_verdict(&inner);
    if verdict != Verdict::Clean {
        let _ = writeln!(out, "verdict: {}", verdict.label());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_ingest::pipeline::{IngestConfig, IngestPipeline};
    use pio_ingest::StreamDiagnoser;
    use pio_trace::{Record, RecordSink};

    fn rec(rank: u32, call: CallKind, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes: 1 << 20,
            start_ns: 0,
            end_ns: (dur * 1e9) as u64,
            phase,
        }
    }

    #[test]
    fn panel_renders_table_and_histogram() {
        let pipeline = IngestPipeline::new(IngestConfig::default());
        let mut sink = pipeline.sink();
        for i in 0..500u32 {
            sink.push(&rec(
                i % 16,
                CallKind::Read,
                0.01 + (i % 10) as f64 * 0.001,
                0,
            ));
            sink.push(&rec(i % 16, CallKind::Write, 0.02, 0));
        }
        drop(sink);
        let snap = pipeline.finish();
        let text = snapshot_panel(&snap, 30);
        assert!(text.contains("1000 records"));
        assert!(text.contains("read"));
        assert!(text.contains("write durations"));
        assert!(text.contains('#'));
    }

    #[test]
    fn zero_record_snapshot_renders_a_no_data_verdict() {
        let snap = pio_ingest::shard::EnsembleSnapshot::empty(
            &pio_ingest::shard::SnapshotConfig::default(),
        );
        let text = snapshot_panel(&snap, 30);
        assert!(text.contains("no data"), "{text}");
        assert!(text.contains("nothing to diagnose"), "{text}");
        // No table header, no spurious findings.
        assert!(!text.contains("p99"), "{text}");
    }

    #[test]
    fn findings_text_covers_both_cases() {
        assert!(findings_text(&[]).contains("healthy"));
        let mut d = StreamDiagnoser::with_defaults();
        for i in 0..200u32 {
            let dur = if i % 8 == 0 { 300.0 } else { 10.0 };
            d.push(&rec(i % 16, CallKind::Read, dur, 0));
        }
        d.finish();
        let text = findings_text(d.findings());
        assert!(text.contains("right shoulder"), "{text}");
        assert!(text.contains("records, phase"), "{text}");
    }

    #[test]
    fn attributed_findings_render_a_verdict_line() {
        // Two ranks slow on every operation: a rank-correlated tail the
        // stream attributes to a straggler node.
        let mut d = StreamDiagnoser::with_defaults();
        for i in 0..640u32 {
            let rank = i % 16;
            let dur = if rank < 2 { 1.0 } else { 0.01 };
            d.push(&rec(rank, CallKind::Read, dur, 0));
        }
        d.finish();
        let text = findings_text(d.findings());
        assert!(text.contains("verdict:"), "{text}");
        assert!(text.contains("straggler-node"), "{text}");
    }
}
