//! CSV export of figure series: rate curves, histograms, progress
//! curves — the machine-readable counterpart of the ASCII panels.

use pio_core::hist::Histogram;
use pio_core::loghist::LogHistogram;
use pio_core::rates::RateCurve;
use std::io::Write;

/// Write a rate curve as `t_s,mb_per_s` rows.
pub fn rate_curve_csv<W: Write>(curve: &RateCurve, mut w: W) -> std::io::Result<()> {
    writeln!(w, "t_s,mb_per_s")?;
    for &(t, r) in &curve.points {
        writeln!(w, "{t:.6},{r:.6}")?;
    }
    Ok(())
}

/// Write a linear histogram as `bin_center_s,count` rows.
pub fn histogram_csv<W: Write>(hist: &Histogram, mut w: W) -> std::io::Result<()> {
    writeln!(w, "bin_center_s,count")?;
    for i in 0..hist.bins() {
        writeln!(w, "{:.9},{}", hist.bin_center(i), hist.count(i))?;
    }
    Ok(())
}

/// Write a log histogram as `bin_center,count` rows (nonzero bins only,
/// matching the paper's log-log scatter).
pub fn log_histogram_csv<W: Write>(hist: &LogHistogram, mut w: W) -> std::io::Result<()> {
    writeln!(w, "bin_center,count")?;
    for (c, n) in hist.series() {
        writeln!(w, "{c:.9},{n}")?;
    }
    Ok(())
}

/// Write `(x, y)` series with a custom header.
pub fn xy_csv<W: Write>(header: &str, series: &[(f64, f64)], mut w: W) -> std::io::Result<()> {
    writeln!(w, "{header}")?;
    for &(x, y) in series {
        writeln!(w, "{x:.9},{y:.9}")?;
    }
    Ok(())
}

/// Save any of the above to a file path, creating parent directories.
pub fn save<F: FnOnce(&mut dyn Write) -> std::io::Result<()>>(
    path: &std::path::Path,
    writer: F,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writer(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_curve_round_trip_shape() {
        let c = RateCurve {
            dt: 0.5,
            points: vec![(0.0, 10.0), (0.5, 20.0)],
        };
        let mut buf = Vec::new();
        rate_curve_csv(&c, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("t_s,mb_per_s"));
        assert!(text.contains("0.500000,20.000000"));
    }

    #[test]
    fn histogram_csv_has_all_bins() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0], 6);
        let mut buf = Vec::new();
        histogram_csv(&h, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 7);
    }

    #[test]
    fn log_histogram_csv_skips_empty_bins() {
        let h = LogHistogram::from_samples(&[0.1, 100.0], 40);
        let mut buf = Vec::new();
        log_histogram_csv(&h, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 3);
    }

    #[test]
    fn xy_csv_and_save() {
        let dir = std::env::temp_dir().join("pio_viz_csv_test");
        let path = dir.join("series.csv");
        save(&path, |w| {
            xy_csv("k,rate", &[(1.0, 11610.0), (8.0, 13486.0)], w)
        })
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("k,rate"));
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
