//! Property tests for fleetd's block transport: whatever block sizes a
//! decoder hands `JobSink::push_block` — including the final partial
//! block that straddles job EOS — the filed `JobReport` must be
//! identical to the record-at-a-time reference. This is what makes the
//! service's diagnosis a pure function of the record stream, not of the
//! upstream codec's framing.

use pio_fleetd::{FleetConfig, FleetService, JobReport};
use pio_trace::{CallKind, Record, RecordSink};
use proptest::prelude::*;

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    let rec = (
        0u32..16,
        0usize..CallKind::ALL.len(),
        0u64..1 << 28,
        0u64..1 << 22,
        1u64..10_000_000_000,
    )
        .prop_map(|(rank, call, offset, bytes, dur_ns)| Record {
            rank,
            call: CallKind::ALL[call],
            fd: 3,
            offset,
            bytes,
            start_ns: offset % 1_000_000_000,
            end_ns: offset % 1_000_000_000 + dur_ns,
            phase: 0,
        });
    proptest::collection::vec(rec, 0..700)
}

fn run_job(batch: usize, feed: impl Fn(&mut dyn RecordSink)) -> JobReport {
    let mut svc = FleetService::new(FleetConfig {
        workers: 2,
        batch,
        ..FleetConfig::default()
    });
    let mut sink = svc.register("prop-job");
    let id = sink.id();
    feed(&mut sink);
    sink.finish();
    drop(sink);
    svc.shutdown();
    svc.report(id).expect("report filed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Block sizes prime to the sink batch (and streams whose tail never
    /// fills a batch) still file the exact per-record report: EOS flushes
    /// the straddling remainder, and the worker-side block boundaries
    /// are identical either way.
    #[test]
    fn report_is_invariant_to_push_block_framing(
        records in arb_records(),
        batch in 1usize..96,
        sizes in proptest::collection::vec(1usize..130, 1..5),
    ) {
        let reference = run_job(batch, |sink| {
            for r in &records {
                sink.push(r);
            }
        });

        let blocked = run_job(batch, |sink| {
            let mut i = 0;
            let mut s = 0;
            while i < records.len() {
                let take = sizes[s % sizes.len()].min(records.len() - i);
                sink.push_block(&records[i..i + take]);
                i += take;
                s += 1;
            }
        });

        prop_assert_eq!(blocked, reference);
    }
}
