//! Cross-job interference: which jobs are slow on which storage
//! targets, and where they collide.
//!
//! The per-job diagnosers attribute each tenant's own tail; this module
//! answers the machine operator's next question — *is the slow resource
//! shared?* Every job accumulates per-OST operation counts and service
//! time from its data calls (offsets map to object storage targets
//! through the job's stripe layout, exactly like the simulator's
//! placement), and the fleet view intersects the per-job outliers: an
//! OST flagged slow by two or more tenants is a contended target, and
//! the view names the jobs, LASSi-style.

/// How a job's file offsets map onto object storage targets.
///
/// Mirrors the simulator's placement: stripes are `stripe_bytes` wide
/// and assigned round-robin over `n_osts` targets starting at the
/// file's `ost_offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OstLayout {
    /// Stripe width in bytes.
    pub stripe_bytes: u64,
    /// Number of object storage targets in the pool.
    pub n_osts: usize,
    /// Round-robin start target of the (shared) file.
    pub ost_offset: usize,
}

impl OstLayout {
    /// A layout over `n_osts` targets with `stripe_bytes` stripes.
    ///
    /// Panics if either dimension is zero.
    pub fn new(stripe_bytes: u64, n_osts: usize, ost_offset: usize) -> Self {
        assert!(stripe_bytes > 0, "stripe_bytes must be positive");
        assert!(n_osts > 0, "n_osts must be positive");
        OstLayout {
            stripe_bytes,
            n_osts,
            ost_offset: ost_offset % n_osts,
        }
    }

    /// The target serving a byte offset.
    pub fn ost_of(&self, offset: u64) -> usize {
        ((offset / self.stripe_bytes) as usize + self.ost_offset) % self.n_osts
    }
}

/// Per-OST usage one job accumulated from its data calls.
#[derive(Debug, Clone, PartialEq)]
pub struct OstUsage {
    ops: Vec<u64>,
    secs: Vec<f64>,
}

impl OstUsage {
    /// Zeroed usage over `n_osts` targets.
    pub fn new(n_osts: usize) -> Self {
        OstUsage {
            ops: vec![0; n_osts],
            secs: vec![0.0; n_osts],
        }
    }

    /// Record one data call of `secs` service time against `ost`.
    pub fn add(&mut self, ost: usize, secs: f64) {
        if ost < self.ops.len() {
            self.ops[ost] += 1;
            self.secs[ost] += secs;
        }
    }

    /// Operation counts per target.
    pub fn ops(&self) -> &[u64] {
        &self.ops
    }

    /// Summed service time per target.
    pub fn secs(&self) -> &[f64] {
        &self.secs
    }

    /// Total data calls over all targets.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Targets whose mean service time stands out against the rest of
    /// the pool: `(ost, severity)` for every target with at least
    /// `min_ops` calls whose mean is `>= ratio` times the mean over all
    /// *other* targets' calls. Severity is that multiple.
    pub fn flagged(&self, min_ops: u64, ratio: f64) -> Vec<(usize, f64)> {
        let total_ops: u64 = self.ops.iter().sum();
        let total_secs: f64 = self.secs.iter().sum();
        let mut out = Vec::new();
        for (ost, (&ops, &secs)) in self.ops.iter().zip(&self.secs).enumerate() {
            if ops < min_ops {
                continue;
            }
            let rest_ops = total_ops - ops;
            if rest_ops == 0 {
                continue; // a single active target has no peer baseline
            }
            let mine = secs / ops as f64;
            let rest = (total_secs - secs) / rest_ops as f64;
            if rest > 0.0 && mine / rest >= ratio {
                out.push((ost, mine / rest));
            }
        }
        out
    }
}

/// One contended target: an OST that two or more jobs independently see
/// slow, with the jobs that flagged it.
#[derive(Debug, Clone, PartialEq)]
pub struct OstContention {
    /// The shared target.
    pub ost: usize,
    /// `(job name, severity)` for every tenant that flagged it, in
    /// fleet job order.
    pub jobs: Vec<(String, f64)>,
}

/// Intersect per-job OST outliers into the fleet contention view.
///
/// `per_job` pairs each tenant's name with its usage ledger (in fleet
/// job order, which the output preserves). Targets flagged by fewer
/// than two jobs are dropped — one slow tenant on one target is that
/// tenant's problem, not contention.
pub fn contention(per_job: &[(String, &OstUsage)], min_ops: u64, ratio: f64) -> Vec<OstContention> {
    let mut by_ost: Vec<(usize, Vec<(String, f64)>)> = Vec::new();
    for (name, usage) in per_job {
        for (ost, severity) in usage.flagged(min_ops, ratio) {
            match by_ost.iter_mut().find(|(o, _)| *o == ost) {
                Some((_, jobs)) => jobs.push((name.clone(), severity)),
                None => by_ost.push((ost, vec![(name.clone(), severity)])),
            }
        }
    }
    by_ost.sort_by_key(|(ost, _)| *ost);
    by_ost
        .into_iter()
        .filter(|(_, jobs)| jobs.len() >= 2)
        .map(|(ost, jobs)| OstContention { ost, jobs })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_maps_offsets_round_robin() {
        let l = OstLayout::new(1 << 20, 3, 0);
        assert_eq!(l.ost_of(0), 0);
        assert_eq!(l.ost_of((1 << 20) - 1), 0);
        assert_eq!(l.ost_of(1 << 20), 1);
        assert_eq!(l.ost_of(2 << 20), 2);
        assert_eq!(l.ost_of(3 << 20), 0);
        let shifted = OstLayout::new(1 << 20, 3, 2);
        assert_eq!(shifted.ost_of(0), 2);
        assert_eq!(shifted.ost_of(1 << 20), 0);
    }

    #[test]
    fn flagged_names_the_slow_target_only() {
        let mut u = OstUsage::new(4);
        for i in 0..4 {
            for _ in 0..100 {
                u.add(i, if i == 2 { 0.08 } else { 0.01 });
            }
        }
        let flags = u.flagged(32, 2.0);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].0, 2);
        assert!(flags[0].1 > 5.0, "severity {} should be ~8x", flags[0].1);
    }

    #[test]
    fn flagged_requires_volume_and_a_peer_baseline() {
        let mut u = OstUsage::new(4);
        u.add(1, 10.0); // one slow op: below min_ops
        for _ in 0..100 {
            u.add(0, 0.01);
        }
        assert!(u.flagged(32, 2.0).is_empty());
        // A single active target cannot be judged against itself.
        let mut solo = OstUsage::new(1);
        for _ in 0..100 {
            solo.add(0, 5.0);
        }
        assert!(solo.flagged(32, 2.0).is_empty());
    }

    #[test]
    fn contention_needs_two_jobs_on_the_same_target() {
        let mut a = OstUsage::new(3);
        let mut b = OstUsage::new(3);
        let mut c = OstUsage::new(3);
        for i in 0..3 {
            for _ in 0..100 {
                a.add(i, if i == 1 { 0.1 } else { 0.01 });
                b.add(i, if i == 1 { 0.2 } else { 0.02 });
                c.add(i, 0.01); // healthy tenant
            }
        }
        let rows = contention(
            &[
                ("job-a".into(), &a),
                ("job-b".into(), &b),
                ("job-c".into(), &c),
            ],
            32,
            2.0,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].ost, 1);
        let names: Vec<&str> = rows[0].jobs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["job-a", "job-b"]);
    }
}
