//! # pio-fleetd — always-on multi-tenant fleet diagnosis
//!
//! The paper's analysis runs one job at a time; a production center
//! runs hundreds at once, and the interesting question is often not
//! "is this job slow" but "which jobs are slow *together*, and on
//! what". This crate hosts the workspace's streaming diagnosis as a
//! long-running service:
//!
//! * [`service`] — the [`FleetService`]: job registration, per-job
//!   [`StreamDiagnoser`](pio_ingest::StreamDiagnoser) +
//!   [`SnapshotBuilder`](pio_ingest::SnapshotBuilder) state sharded
//!   over a bounded worker pool, per-tenant memory budgets under the
//!   ingest [`OverflowPolicy`](pio_ingest::OverflowPolicy), eviction at
//!   end of stream, and the query surface (verdicts, snapshots, top-k
//!   slowest operations, machine-wide roll-up).
//! * [`interference`] — the cross-job view: per-job per-OST usage
//!   ledgers intersected into "jobs A and B are both slow on OST k".
//! * [`sim`] — the simulated fleet driver: dozens of concurrent
//!   [`pio_mpi`] jobs (mixed workloads, a configurable fraction
//!   faulted) streamed through the service, used by the `pio-fleetd`
//!   binary, the benchmarks, and the integration tests.
//!
//! Determinism is load-bearing: jobs are sharded onto workers by id,
//! each job's stream is processed in order by one owner, and the
//! roll-up folds sketches in job-id order — so every verdict, sketch,
//! and roll-up is bit-identical across worker-pool sizes.

pub mod interference;
pub mod service;
pub mod sim;

pub use interference::{contention, OstContention, OstLayout, OstUsage};
pub use service::{FleetConfig, FleetService, JobId, JobReport, JobSink, SlowOp};
pub use sim::{check, feed, fleet_config, fleet_spec, simulate, FleetCheck, SimConfig, SimJob};
