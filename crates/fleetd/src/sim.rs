//! The simulated fleet: dozens of concurrent jobs — mixed workloads, a
//! configurable fraction under fault plans — streamed through a
//! [`FleetService`].
//!
//! The job mix deliberately mirrors the fault × workload matrix cells
//! (`pio-bench`'s `fault_matrix`) that the attribution-corpus test
//! certifies: every faulted tenant here is a workload/plan pair whose
//! batch and streaming verdicts are golden at the corpus seeds, and
//! every clean tenant is one of those cells' baselines. A fleet run is
//! therefore checkable end to end — faulted jobs must be attributed to
//! their injected class, clean jobs must stay clean — without this
//! crate re-deriving any thresholds.
//!
//! Replay order is the corpus's arrival order: each simulated trace is
//! sorted by `(start_ns, rank)` before it is streamed, so per-job fleet
//! verdicts match the single-job streaming diagnoser verdict for the
//! same records.

use crate::interference::OstLayout;
use crate::service::{FleetConfig, FleetService, JobId, JobSink};
use pio_core::attribution::FaultClass;
use pio_core::diagnosis::Verdict;
use pio_des::SimSpan;
use pio_fault::{Fault, FaultPlan};
use pio_fs::FsConfig;
use pio_ingest::DiagnoserConfig;
use pio_mpi::program::{FileSpec, Job, Op, Program};
use pio_mpi::{run_fleet, FleetJob, RunConfig};
use pio_trace::{Record, RecordSink, Trace, TraceMeta};
use pio_workloads::IorConfig;
use std::sync::Mutex;

/// Seeds the attribution corpus certifies; the fleet cycles through
/// them so every tenant's verdict is backed by a golden cell.
pub const CORPUS_SEEDS: [u64; 2] = [101, 202];

/// The diagnoser window the attribution corpus replays with; fleet
/// tenants use the same so per-job verdicts match the corpus.
pub const CORPUS_WINDOW: usize = 256;

/// Shape of a simulated fleet.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Total concurrent jobs.
    pub jobs: usize,
    /// How many of them run under a fault plan (cycling through the
    /// attributable fault classes; the rest are clean baselines).
    pub faulted: usize,
    /// Platform scale divisor (16 = the corpus scale).
    pub scale: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            jobs: 8,
            faulted: 2,
            scale: 16,
        }
    }
}

/// One tenant of the simulated fleet.
pub struct SimJob {
    /// Tenant label (`job-NN-<fault or workload>`).
    pub name: String,
    /// The workload.
    pub job: Job,
    /// Its platform.
    pub fs: FsConfig,
    /// The fault plan, if this tenant is faulted.
    pub plan: Option<FaultPlan>,
    /// Simulation seed (cycles over [`CORPUS_SEEDS`]).
    pub seed: u64,
    /// The class the fleet must attribute (`None` = must stay clean).
    pub expected: Option<FaultClass>,
}

impl SimJob {
    /// The OST layout this tenant's offsets map through.
    pub fn layout(&self) -> OstLayout {
        OstLayout::new(self.fs.stripe_bytes, self.fs.n_osts, 0)
    }
}

// ---------------------------------------------------------------------
// Workload builders. These mirror the fault-matrix cells exactly (same
// geometry, same pacing constants) so that fleet verdicts inherit the
// corpus's golden validation; see crates/bench/src/fault_matrix.rs.
// ---------------------------------------------------------------------

const MB: u64 = 1 << 20;

fn read_heavy(tasks: u32, repetitions: u32) -> Job {
    IorConfig {
        tasks,
        block_bytes: 8 << 20,
        segments: 8,
        repetitions,
        read_back: true,
        file_per_process: false,
    }
    .job()
}

fn paced_reads(tasks: u32, reads_per_rank: u32, gap_s: f64) -> Job {
    let programs = (0..tasks)
        .map(|t| {
            let mut ops = vec![
                Op::Open { file: 0 },
                Op::Barrier,
                Op::Compute {
                    span: SimSpan::from_secs_f64(t as f64 * gap_s * 0.37),
                },
            ];
            for i in 0..reads_per_rank {
                let jitter = 0.7 + 0.6 * ((t * 31 + i * 17) % 16) as f64 / 16.0;
                ops.push(Op::Compute {
                    span: SimSpan::from_secs_f64(gap_s * jitter),
                });
                ops.push(Op::ReadAt {
                    file: 0,
                    offset: (t as u64 * reads_per_rank as u64 + i as u64) * MB,
                    bytes: MB,
                });
            }
            ops.push(Op::Close { file: 0 });
            Program { ops }
        })
        .collect();
    Job {
        programs,
        files: vec![FileSpec { shared: true }],
    }
}

fn meta_heavy(tasks: u32, ops_per_rank: u32) -> Job {
    let programs = (0..tasks)
        .map(|t| {
            let mut ops = vec![
                Op::Open { file: 0 },
                Op::Barrier,
                Op::Compute {
                    span: SimSpan::from_secs_f64(t as f64 * 0.007),
                },
            ];
            for i in 0..ops_per_rank {
                ops.push(Op::Compute {
                    span: SimSpan::from_secs_f64(0.2),
                });
                ops.push(Op::MetaRead {
                    file: 0,
                    offset: (t as u64 * ops_per_rank as u64 + i as u64) * 4096,
                    bytes: 4096,
                });
            }
            ops.push(Op::Close { file: 0 });
            Program { ops }
        })
        .collect();
    Job {
        programs,
        files: vec![FileSpec { shared: true }],
    }
}

/// Build the tenant list for a fleet shape. Deterministic in `cfg`:
/// the first `faulted` tenants cycle through the five attributable
/// fault cells (slow-ost, flaky-fabric, mds-stall, straggler-node,
/// drop-retry), the rest cycle through the matching clean baselines;
/// seeds alternate over [`CORPUS_SEEDS`]. With `faulted >= 6` the
/// slow-ost cell recurs, giving two tenants colliding on the same
/// degraded OST — the interference view's must-catch case.
pub fn fleet_spec(cfg: &SimConfig) -> Vec<SimJob> {
    let fs = FsConfig::franklin().scaled(cfg.scale.max(1));
    let mut calm = fs.clone();
    calm.discipline_weights = [0.0, 0.0, 1.0];
    let tasks = (256 / cfg.scale.max(1)).max(16);
    let n_osts = fs.n_osts;

    (0..cfg.jobs)
        .map(|i| {
            let seed = CORPUS_SEEDS[i % CORPUS_SEEDS.len()];
            if i < cfg.faulted {
                let (label, plan, job, platform, expected) = match i % 5 {
                    0 => (
                        "slow-ost",
                        FaultPlan::new().with(Fault::SlowOst {
                            ost: 1 % n_osts,
                            slowdown: 8.0,
                            ramp_per_s: 0.0,
                        }),
                        read_heavy(tasks, 2),
                        calm.clone(),
                        FaultClass::SlowOst,
                    ),
                    1 => (
                        "flaky-fabric",
                        FaultPlan::new().with(Fault::FlakyFabric {
                            period_s: 0.25,
                            duty: 0.1,
                            slowdown: 40.0,
                        }),
                        paced_reads(tasks, 48, 0.1),
                        calm.clone(),
                        FaultClass::FlakyFabric,
                    ),
                    2 => (
                        "mds-stall",
                        FaultPlan::new().with(Fault::MdsStall {
                            period_s: 3.1,
                            stall_s: 0.7,
                        }),
                        meta_heavy(tasks, 40),
                        fs.clone(),
                        FaultClass::MdsStall,
                    ),
                    3 => (
                        "straggler-node",
                        FaultPlan::new().with(Fault::StragglerNode {
                            node: 0,
                            slowdown: 32.0,
                        }),
                        paced_reads(tasks, 48, 0.1),
                        calm.clone(),
                        FaultClass::StragglerNode,
                    ),
                    _ => (
                        "drop-retry",
                        FaultPlan::new().with(Fault::DropRetry {
                            prob: 0.08,
                            timeout_s: 0.3,
                            max_retries: 4,
                        }),
                        paced_reads(tasks, 48, 0.1),
                        calm.clone(),
                        FaultClass::DropRetry,
                    ),
                };
                SimJob {
                    name: format!("job-{i:02}-{label}"),
                    job,
                    fs: platform,
                    plan: Some(plan),
                    seed,
                    expected: Some(expected),
                }
            } else {
                let (label, job, platform) = match i % 3 {
                    0 => ("ior-read", read_heavy(tasks, 2), fs.clone()),
                    1 => ("paced-read", paced_reads(tasks, 48, 0.1), calm.clone()),
                    _ => ("meta-stream", meta_heavy(tasks, 40), fs.clone()),
                };
                SimJob {
                    name: format!("job-{i:02}-{label}"),
                    job,
                    fs: platform,
                    plan: None,
                    seed,
                    expected: None,
                }
            }
        })
        .collect()
}

/// A [`FleetConfig`] tuned for the simulated fleet: `pool` workers,
/// per-tenant `budget_bytes`, and the corpus diagnoser window so fleet
/// verdicts match the golden single-job verdicts.
pub fn fleet_config(pool: usize, budget_bytes: usize) -> FleetConfig {
    FleetConfig {
        workers: pool,
        budget_bytes,
        diagnoser: DiagnoserConfig {
            window: CORPUS_WINDOW,
            ..DiagnoserConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Simulate every tenant concurrently over `threads` OS threads and
/// return each job's trace in corpus arrival order (records sorted by
/// `(start_ns, rank)`), indexed like `spec`.
pub fn simulate(spec: &[SimJob], threads: usize) -> Vec<Trace> {
    let jobs: Vec<(FleetJob, Trace)> = spec
        .iter()
        .map(|s| {
            let mut cfg = RunConfig::new(s.fs.clone(), s.seed, s.name.clone());
            if let Some(p) = &s.plan {
                cfg = cfg.with_fault(p.clone());
            }
            let sink = Trace::new(TraceMeta {
                experiment: s.name.clone(),
                platform: s.fs.name.clone(),
                ranks: s.job.ranks(),
                seed: s.seed,
            });
            (
                FleetJob {
                    name: s.name.clone(),
                    job: s.job.clone(),
                    cfg,
                },
                sink,
            )
        })
        .collect();
    run_fleet(jobs, threads)
        .into_iter()
        .map(|(run, mut trace)| {
            run.report.expect("simulated fleet job runs to completion");
            trace.records.sort_by_key(|r| (r.start_ns, r.rank));
            trace
        })
        .collect()
}

/// Register every tenant and stream its records into the service over
/// `threads` concurrent feeder threads (whole jobs are claimed
/// work-stealing style, so each job's stream stays in order). Returns
/// the assigned job ids, indexed like `spec`.
pub fn feed(
    service: &FleetService,
    spec: &[SimJob],
    traces: &[Trace],
    threads: usize,
) -> Vec<JobId> {
    assert_eq!(spec.len(), traces.len(), "one trace per tenant");
    // Register in spec order so id assignment is deterministic.
    let sinks: Vec<JobSink> = spec
        .iter()
        .map(|s| service.register_with_layout(&s.name, s.layout()))
        .collect();
    let ids: Vec<JobId> = sinks.iter().map(JobSink::id).collect();
    type FeedSlot<'a> = Mutex<Option<(JobSink, &'a [Record])>>;
    let slots: Vec<FeedSlot> = sinks
        .into_iter()
        .zip(traces)
        .map(|(sink, trace)| Mutex::new(Some((sink, trace.records.as_slice()))))
        .collect();
    let workers = threads.clamp(1, slots.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let (mut sink, records) = slots[i]
                    .lock()
                    .expect("feeder slot")
                    .take()
                    .expect("each tenant fed exactly once");
                for r in records {
                    sink.push(r);
                }
                sink.finish();
            });
        }
    })
    .expect("feeder scope");
    ids
}

/// One tenant's attribution check after a fleet run.
#[derive(Debug, Clone)]
pub struct FleetCheck {
    /// Tenant label.
    pub name: String,
    /// The class the tenant must be attributed to (`None` = clean).
    pub expected: Option<FaultClass>,
    /// The fleet's verdict.
    pub verdict: Verdict,
    /// Records the service ingested for this tenant.
    pub records: u64,
    /// Records shed (budget or transport).
    pub shed: u64,
    /// Verdict matches expectation.
    pub ok: bool,
}

/// Compare every tenant's fleet verdict against its expectation.
pub fn check(service: &FleetService, spec: &[SimJob], ids: &[JobId]) -> Vec<FleetCheck> {
    spec.iter()
        .zip(ids)
        .map(|(s, &id)| {
            let report = service.report(id);
            let verdict = report.as_ref().map_or(Verdict::Clean, |r| r.verdict());
            let ok = match s.expected {
                None => verdict == Verdict::Clean,
                Some(c) => verdict == Verdict::Single(c),
            };
            FleetCheck {
                name: s.name.clone(),
                expected: s.expected,
                records: report.as_ref().map_or(0, |r| r.ingested),
                shed: report.as_ref().map_or(0, |r| r.shed),
                verdict,
                ok,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_deterministic_and_labeled() {
        let cfg = SimConfig {
            jobs: 12,
            faulted: 6,
            scale: 16,
        };
        let a = fleet_spec(&cfg);
        let b = fleet_spec(&cfg);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.expected, y.expected);
        }
        // Faulted prefix, clean tail.
        assert!(a[..6]
            .iter()
            .all(|s| s.plan.is_some() && s.expected.is_some()));
        assert!(a[6..]
            .iter()
            .all(|s| s.plan.is_none() && s.expected.is_none()));
        // faulted >= 6 makes the slow-ost cell recur: the interference
        // collision pair.
        assert!(a[0].name.ends_with("slow-ost"));
        assert!(a[5].name.ends_with("slow-ost"));
    }

    #[test]
    fn simulate_orders_records_by_arrival() {
        let spec = fleet_spec(&SimConfig {
            jobs: 2,
            faulted: 0,
            scale: 16,
        });
        let traces = simulate(&spec, 2);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert!(!t.records.is_empty());
            assert!(t
                .records
                .windows(2)
                .all(|w| (w[0].start_ns, w[0].rank) <= (w[1].start_ns, w[1].rank)));
        }
    }
}
