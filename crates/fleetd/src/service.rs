//! The always-on fleet service: many concurrent job streams, one
//! bounded worker pool, per-tenant budgets, and a query surface.
//!
//! # Architecture
//!
//! A [`FleetService`] owns a fixed pool of worker threads. Registering
//! a job hands back a [`JobSink`] — a [`RecordSink`] the producer (a
//! tracer transport, or the simulated fleet driver) pushes records
//! into. The sink batches records into blocks and sends them over the
//! owning worker's bounded channel; jobs are sharded onto workers by
//! `job id % workers`, so one worker owns *all* of a job's stream and
//! processes it in producer order. Per-job state is therefore
//! independent of the pool size: verdicts, snapshots, and roll-ups are
//! bit-identical whether the service runs 1 worker or 8.
//!
//! Each tenant carries a [`StreamDiagnoser`] (online findings), a
//! [`SnapshotBuilder`] (the mergeable ensemble sketch), a
//! [`TenantMeter`] enforcing the per-tenant resident budget under the
//! configured [`OverflowPolicy`], a top-k slowest-operation heap, and a
//! per-OST usage ledger for the cross-job interference view. End of
//! stream finalizes the diagnosis, evicts the tenant from the live
//! table, and files an immutable [`JobReport`].
//!
//! The machine-wide roll-up merges every per-job ensemble sketch
//! ([`EnsembleSnapshot::merge`]) in job-id order — the canonical fold
//! order that makes the roll-up reproducible across pool sizes and
//! completion interleavings.

use crate::interference::{contention, OstContention, OstLayout, OstUsage};
use pio_core::diagnosis::{run_verdict, Verdict};
use pio_ingest::{
    Admission, DiagnoserConfig, EnsembleSnapshot, OverflowPolicy, SnapshotBuilder, SnapshotConfig,
    StreamDiagnoser, TenantMeter, TimedFinding,
};
use pio_trace::{CallKind, Record, RecordSink};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Sender, TrySendError};
use parking_lot::Mutex;

/// Fleet-wide job identifier, assigned at registration.
pub type JobId = u64;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker-pool size; jobs are sharded by `id % workers`.
    pub workers: usize,
    /// Bounded channel capacity (messages) per worker.
    pub capacity: usize,
    /// Records per block in a [`JobSink`] before it ships.
    pub batch: usize,
    /// What a full worker channel does to a record block:
    /// [`OverflowPolicy::Block`] applies producer backpressure,
    /// [`OverflowPolicy::DropAndCount`] sheds the block and counts it.
    pub policy: OverflowPolicy,
    /// Per-tenant resident-sketch budget in bytes (0 = unlimited),
    /// enforced by a [`TenantMeter`] under `policy`.
    pub budget_bytes: usize,
    /// Ensemble-sketch shape for every tenant.
    pub snapshot: SnapshotConfig,
    /// Online-diagnoser shape for every tenant.
    pub diagnoser: DiagnoserConfig,
    /// Slowest operations retained per job.
    pub top_k: usize,
    /// Default OST layout for tenants registered without one.
    pub layout: OstLayout,
    /// Interference view: minimum calls on a target before judging it.
    pub min_ost_ops: u64,
    /// Interference view: per-target mean vs. pool-rest mean multiple
    /// at which a target counts as slow for a job.
    pub contention_ratio: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            capacity: 64,
            batch: 256,
            policy: OverflowPolicy::Block,
            budget_bytes: 0,
            snapshot: SnapshotConfig::default(),
            diagnoser: DiagnoserConfig::default(),
            top_k: 8,
            layout: OstLayout::new(1 << 20, 48, 0),
            min_ost_ops: 32,
            contention_ratio: 2.0,
        }
    }
}

/// One operation in a job's slowest-k list.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowOp {
    /// Service time in seconds.
    pub secs: f64,
    /// Issuing rank.
    pub rank: u32,
    /// Call class.
    pub call: CallKind,
    /// Virtual start time.
    pub start_ns: u64,
    /// Bytes moved.
    pub bytes: u64,
}

impl SlowOp {
    fn key(&self) -> (u64, u64, u32, u8) {
        // Total order: duration first, then a deterministic tiebreak so
        // the retained set never depends on arrival interleaving.
        (
            self.secs.max(0.0).to_bits(),
            self.start_ns,
            self.rank,
            self.call as u8,
        )
    }
}

/// Heap adapter ordering [`SlowOp`] by its deterministic key.
struct HeapOp(SlowOp);

impl PartialEq for HeapOp {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for HeapOp {}
impl PartialOrd for HeapOp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapOp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// The immutable record of a finished (or frozen) tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Fleet job id.
    pub id: JobId,
    /// Tenant label.
    pub name: String,
    /// Online findings in firing order.
    pub findings: Vec<TimedFinding>,
    /// The job's final ensemble sketch (its `dropped` counts every
    /// record shed by budget or transport).
    pub snapshot: EnsembleSnapshot,
    /// Records admitted into the sketches.
    pub ingested: u64,
    /// Records shed (budget) plus blocks dropped in transport.
    pub shed: u64,
    /// The tenant went over budget under [`OverflowPolicy::Block`] and
    /// was frozen (diagnosis covers the admitted prefix).
    pub frozen: bool,
    /// Slowest operations, slowest first.
    pub top_slow: Vec<SlowOp>,
    /// Per-OST usage ledger for the interference view.
    pub ost: OstUsage,
    /// The layout the ledger was accumulated under.
    pub layout: OstLayout,
}

impl JobReport {
    /// The job's verdict: the union of every attributed online finding
    /// — [`Verdict::Clean`] for a clean job, a single class, a compound
    /// verdict naming each independently evidenced class, or an
    /// ambiguous candidate list the evidence could not separate.
    pub fn verdict(&self) -> Verdict {
        let inner: Vec<_> = self.findings.iter().map(|t| t.finding.clone()).collect();
        run_verdict(&inner)
    }

    /// Did the job stream zero records?
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty() && self.shed == 0
    }
}

/// Live per-tenant state, owned by exactly one worker.
struct TenantState {
    name: String,
    layout: OstLayout,
    meter: TenantMeter,
    diagnoser: StreamDiagnoser,
    builder: SnapshotBuilder,
    slow: BinaryHeap<std::cmp::Reverse<HeapOp>>,
    top_k: usize,
    ost: OstUsage,
}

impl TenantState {
    fn new(name: String, layout: OstLayout, cfg: &FleetConfig) -> Self {
        TenantState {
            name,
            layout,
            meter: TenantMeter::new(cfg.budget_bytes, cfg.policy),
            diagnoser: StreamDiagnoser::new(cfg.diagnoser.clone()),
            builder: SnapshotBuilder::new(cfg.snapshot.clone()),
            slow: BinaryHeap::new(),
            top_k: cfg.top_k,
            ost: OstUsage::new(layout.n_osts),
        }
    }

    /// Record-at-a-time reference path. Production traffic flows through
    /// [`Self::ingest_block`]; this stays as the oracle the parity tests
    /// (and the proptests in `tests/`) hold the block path against.
    #[cfg_attr(not(test), allow(dead_code))]
    fn ingest(&mut self, r: &Record) {
        self.diagnoser.push(r);
        self.builder.accumulate(r);
        if matches!(r.call, CallKind::Read | CallKind::Write) {
            self.ost.add(self.layout.ost_of(r.offset), r.secs());
        }
        let op = SlowOp {
            secs: r.secs(),
            rank: r.rank,
            call: r.call,
            start_ns: r.start_ns,
            bytes: r.bytes,
        };
        if self.slow.len() < self.top_k {
            self.slow.push(std::cmp::Reverse(HeapOp(op)));
        } else if let Some(min) = self.slow.peek() {
            if HeapOp(op.clone()) > min.0 {
                self.slow.pop();
                self.slow.push(std::cmp::Reverse(HeapOp(op)));
            }
        }
    }

    /// Block ingest: the diagnoser and snapshot builder take the whole
    /// block through their batched hot paths; the OST meter and slow-op
    /// heap stay per-record. Per-component state is identical to
    /// per-record [`Self::ingest`] — components are independent, so
    /// reordering *across* them is unobservable.
    fn ingest_block(&mut self, records: &[Record]) {
        self.diagnoser.push_block(records);
        self.builder.accumulate_block(records);
        for r in records {
            if matches!(r.call, CallKind::Read | CallKind::Write) {
                self.ost.add(self.layout.ost_of(r.offset), r.secs());
            }
            let op = SlowOp {
                secs: r.secs(),
                rank: r.rank,
                call: r.call,
                start_ns: r.start_ns,
                bytes: r.bytes,
            };
            if self.slow.len() < self.top_k {
                self.slow.push(std::cmp::Reverse(HeapOp(op)));
            } else if let Some(min) = self.slow.peek() {
                if HeapOp(op.clone()) > min.0 {
                    self.slow.pop();
                    self.slow.push(std::cmp::Reverse(HeapOp(op)));
                }
            }
        }
    }

    fn into_report(mut self, id: JobId, transport_dropped: u64) -> JobReport {
        self.diagnoser.finish();
        let shed = self.meter.shed() + transport_dropped;
        let mut top_slow: Vec<SlowOp> = self
            .slow
            .into_sorted_vec()
            .into_iter()
            .map(|r| r.0 .0)
            .collect();
        // `into_sorted_vec` on `Reverse` yields slowest-last; flip to
        // slowest-first for the query surface.
        top_slow.reverse();
        JobReport {
            id,
            name: self.name,
            findings: self.diagnoser.findings().to_vec(),
            snapshot: self.builder.into_snapshot(shed),
            ingested: self.meter.ingested(),
            shed,
            frozen: self.meter.frozen(),
            top_slow,
            ost: self.ost,
            layout: self.layout,
        }
    }
}

#[derive(Debug)]
enum Msg {
    Open {
        job: JobId,
        name: String,
        layout: OstLayout,
    },
    Block {
        job: JobId,
        records: Vec<Record>,
    },
    PhaseEnd {
        job: JobId,
        phase: u32,
    },
    Eos {
        job: JobId,
        transport_dropped: u64,
    },
}

type LiveMap = Arc<Mutex<HashMap<JobId, TenantState>>>;
type DoneMap = Arc<Mutex<BTreeMap<JobId, JobReport>>>;

/// The multi-tenant fleet diagnosis service. See the [module
/// docs](self) for the architecture.
pub struct FleetService {
    cfg: FleetConfig,
    senders: Vec<Sender<Msg>>,
    live: Vec<LiveMap>,
    completed: DoneMap,
    handles: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl FleetService {
    /// Start the worker pool.
    pub fn new(cfg: FleetConfig) -> Self {
        let workers = cfg.workers.max(1);
        let completed: DoneMap = Arc::new(Mutex::new(BTreeMap::new()));
        let mut senders = Vec::with_capacity(workers);
        let mut live = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::bounded::<Msg>(cfg.capacity.max(1));
            let map: LiveMap = Arc::new(Mutex::new(HashMap::new()));
            let worker_cfg = cfg.clone();
            let worker_map = Arc::clone(&map);
            let worker_done = Arc::clone(&completed);
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Open { job, name, layout } => {
                            let st = TenantState::new(name, layout, &worker_cfg);
                            worker_map.lock().insert(job, st);
                        }
                        Msg::Block { job, records } => {
                            let mut map = worker_map.lock();
                            let Some(st) = map.get_mut(&job) else {
                                continue;
                            };
                            match st
                                .meter
                                .admit(st.builder.approx_bytes(), records.len() as u64)
                            {
                                Admission::Admit => st.ingest_block(&records),
                                // Shed keeps the tenant live (later
                                // blocks are re-judged); Freeze is
                                // sticky — the meter stays frozen.
                                Admission::Shed | Admission::Freeze => {}
                            }
                        }
                        Msg::PhaseEnd { job, phase } => {
                            if let Some(st) = worker_map.lock().get_mut(&job) {
                                if !st.meter.frozen() {
                                    st.diagnoser.phase_end(phase);
                                }
                            }
                        }
                        Msg::Eos {
                            job,
                            transport_dropped,
                        } => {
                            let st = worker_map.lock().remove(&job);
                            if let Some(st) = st {
                                worker_done
                                    .lock()
                                    .insert(job, st.into_report(job, transport_dropped));
                            }
                        }
                    }
                }
            }));
            senders.push(tx);
            live.push(map);
        }
        FleetService {
            cfg,
            senders,
            live,
            completed,
            handles,
            next_id: AtomicU64::new(0),
        }
    }

    /// Register a tenant under the service's default OST layout.
    pub fn register(&self, name: &str) -> JobSink {
        self.register_with_layout(name, self.cfg.layout)
    }

    /// Register a tenant with its own OST layout (platforms differ
    /// across a fleet). Returns the sink the producer streams into;
    /// dropping or [`RecordSink::finish`]ing it ends the stream.
    pub fn register_with_layout(&self, name: &str, layout: OstLayout) -> JobSink {
        assert!(
            !self.senders.is_empty(),
            "register on a shut-down FleetService"
        );
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let sender = self.senders[self.worker_of(id)].clone();
        sender
            .send(Msg::Open {
                job: id,
                name: name.to_string(),
                layout,
            })
            .expect("fleet worker alive");
        JobSink {
            job: id,
            sender,
            batch: self.cfg.batch.max(1),
            policy: self.cfg.policy,
            pending: Vec::with_capacity(self.cfg.batch.max(1)),
            dropped: 0,
            eos: false,
        }
    }

    /// Register `name` and stream an on-disk trace file into it — any
    /// format the `TraceCodec` registry knows (JSONL, ptb, ptb2),
    /// sniffed from the file's leading bytes. Phase boundaries flow
    /// through to the tenant's diagnoser; end of file is end of stream.
    /// Returns the trace metadata and the number of records ingested.
    pub fn ingest_file(
        &self,
        name: &str,
        path: &std::path::Path,
    ) -> std::io::Result<(pio_trace::TraceMeta, u64)> {
        let mut sink = self.register(name);
        pio_ingest::stream_file(path, &mut sink)
    }

    fn worker_of(&self, id: JobId) -> usize {
        (id as usize) % self.live.len()
    }

    /// Worker-pool size.
    pub fn workers(&self) -> usize {
        self.live.len()
    }

    /// Tenants currently live (registered, no end-of-stream yet).
    ///
    /// Counts what the workers have *processed*; messages still queued
    /// in worker channels are not yet visible.
    pub fn live_jobs(&self) -> usize {
        self.live.iter().map(|m| m.lock().len()).sum()
    }

    /// Ids of completed jobs, ascending.
    pub fn completed_jobs(&self) -> Vec<JobId> {
        self.completed.lock().keys().copied().collect()
    }

    /// The finished report of a completed job.
    pub fn report(&self, id: JobId) -> Option<JobReport> {
        self.completed.lock().get(&id).cloned()
    }

    /// Every completed report, in job-id order.
    pub fn reports(&self) -> Vec<JobReport> {
        self.completed.lock().values().cloned().collect()
    }

    /// A job's online findings so far (live) or final findings
    /// (completed). `None` for an unknown id or one still queued.
    pub fn findings(&self, id: JobId) -> Option<Vec<TimedFinding>> {
        if let Some(r) = self.completed.lock().get(&id) {
            return Some(r.findings.clone());
        }
        self.live[self.worker_of(id)]
            .lock()
            .get(&id)
            .map(|st| st.diagnoser.findings().to_vec())
    }

    /// A job's verdict so far: the union of every attributed online
    /// finding, `None` for an unknown job.
    pub fn verdict(&self, id: JobId) -> Option<Verdict> {
        let inner: Vec<_> = self
            .findings(id)?
            .iter()
            .map(|t| t.finding.clone())
            .collect();
        Some(run_verdict(&inner))
    }

    /// A job's ensemble sketch: live tenants are snapshotted in place,
    /// completed jobs return their final sketch.
    pub fn snapshot(&self, id: JobId) -> Option<EnsembleSnapshot> {
        if let Some(r) = self.completed.lock().get(&id) {
            return Some(r.snapshot.clone());
        }
        self.live[self.worker_of(id)]
            .lock()
            .get(&id)
            .map(|st| st.builder.snapshot(st.meter.shed()))
    }

    /// A job's slowest operations so far, slowest first.
    pub fn top_slow(&self, id: JobId) -> Option<Vec<SlowOp>> {
        if let Some(r) = self.completed.lock().get(&id) {
            return Some(r.top_slow.clone());
        }
        self.live[self.worker_of(id)].lock().get(&id).map(|st| {
            let mut v: Vec<SlowOp> = st.slow.iter().map(|r| r.0 .0.clone()).collect();
            v.sort_by_key(|op| std::cmp::Reverse(op.key()));
            v
        })
    }

    /// The machine-wide roll-up: every job's ensemble sketch (completed
    /// and live) merged in job-id order. The canonical fold order makes
    /// the result identical across pool sizes and completion
    /// interleavings once the same streams have been processed.
    pub fn rollup(&self) -> EnsembleSnapshot {
        let mut parts: Vec<(JobId, EnsembleSnapshot)> = self
            .completed
            .lock()
            .iter()
            .map(|(&id, r)| (id, r.snapshot.clone()))
            .collect();
        for map in &self.live {
            let map = map.lock();
            for (&id, st) in map.iter() {
                parts.push((id, st.builder.snapshot(st.meter.shed())));
            }
        }
        parts.sort_by_key(|(id, _)| *id);
        let mut acc = EnsembleSnapshot::empty(&self.cfg.snapshot);
        for (_, snap) in parts {
            acc.merge(&snap);
        }
        acc
    }

    /// The cross-job interference view over completed jobs: OSTs that
    /// two or more tenants independently flagged slow, with the tenants
    /// named. See [`crate::interference`].
    pub fn interference(&self) -> Vec<OstContention> {
        let done = self.completed.lock();
        let per_job: Vec<(String, &OstUsage)> =
            done.values().map(|r| (r.name.clone(), &r.ost)).collect();
        contention(&per_job, self.cfg.min_ost_ops, self.cfg.contention_ratio)
    }

    /// Stop accepting registrations, drain every queued message, and
    /// join the workers. Idempotent; queries remain answerable from the
    /// completed map afterwards.
    pub fn shutdown(&mut self) {
        self.senders.clear(); // disconnects channels; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The producer half of one registered job: a [`RecordSink`] that
/// batches records into blocks and ships them to the owning worker.
///
/// Blocks respect the service [`OverflowPolicy`]; control messages
/// (phase ends, end-of-stream) always block — losing a record block
/// under pressure degrades statistics, losing end-of-stream would leak
/// the tenant. Dropping the sink sends end-of-stream if
/// [`RecordSink::finish`] has not already.
pub struct JobSink {
    job: JobId,
    sender: Sender<Msg>,
    batch: usize,
    policy: OverflowPolicy,
    pending: Vec<Record>,
    dropped: u64,
    eos: bool,
}

impl JobSink {
    /// The fleet job id this sink feeds.
    pub fn id(&self) -> JobId {
        self.job
    }

    /// Records dropped in transport so far (always 0 under
    /// [`OverflowPolicy::Block`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn flush_block(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let records = std::mem::take(&mut self.pending);
        let n = records.len() as u64;
        let msg = Msg::Block {
            job: self.job,
            records,
        };
        match self.policy {
            OverflowPolicy::Block => {
                if self.sender.send(msg).is_err() {
                    self.dropped += n;
                }
            }
            OverflowPolicy::DropAndCount => {
                if let Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) =
                    self.sender.try_send(msg)
                {
                    self.dropped += n;
                }
            }
        }
    }
}

impl RecordSink for JobSink {
    fn push(&mut self, r: &Record) {
        self.pending.push(r.clone());
        if self.pending.len() >= self.batch {
            self.flush_block();
        }
    }

    /// Fill-to-batch chunking: the pending buffer tops up to the batch
    /// size and ships, repeatedly — byte-identical block boundaries to
    /// pushing the records one at a time, so worker-side admission
    /// metering sees the same block sequence whatever the upstream
    /// decoder's block size was.
    fn push_block(&mut self, block: &[Record]) {
        let mut run = block;
        while !run.is_empty() {
            // Invariant: pending is always below the batch size here
            // (push/flush keep it that way), so room >= 1.
            let room = self.batch - self.pending.len();
            let take = room.min(run.len());
            self.pending.extend_from_slice(&run[..take]);
            run = &run[take..];
            if self.pending.len() >= self.batch {
                self.flush_block();
            }
        }
    }

    fn phase_end(&mut self, phase: u32) {
        self.flush_block();
        let _ = self.sender.send(Msg::PhaseEnd {
            job: self.job,
            phase,
        });
    }

    fn finish(&mut self) {
        self.flush_block();
        if !self.eos {
            self.eos = true;
            let _ = self.sender.send(Msg::Eos {
                job: self.job,
                transport_dropped: self.dropped,
            });
        }
    }
}

impl Drop for JobSink {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, call: CallKind, offset: u64, start_ns: u64, dur_ns: u64) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset,
            bytes: 1 << 20,
            start_ns,
            end_ns: start_ns + dur_ns,
            phase: 0,
        }
    }

    fn stream(n: usize, rank_mod: u32) -> Vec<Record> {
        (0..n)
            .map(|i| {
                rec(
                    i as u32 % rank_mod,
                    if i % 3 == 0 {
                        CallKind::Write
                    } else {
                        CallKind::Read
                    },
                    (i as u64) << 20,
                    i as u64 * 1_000_000,
                    2_000_000 + (i as u64 % 7) * 100_000,
                )
            })
            .collect()
    }

    fn cfg(workers: usize) -> FleetConfig {
        FleetConfig {
            workers,
            layout: OstLayout::new(1 << 20, 4, 0),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn tenant_block_ingest_matches_per_record_reference() {
        // A deliberately hostile stream for the batched kernels: every
        // call kind (meta runs included), rolling phase stamps, small
        // writes, and spiky durations.
        let mut records = Vec::new();
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..1800u64 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let call = CallKind::ALL[(seed >> 33) as usize % CallKind::ALL.len()];
            let mut r = rec(
                (i % 24) as u32,
                call,
                (seed >> 7) & 0x0fff_ffff,
                i * 500_000,
                200_000 + seed % 40_000_000,
            );
            r.phase = (i / 450) as u32;
            if i % 11 == 0 {
                r.bytes = 2048;
            }
            records.push(r);
        }

        let layout = OstLayout::new(1 << 20, 6, 0);
        let fcfg = FleetConfig::default();
        let mut reference = TenantState::new("job".into(), layout, &fcfg);
        for r in &records {
            reference.ingest(r);
        }
        reference.diagnoser.phase_end(0);
        reference.diagnoser.phase_end(1);
        let want = reference.into_report(1, 0);

        for chunk in [1usize, 5, 64, 257, 1800] {
            let mut st = TenantState::new("job".into(), layout, &fcfg);
            for block in records.chunks(chunk) {
                st.ingest_block(block);
            }
            st.diagnoser.phase_end(0);
            st.diagnoser.phase_end(1);
            assert_eq!(st.into_report(1, 0), want, "chunk={chunk}");
        }
    }

    #[test]
    fn eos_evicts_and_files_a_report() {
        let mut svc = FleetService::new(cfg(2));
        let records = stream(600, 8);
        let mut sink = svc.register("tenant-a");
        let id = sink.id();
        for r in &records {
            sink.push(r);
        }
        sink.finish();
        drop(sink);
        svc.shutdown();
        assert_eq!(svc.live_jobs(), 0);
        let report = svc.report(id).expect("report filed");
        assert_eq!(report.name, "tenant-a");
        assert_eq!(report.ingested, 600);
        assert_eq!(report.shed, 0);
        assert!(!report.frozen);
        assert_eq!(report.snapshot.ingested, 600);
        assert_eq!(report.top_slow.len(), svc.cfg.top_k);
        // Slowest-first and genuinely the max.
        let max = records.iter().map(Record::secs).fold(0.0f64, f64::max);
        assert_eq!(report.top_slow[0].secs, max);
        assert!(report.top_slow.windows(2).all(|w| w[0].secs >= w[1].secs));
    }

    #[test]
    fn ingest_file_streams_any_codec_with_identical_reports() {
        use pio_trace::io::TraceFormat;
        let dir = std::env::temp_dir().join("pio_fleetd_ingest_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut trace = pio_trace::Trace::new(pio_trace::TraceMeta {
            experiment: "fleet-file".into(),
            platform: "test".into(),
            ranks: 8,
            seed: 11,
        });
        for r in stream(600, 8) {
            trace.push(r);
        }
        let mut svc = FleetService::new(cfg(2));
        for format in TraceFormat::ALL {
            let path = dir.join(format!("job.{}", format.name()));
            pio_trace::io::save_as(&trace, &path, format).unwrap();
            let (meta, n) = svc.ingest_file(format.name(), &path).unwrap();
            assert_eq!(meta, trace.meta);
            assert_eq!(n, 600);
            std::fs::remove_file(&path).ok();
        }
        svc.shutdown();
        let reports = svc.reports();
        assert_eq!(reports.len(), TraceFormat::ALL.len());
        // The encoding must not leak into the diagnosis: every format's
        // report carries the same snapshot, findings, and slow ops.
        for r in &reports[1..] {
            assert_eq!(r.ingested, reports[0].ingested);
            assert_eq!(r.snapshot, reports[0].snapshot);
            assert_eq!(r.findings, reports[0].findings);
            assert_eq!(r.top_slow, reports[0].top_slow);
        }
    }

    #[test]
    fn zero_record_job_reports_empty_and_clean() {
        let mut svc = FleetService::new(cfg(1));
        let mut sink = svc.register("idle");
        let id = sink.id();
        sink.finish();
        drop(sink);
        svc.shutdown();
        let report = svc.report(id).expect("report filed");
        assert!(report.is_empty());
        assert!(report.snapshot.is_empty());
        assert_eq!(report.verdict(), Verdict::Clean);
        assert!(report.findings.is_empty());
        assert!(report.top_slow.is_empty());
        // An empty job is the merge identity: it cannot perturb the
        // machine roll-up.
        assert!(svc.rollup().is_empty());
    }

    #[test]
    fn block_budget_freezes_tenant_but_keeps_prefix() {
        let mut c = cfg(1);
        c.budget_bytes = 1; // over budget as soon as anything is resident
        c.batch = 64;
        let mut svc = FleetService::new(c);
        let mut sink = svc.register("greedy");
        let id = sink.id();
        for r in stream(640, 8) {
            sink.push(&r);
        }
        sink.finish();
        drop(sink);
        svc.shutdown();
        let report = svc.report(id).expect("report filed");
        assert!(report.frozen, "Block policy over budget must freeze");
        // First block admitted (resident was 0 at the check), the rest shed.
        assert_eq!(report.ingested, 64);
        assert_eq!(report.shed, 640 - 64);
        assert_eq!(report.snapshot.dropped, 640 - 64);
        assert!(report.snapshot.ingested == 64);
    }

    #[test]
    fn unlimited_budget_never_sheds() {
        let mut svc = FleetService::new(cfg(2));
        let mut sink = svc.register("big");
        let id = sink.id();
        for r in stream(5_000, 16) {
            sink.push(&r);
        }
        sink.finish();
        drop(sink);
        svc.shutdown();
        let report = svc.report(id).expect("report filed");
        assert_eq!(report.ingested, 5_000);
        assert_eq!(report.shed, 0);
        assert!(!report.frozen);
    }

    #[test]
    fn live_queries_answer_before_eos() {
        let mut svc = FleetService::new(cfg(1));
        let records = stream(600, 8);
        let mut sink = svc.register("live");
        let id = sink.id();
        for r in &records {
            sink.push(r);
        }
        // Flush pending without ending the stream, then give the worker
        // a moment to drain.
        sink.phase_end(0);
        for _ in 0..200 {
            if svc.snapshot(id).map(|s| s.ingested) == Some(600) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(svc.live_jobs(), 1);
        let snap = svc.snapshot(id).expect("live snapshot");
        assert_eq!(snap.ingested, 600);
        assert!(svc.top_slow(id).is_some());
        assert_eq!(svc.rollup().ingested, 600);
        sink.finish();
        drop(sink);
        svc.shutdown();
        assert_eq!(svc.live_jobs(), 0);
        assert_eq!(svc.rollup().ingested, 600);
    }

    #[test]
    fn per_job_state_is_identical_across_pool_sizes() {
        let jobs: Vec<Vec<Record>> = (0..6).map(|j| stream(400 + j * 50, 8)).collect();
        let run = |workers: usize| -> Vec<JobReport> {
            let mut svc = FleetService::new(cfg(workers));
            let mut sinks: Vec<JobSink> = (0..jobs.len())
                .map(|j| svc.register(&format!("job-{j}")))
                .collect();
            for (sink, records) in sinks.iter_mut().zip(&jobs) {
                for r in records {
                    sink.push(r);
                }
            }
            for mut sink in sinks {
                sink.finish();
            }
            svc.shutdown();
            svc.reports()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.len(), 6);
        assert_eq!(one, eight);
        // And so is the roll-up.
        let roll = |reports: &[JobReport]| {
            let mut acc = EnsembleSnapshot::empty(&SnapshotConfig::default());
            for r in reports {
                acc.merge(&r.snapshot);
            }
            acc
        };
        assert_eq!(roll(&one), roll(&eight));
    }

    #[test]
    fn rollup_ingested_is_the_sum_of_tenants() {
        let mut svc = FleetService::new(cfg(3));
        let sizes = [300usize, 450, 700];
        for (j, &n) in sizes.iter().enumerate() {
            let mut sink = svc.register(&format!("job-{j}"));
            for r in stream(n, 8) {
                sink.push(&r);
            }
            sink.finish();
        }
        svc.shutdown();
        let total: u64 = sizes.iter().map(|&n| n as u64).sum();
        assert_eq!(svc.rollup().ingested, total);
        assert_eq!(svc.completed_jobs().len(), 3);
    }
}
