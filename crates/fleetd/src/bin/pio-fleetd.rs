//! pio-fleetd: drive a simulated fleet through the always-on diagnosis
//! service and print the machine roll-up.
//!
//! Usage: `pio-fleetd [--jobs N] [--faulted M] [--pool P] [--scale S]
//! [--budget BYTES] [--threads T] [--out FILE]`
//!
//! Simulates `N` concurrent jobs (the first `M` under fault plans
//! cycling through the attributable classes, the rest clean baselines),
//! streams every job into a [`pio_fleetd::FleetService`] with a
//! `P`-worker pool and a per-tenant memory budget, then prints the
//! fleet panel: machine-wide roll-up, per-job verdict table, and the
//! cross-job interference view. Exits nonzero if any faulted job is
//! misattributed or any clean job is flagged.

use pio_fleetd::{fleet_config, fleet_spec, FleetService, SimConfig};
use pio_viz::{fleet_panel, FleetJobRow, OstContentionRow};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("pio-fleetd: bad value for {name}: {v}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pio-fleetd [--jobs N] [--faulted M] [--pool P] [--scale S] \
             [--budget BYTES] [--threads T] [--out FILE]"
        );
        return;
    }
    let cfg = SimConfig {
        jobs: parse(&args, "--jobs", 8),
        faulted: parse(&args, "--faulted", 2),
        scale: parse(&args, "--scale", 16),
    };
    let pool: usize = parse(&args, "--pool", 4);
    let budget: usize = parse(&args, "--budget", 1 << 20);
    let threads: usize = parse(&args, "--threads", 4);
    let out: Option<String> = flag(&args, "--out");
    if cfg.faulted > cfg.jobs {
        eprintln!("pio-fleetd: --faulted cannot exceed --jobs");
        std::process::exit(2);
    }

    eprintln!(
        "pio-fleetd: simulating {} jobs ({} faulted) at scale {}...",
        cfg.jobs, cfg.faulted, cfg.scale
    );
    let spec = fleet_spec(&cfg);
    let traces = pio_fleetd::simulate(&spec, threads);

    eprintln!("pio-fleetd: streaming into a {pool}-worker service (budget {budget} B/tenant)...");
    let mut service = FleetService::new(fleet_config(pool, budget));
    let ids = pio_fleetd::feed(&service, &spec, &traces, threads);
    service.shutdown();

    let checks = pio_fleetd::check(&service, &spec, &ids);
    let rows: Vec<FleetJobRow> = ids
        .iter()
        .map(|&id| {
            let r = service.report(id).expect("every job completed");
            FleetJobRow {
                name: r.name.clone(),
                records: r.ingested,
                shed: r.shed,
                frozen: r.frozen,
                verdict: {
                    let v = r.verdict();
                    (v != pio_core::diagnosis::Verdict::Clean).then(|| v.label())
                },
                slowest_s: r.top_slow.first().map_or(0.0, |op| op.secs),
            }
        })
        .collect();
    let contention: Vec<OstContentionRow> = service
        .interference()
        .into_iter()
        .map(|c| OstContentionRow {
            ost: c.ost,
            jobs: c.jobs,
        })
        .collect();
    let panel = fleet_panel(&service.rollup(), &rows, &contention, 40);
    println!("{panel}");

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &panel) {
            eprintln!("pio-fleetd: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("pio-fleetd: roll-up written to {path}");
    }

    let mut failed = 0;
    for c in &checks {
        if !c.ok {
            failed += 1;
            eprintln!(
                "pio-fleetd: MISATTRIBUTED {}: expected {:?}, fleet said {:?} ({} records, {} shed)",
                c.name, c.expected, c.verdict, c.records, c.shed
            );
        }
    }
    if failed > 0 {
        eprintln!("pio-fleetd: {failed}/{} jobs misattributed", checks.len());
        std::process::exit(1);
    }
    eprintln!(
        "pio-fleetd: all {} jobs attributed correctly ({} faulted, {} clean)",
        checks.len(),
        cfg.faulted,
        cfg.jobs - cfg.faulted
    );
}
