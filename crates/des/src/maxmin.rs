//! Max–min fair bandwidth allocation by progressive filling.
//!
//! Given a set of capacitated links and flows that each traverse a subset
//! of links (optionally with a per-flow rate cap), computes the max–min
//! fair rate vector: all flow rates rise together until a link saturates
//! or a flow hits its cap; saturated participants freeze; repeat.
//!
//! The file-system simulator uses FIFO service centers for fine-grained
//! contention, but the fluid solver is used for coarse rate assignment
//! (client write-back drain rates) and as the reference model in fairness
//! ablations.

/// A flow: the set of link indices it crosses, plus an optional rate cap.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Indices into the link-capacity slice.
    pub links: Vec<usize>,
    /// Per-flow rate ceiling (e.g. an application-imposed limit).
    pub cap: Option<f64>,
}

impl Flow {
    /// A flow over `links` with no individual cap.
    pub fn over(links: Vec<usize>) -> Self {
        Flow { links, cap: None }
    }

    /// A flow over `links` capped at `cap`.
    pub fn capped(links: Vec<usize>, cap: f64) -> Self {
        Flow {
            links,
            cap: Some(cap),
        }
    }
}

/// Max–min fair rates for `flows` over links with capacities `link_caps`.
///
/// ```
/// use pio_des::maxmin::{maxmin_rates, Flow};
/// // One 9 GB/s link shared by three flows, one capped at 1 GB/s:
/// let rates = maxmin_rates(&[9.0], &[
///     Flow::capped(vec![0], 1.0),
///     Flow::over(vec![0]),
///     Flow::over(vec![0]),
/// ]);
/// assert_eq!(rates[0], 1.0);        // pinned at its cap
/// assert_eq!(rates[1], 4.0);        // the rest split the remainder
/// ```
///
/// Returns one rate per flow. A flow crossing no links is limited only by
/// its cap (infinite if uncapped — represented as `f64::INFINITY`).
///
/// Panics if a flow references a nonexistent link or a capacity is negative.
pub fn maxmin_rates(link_caps: &[f64], flows: &[Flow]) -> Vec<f64> {
    for &c in link_caps {
        assert!(c >= 0.0, "negative link capacity");
    }
    for f in flows {
        for &l in &f.links {
            assert!(l < link_caps.len(), "flow references missing link {l}");
        }
    }

    let nf = flows.len();
    let nl = link_caps.len();
    let mut rate = vec![0.0f64; nf];
    let mut frozen = vec![false; nf];
    let mut rem_cap = link_caps.to_vec();
    // Per-link count of unfrozen flows.
    let mut active_on = vec![0usize; nl];
    for f in flows {
        for &l in &f.links {
            active_on[l] += 1;
        }
    }

    let mut unfrozen = nf;
    while unfrozen > 0 {
        // Headroom: the smallest additional rate increment Δ such that some
        // link saturates (Δ = rem/active) or some flow reaches its cap.
        let mut delta = f64::INFINITY;
        for l in 0..nl {
            if active_on[l] > 0 {
                delta = delta.min(rem_cap[l] / active_on[l] as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                if let Some(cap) = f.cap {
                    delta = delta.min(cap - rate[i]);
                }
            }
        }

        if !delta.is_finite() {
            // Remaining flows cross no constrained links and have no caps.
            for (i, _) in flows.iter().enumerate() {
                if !frozen[i] {
                    rate[i] = f64::INFINITY;
                }
            }
            break;
        }
        let delta = delta.max(0.0);

        // Raise every unfrozen flow by delta and charge its links.
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                rate[i] += delta;
                for &l in &f.links {
                    rem_cap[l] -= delta;
                }
            }
        }

        // Freeze flows at saturated links or at their caps.
        const EPS: f64 = 1e-9;
        let mut newly_frozen = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let at_cap = f.cap.is_some_and(|c| rate[i] >= c - EPS);
            let on_saturated = f
                .links
                .iter()
                .any(|&l| rem_cap[l] <= EPS * link_caps[l].max(1.0));
            if at_cap || on_saturated {
                newly_frozen.push(i);
            }
        }
        // Progress guarantee: if nothing froze despite a finite delta, the
        // system is numerically stuck; freeze everything at current rates.
        if newly_frozen.is_empty() {
            break;
        }
        for i in newly_frozen {
            frozen[i] = true;
            unfrozen -= 1;
            for &l in &flows[i].links {
                active_on[l] -= 1;
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_link_equal_share() {
        let flows: Vec<Flow> = (0..3).map(|_| Flow::over(vec![0])).collect();
        let rates = maxmin_rates(&[12.0], &flows);
        assert!(rates.iter().all(|&r| close(r, 4.0)), "{rates:?}");
    }

    #[test]
    fn cap_diverts_share_to_others() {
        let flows = vec![
            Flow::capped(vec![0], 1.0),
            Flow::over(vec![0]),
            Flow::over(vec![0]),
        ];
        let rates = maxmin_rates(&[10.0], &flows);
        assert!(close(rates[0], 1.0), "{rates:?}");
        assert!(close(rates[1], 4.5) && close(rates[2], 4.5), "{rates:?}");
    }

    #[test]
    fn classic_two_link_example() {
        // Link0 cap 1, link1 cap 2. Flow A crosses both, B only link0,
        // C only link1. Max-min: A=0.5, B=0.5, C=1.5.
        let flows = vec![
            Flow::over(vec![0, 1]),
            Flow::over(vec![0]),
            Flow::over(vec![1]),
        ];
        let rates = maxmin_rates(&[1.0, 2.0], &flows);
        assert!(close(rates[0], 0.5), "{rates:?}");
        assert!(close(rates[1], 0.5), "{rates:?}");
        assert!(close(rates[2], 1.5), "{rates:?}");
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let rates = maxmin_rates(&[], &[Flow::over(vec![])]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn uncrossed_link_irrelevant() {
        let rates = maxmin_rates(&[5.0, 100.0], &[Flow::over(vec![0])]);
        assert!(close(rates[0], 5.0));
    }

    #[test]
    fn hierarchical_fabric_example() {
        // 2 nodes with NIC cap 4 each, shared fabric cap 6. Two flows per
        // node: fabric is the bottleneck → each flow gets 1.5.
        let caps = [4.0, 4.0, 6.0];
        let flows = vec![
            Flow::over(vec![0, 2]),
            Flow::over(vec![0, 2]),
            Flow::over(vec![1, 2]),
            Flow::over(vec![1, 2]),
        ];
        let rates = maxmin_rates(&caps, &flows);
        for r in &rates {
            assert!(close(*r, 1.5), "{rates:?}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_instance() -> impl Strategy<Value = (Vec<f64>, Vec<Flow>)> {
        (1usize..6, 1usize..12).prop_flat_map(|(nl, nf)| {
            let caps = proptest::collection::vec(0.5f64..50.0, nl);
            let flows = proptest::collection::vec(
                (
                    proptest::collection::btree_set(0..nl, 1..=nl),
                    proptest::option::of(0.1f64..10.0),
                ),
                nf,
            );
            (caps, flows).prop_map(|(caps, flows)| {
                let flows = flows
                    .into_iter()
                    .map(|(links, cap)| Flow {
                        links: links.into_iter().collect(),
                        cap,
                    })
                    .collect();
                (caps, flows)
            })
        })
    }

    proptest! {
        /// Feasibility: no link is over capacity; no flow exceeds its cap.
        #[test]
        fn allocation_is_feasible((caps, flows) in arb_instance()) {
            let rates = maxmin_rates(&caps, &flows);
            let mut used = vec![0.0f64; caps.len()];
            for (f, &r) in flows.iter().zip(&rates) {
                prop_assert!(r >= 0.0);
                if let Some(c) = f.cap {
                    prop_assert!(r <= c + 1e-6);
                }
                for &l in &f.links {
                    used[l] += r;
                }
            }
            for (l, &u) in used.iter().enumerate() {
                prop_assert!(u <= caps[l] + 1e-6 * flows.len() as f64,
                    "link {} used {} > cap {}", l, u, caps[l]);
            }
        }

        /// Pareto efficiency of the bottleneck kind: every flow is either at
        /// its cap or crosses at least one saturated link.
        #[test]
        fn every_flow_is_bottlenecked((caps, flows) in arb_instance()) {
            let rates = maxmin_rates(&caps, &flows);
            let mut used = vec![0.0f64; caps.len()];
            for (f, &r) in flows.iter().zip(&rates) {
                for &l in &f.links {
                    used[l] += r;
                }
            }
            let tol = 1e-5;
            for (f, &r) in flows.iter().zip(&rates) {
                let at_cap = f.cap.is_some_and(|c| r >= c - tol);
                let saturated = f.links.iter().any(|&l| used[l] >= caps[l] - tol * caps[l].max(1.0));
                prop_assert!(at_cap || saturated,
                    "flow with rate {} neither capped nor on a saturated link", r);
            }
        }

        /// Symmetry: identical flows receive identical rates.
        #[test]
        fn identical_flows_equal_rates(n in 2usize..8, cap in 1.0f64..40.0) {
            let flows = vec![Flow::over(vec![0]); n];
            let rates = maxmin_rates(&[cap], &flows);
            for w in rates.windows(2) {
                prop_assert!((w[0] - w[1]).abs() < 1e-9);
            }
        }
    }
}
