//! Deterministic event queue.
//!
//! Pop order is strictly ascending `(time, key, sequence)`: the `key` is
//! an explicit component identifier (0 for unkeyed pushes), so
//! simultaneous events at different components pop in a total order that
//! is independent of insertion order — the property cross-shard
//! determinism rests on. Events with equal `(time, key)` pop in insertion
//! order, so results never depend on container internals.
//!
//! Internally the queue is split into a **near-future front** — a short
//! deque kept sorted by `(time, key, seq)` — and an **overflow** binary
//! heap for everything at or beyond the front's `horizon`. The split
//! targets the steady-state DES pattern: handlers schedule follow-ups a
//! short span ahead of `now`, and those land in the front with a cheap
//! ordered insert (usually an append) instead of a heap push + pop round
//! trip. When the working set is small the heap is never touched at all.
//!
//! Invariant (checked by the property tests): every front entry orders
//! strictly before every overflow entry under `(time, key, seq)`, the
//! front is sorted, front `(time, key)` pairs are `<= horizon`, and
//! overflow pairs are `>= horizon`. Pop therefore always takes the head
//! of the front, refilling it from the heap when it drains.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Entries migrated from the overflow heap per refill.
const REFILL_CAP: usize = 64;
/// Front length that triggers spilling its tail back to the heap,
/// bounding the cost of an ordered middle insert.
const FRONT_MAX: usize = 128;
/// Entries kept in the front after a spill.
const FRONT_KEEP: usize = 64;

struct Entry<E> {
    time: SimTime,
    key: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.time, other.key, other.seq).cmp(&(self.time, self.key, self.seq))
    }
}

/// A time-ordered queue of pending events with an explicit
/// `(time, key, seq)` total order; `key` defaults to 0 via [`EventQueue::push`].
pub struct EventQueue<E> {
    /// Near-future entries, ascending `(time, key, seq)`; popped from the head.
    front: VecDeque<Entry<E>>,
    /// Entries at or beyond `horizon`.
    overflow: BinaryHeap<Entry<E>>,
    /// Pushes strictly before this `(time, key)` point go to the front.
    horizon: (SimTime, u64),
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            front: VecDeque::new(),
            overflow: BinaryHeap::new(),
            horizon: (SimTime::MAX, u64::MAX),
            seq: 0,
        }
    }

    /// Schedule `event` at `time` with key 0 (plain FIFO tie-breaking).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_keyed(time, 0, event);
    }

    /// Schedule `event` at `time` under component `key`: simultaneous
    /// events pop in ascending key order regardless of insertion order.
    pub fn push_keyed(&mut self, time: SimTime, key: u64, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry {
            time,
            key,
            seq,
            event,
        };
        if (time, key) >= self.horizon {
            // `seq` is the largest so far, so among equal `(time, key)`
            // this entry orders after everything already in the front.
            self.overflow.push(entry);
            return;
        }
        match self.front.back() {
            // Common case: later than (or tied with) the current back —
            // append. Ties keep insertion order because seq grows.
            Some(back) if (back.time, back.key) <= (time, key) => self.front.push_back(entry),
            None => self.front.push_back(entry),
            // Ordered middle insert; cost bounded by FRONT_MAX.
            Some(_) => {
                let idx = self
                    .front
                    .partition_point(|e| (e.time, e.key) <= (time, key));
                self.front.insert(idx, entry);
            }
        }
        if self.front.len() > FRONT_MAX {
            self.spill();
        }
    }

    /// Drain `pending` into the queue in order (batched follow-up push).
    pub fn push_batch(&mut self, pending: &mut Vec<(SimTime, E)>) {
        for (time, event) in pending.drain(..) {
            self.push(time, event);
        }
    }

    /// Move the tail of an oversized front to the overflow heap and pull
    /// the horizon down to the smallest spilled `(time, key)`.
    fn spill(&mut self) {
        let mut spilled_min = (SimTime::MAX, u64::MAX);
        while self.front.len() > FRONT_KEEP {
            let e = self.front.pop_back().expect("non-empty front");
            spilled_min = (e.time, e.key); // monotonically non-increasing
            self.overflow.push(e);
        }
        self.horizon = spilled_min;
    }

    /// Refill an empty front with the earliest overflow entries.
    fn refill(&mut self) {
        debug_assert!(self.front.is_empty());
        for _ in 0..REFILL_CAP {
            match self.overflow.pop() {
                Some(e) => self.front.push_back(e),
                None => break,
            }
        }
        self.horizon = self
            .overflow
            .peek()
            .map_or((SimTime::MAX, u64::MAX), |e| (e.time, e.key));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.front.is_empty() {
            self.refill();
        }
        self.front.pop_front().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self.front.front() {
            Some(e) => Some(e.time),
            None => self.overflow.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.front.len() + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.overflow.is_empty()
    }

    /// Total events ever scheduled (the sequence counter).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            let (pt, e) = q.pop().unwrap();
            assert_eq!(pt, t);
            assert_eq!(e, i);
        }
    }

    #[test]
    fn equal_times_pop_fifo_across_the_spill_boundary() {
        // More ties than FRONT_MAX forces spills mid-stream; order must
        // still be pure insertion order.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        let n = 10 * FRONT_MAX;
        for i in 0..n {
            q.push(t, i);
        }
        for i in 0..n {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_keyed_events_pop_in_key_order_any_insertion_order() {
        // The cross-shard determinism property: events at the same instant
        // with distinct component keys must pop in the same total order no
        // matter which order they were scheduled in.
        let t = SimTime::from_secs(2);
        let keys: Vec<u64> = vec![9, 3, 7, 0, 5, 1, 8, 2, 6, 4];
        let mut orders: Vec<Vec<u64>> = Vec::new();
        for rotation in 0..keys.len() {
            let mut q = EventQueue::new();
            q.push(SimTime::from_secs(1), u64::MAX); // earlier event first
            for i in 0..keys.len() {
                let k = keys[(i + rotation) % keys.len()];
                q.push_keyed(t, k, k);
            }
            q.push_keyed(SimTime::from_secs(3), 0, u64::MAX - 1);
            let mut order = Vec::new();
            while let Some((_, e)) = q.pop() {
                order.push(e);
            }
            orders.push(order);
        }
        for o in &orders {
            assert_eq!(o[0], u64::MAX);
            assert_eq!(o[o.len() - 1], u64::MAX - 1);
            let mid: Vec<u64> = o[1..o.len() - 1].to_vec();
            assert_eq!(mid, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        }
        assert!(orders.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn keyed_ties_pop_fifo_within_a_key_across_the_spill_boundary() {
        // Equal (time, key) keeps insertion order even when the front
        // spills mid-stream; lower keys still pop first.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        let n = 4 * FRONT_MAX;
        for i in 0..n {
            q.push_keyed(t, (i % 2) as u64, i);
        }
        let mut got = Vec::new();
        while let Some((pt, e)) = q.pop() {
            assert_eq!(pt, t);
            got.push(e);
        }
        let want: Vec<usize> = (0..n)
            .filter(|i| i % 2 == 0)
            .chain((0..n).filter(|i| i % 2 == 1))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn push_batch_preserves_order_and_reuses_the_buffer() {
        let mut q = EventQueue::new();
        let mut batch = vec![
            (SimTime::from_secs(2), "b"),
            (SimTime::from_secs(1), "a"),
            (SimTime::from_secs(2), "c"),
        ];
        q.push_batch(&mut batch);
        assert!(batch.is_empty(), "batch is drained, not consumed");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn interleaved_pushes_during_drain_stay_ordered() {
        // The steady-state DES pattern the front fast path serves: each
        // pop schedules a follow-up slightly ahead.
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.push(SimTime(i * 100), i);
        }
        let mut last = SimTime::ZERO;
        let mut processed = 0u64;
        while let Some((t, e)) = q.pop() {
            assert!(t >= last, "queue went backwards");
            last = t;
            processed += 1;
            if processed < 5_000 {
                q.push(SimTime(t.nanos() + 1 + e % 977), e);
            }
        }
        assert_eq!(processed, 5_000 + 49);
    }

    #[test]
    fn large_scattered_load_pops_sorted() {
        // Forces constant spill/refill traffic between front and heap.
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime(i * 7919 % 1_000_000), i);
        }
        let mut prev: Option<(SimTime, u64)> = None;
        let mut count = 0;
        while let Some((t, e)) = q.pop() {
            if let Some((pt, pe)) = prev {
                assert!(t > pt || (t == pt && e > pe), "order violated");
            }
            prev = Some((t, e));
            count += 1;
        }
        assert_eq!(count, 10_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping must yield a non-decreasing time sequence, and events
        /// pushed with identical timestamps must come out in push order.
        #[test]
        fn pop_order_is_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                prop_assert_eq!(SimTime(times[idx]), t);
                last = Some((t, idx));
            }
        }

        /// Interleaved push/pop against a sorted-vector reference model:
        /// the split queue must match a total `(time, seq)` order exactly,
        /// whatever the traffic pattern does to the front/overflow split.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec(
            // `Some(t)` = push at time t (3 of 4 draws), `None` = pop.
            proptest::option::of(0u64..500),
            1..400,
        )) {
            let mut q = EventQueue::new();
            // Reference: all (time, seq, id) triples, popped by min scan.
            let mut model: Vec<(u64, u64, u64)> = Vec::new();
            let mut next_id = 0u64;
            for op in ops {
                match op {
                    Some(t) => {
                        model.push((t, next_id, next_id));
                        q.push(SimTime(t), next_id);
                        next_id += 1;
                    }
                    None => {
                        let got = q.pop();
                        if model.is_empty() {
                            prop_assert!(got.is_none());
                        } else {
                            let min_idx = model
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &(t, s, _))| (t, s))
                                .map(|(i, _)| i)
                                .unwrap();
                            let (t, _, id) = model.remove(min_idx);
                            let (gt, gid) = got.expect("queue non-empty");
                            prop_assert_eq!(gt, SimTime(t));
                            prop_assert_eq!(gid, id);
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }

        /// Keyed pushes against the same reference model under the full
        /// `(time, key, seq)` order, across arbitrary push/pop traffic.
        #[test]
        fn keyed_matches_reference_model(ops in proptest::collection::vec(
            proptest::option::of((0u64..200, 0u64..8)),
            1..400,
        )) {
            let mut q = EventQueue::new();
            // Reference: (time, key, seq, id) popped by min scan.
            let mut model: Vec<(u64, u64, u64, u64)> = Vec::new();
            let mut next_id = 0u64;
            for op in ops {
                match op {
                    Some((t, k)) => {
                        model.push((t, k, next_id, next_id));
                        q.push_keyed(SimTime(t), k, next_id);
                        next_id += 1;
                    }
                    None => {
                        let got = q.pop();
                        if model.is_empty() {
                            prop_assert!(got.is_none());
                        } else {
                            let min_idx = model
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &(t, k, s, _))| (t, k, s))
                                .map(|(i, _)| i)
                                .unwrap();
                            let (t, _, _, id) = model.remove(min_idx);
                            let (gt, gid) = got.expect("queue non-empty");
                            prop_assert_eq!(gt, SimTime(t));
                            prop_assert_eq!(gid, id);
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }
}
