//! Deterministic event queue.
//!
//! A binary heap keyed on `(time, sequence)`: events at equal times pop in
//! insertion order, so simulation results never depend on heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of pending events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the sequence counter).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            let (pt, e) = q.pop().unwrap();
            assert_eq!(pt, t);
            assert_eq!(e, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping must yield a non-decreasing time sequence, and events
        /// pushed with identical timestamps must come out in push order.
        #[test]
        fn pop_order_is_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                prop_assert_eq!(SimTime(times[idx]), t);
                last = Some((t, idx));
            }
        }
    }
}
