//! Deterministic random-number streams and the samplers the I/O model uses.
//!
//! Every stochastic element of the simulator (OST service overheads,
//! per-call slow-path multipliers, node service disciplines) draws from a
//! `SimRng`. Streams are derived from a master seed plus a stream id via a
//! SplitMix64 mix, so adding a consumer never perturbs the draws seen by
//! existing consumers — a requirement for controlled ablations.
//!
//! The samplers (normal, log-normal, exponential, Pareto) are implemented
//! directly on top of `rand`'s uniform source because `rand_distr` is not
//! part of the vetted dependency set; all are standard textbook transforms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mix function from SplitMix64; used to derive independent stream seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reproducible random stream.
pub struct SimRng {
    rng: StdRng,
    /// Cached second normal variate from the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// A stream seeded directly from `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(splitmix64(seed)),
            spare_normal: None,
        }
    }

    /// An independent stream derived from `(master, stream_id)`.
    pub fn stream(master: u64, stream_id: u64) -> Self {
        SimRng::new(splitmix64(master ^ splitmix64(stream_id)))
    }

    /// An independent stream derived from `(master, component, lane)`.
    ///
    /// Two-level split for per-component RNG lanes (e.g. one lane per
    /// simulated node): draws depend only on the identity pair, never on
    /// how work is scheduled across shards, and the double mix keeps the
    /// lane space disjoint from flat [`SimRng::stream`] ids.
    pub fn keyed(master: u64, component: u64, lane: u64) -> Self {
        SimRng::new(splitmix64(
            splitmix64(master ^ splitmix64(component)) ^ splitmix64(!lane),
        ))
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform in `[0, 1)` excluding exact zero (safe for `ln`).
    fn f64_nonzero(&mut self) -> f64 {
        loop {
            let v = self.f64();
            if v > 0.0 {
                return v;
            }
        }
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over an empty range");
        self.rng.random_range(0..n)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (polar-free, caches the spare).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        let u1 = self.f64_nonzero();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Log-normal parameterized by its *median* and the σ of the underlying
    /// normal. `median > 0`. Mean is `median · exp(σ²/2)`.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        median * (sigma * self.std_normal()).exp()
    }

    /// Exponential with the given mean (inverse-CDF transform).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.f64_nonzero().ln()
    }

    /// Pareto with scale `xm > 0` and shape `alpha > 0`; support `[xm, ∞)`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        xm / self.f64_nonzero().powf(1.0 / alpha)
    }

    /// Index drawn with probability proportional to `weights[i]`.
    ///
    /// All-zero (or empty) weights are a caller bug; panics.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_choice with no mass");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.random_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::stream(42, 0);
        let mut b = SimRng::stream(42, 1);
        let same = (0..32).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn keyed_lanes_are_stable_and_disjoint() {
        // Same identity → same stream.
        let mut a = SimRng::keyed(42, 7, 3);
        let mut b = SimRng::keyed(42, 7, 3);
        for _ in 0..32 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
        // Differing in either level diverges.
        let mut base = SimRng::keyed(42, 7, 3);
        for mut other in [SimRng::keyed(42, 8, 3), SimRng::keyed(42, 7, 4)] {
            let same = (0..32).filter(|_| base.f64() == other.f64()).count();
            assert!(same < 4);
            base = SimRng::keyed(42, 7, 3);
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::new(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median_is_parameter() {
        let mut r = SimRng::new(11);
        let mut samples: Vec<f64> = (0..20_001).map(|_| r.lognormal(5.0, 0.8)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 5.0).abs() / 5.0 < 0.05, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(0.25)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_and_is_heavy_tailed() {
        let mut r = SimRng::new(17);
        let samples: Vec<f64> = (0..20_000).map(|_| r.pareto(1.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let over10 = samples.iter().filter(|&&x| x > 10.0).count() as f64 / 20_000.0;
        // P(X > 10) = 10^-1.5 ≈ 0.0316.
        assert!((over10 - 0.0316).abs() < 0.01, "tail {over10}");
    }

    #[test]
    fn weighted_choice_tracks_weights() {
        let mut r = SimRng::new(19);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_choice(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle was identity");
    }

    #[test]
    #[should_panic]
    fn weighted_choice_rejects_zero_mass() {
        SimRng::new(1).weighted_choice(&[0.0, 0.0]);
    }
}
