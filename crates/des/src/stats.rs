//! Lightweight in-simulation statistics: counters, time-weighted values,
//! and single-pass moment accumulation (Welford/Terriberry).
//!
//! These are the collectors the simulator itself uses (queue depths,
//! utilization, dirty-page levels). The *analysis* statistics — the
//! paper's contribution — live in `pio-core`.

use crate::time::SimTime;

/// Running min/max/count/sum of a scalar series.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Integral of a piecewise-constant signal over virtual time
/// (e.g. dirty bytes, queue depth), for time-averaged levels.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Signal starts at `v0` at time zero.
    pub fn new(v0: f64) -> Self {
        TimeWeighted {
            last_t: SimTime::ZERO,
            last_v: v0,
            integral: 0.0,
            peak: v0,
        }
    }

    /// The signal changes to `v` at time `t` (t must be nondecreasing).
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "time went backwards");
        self.integral += self.last_v * t.since(self.last_t).as_secs_f64();
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.last_v
    }

    /// Peak value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-average over `[0, t]` (flushes the running segment).
    pub fn average(&self, t: SimTime) -> f64 {
        if t.nanos() == 0 {
            return self.last_v;
        }
        let tail = self.last_v * t.since(self.last_t).as_secs_f64();
        (self.integral + tail) / t.as_secs_f64()
    }
}

/// Single-pass mean/variance/skewness/kurtosis accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl OnlineMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Record a slice of observations — the exact same sequential
    /// update as calling [`Self::record`] per element (bit-identical;
    /// the batch ingest path uses this to keep the accumulator loop
    /// tight and inlineable without changing a single rounding step).
    #[inline]
    pub fn record_block(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Skewness `m3 / m2^(3/2)`; `None` if fewer than 2 samples or zero variance.
    pub fn skewness(&self) -> Option<f64> {
        if self.n < 2 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        Some((n.sqrt() * self.m3) / self.m2.powf(1.5))
    }

    /// Excess kurtosis `m4·n / m2² − 3`; `None` if fewer than 2 samples
    /// or zero variance.
    pub fn excess_kurtosis(&self) -> Option<f64> {
        if self.n < 2 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        Some(n * self.m4 / (self.m2 * self.m2) - 3.0)
    }

    /// Coefficient of variation (σ/µ); `None` if empty or zero mean.
    pub fn cv(&self) -> Option<f64> {
        let mean = self.mean()?;
        if mean == 0.0 {
            return None;
        }
        Some(self.std_dev()? / mean.abs())
    }

    /// Combine another accumulator into this one (Chan/Terriberry parallel
    /// update), as if both streams had been recorded into a single
    /// accumulator. Associative and commutative up to float rounding, so
    /// per-shard accumulators can be merged in any order.
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let d2 = delta * delta;
        let m2 = self.m2 + other.m2 + d2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + d2 * delta * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + d2 * d2 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * d2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basics() {
        let mut t = Tally::new();
        assert!(t.mean().is_none());
        for v in [3.0, 1.0, 2.0] {
            t.record(v);
        }
        assert_eq!(t.count(), 3);
        assert_eq!(t.mean(), Some(2.0));
        assert_eq!(t.min(), Some(1.0));
        assert_eq!(t.max(), Some(3.0));
    }

    #[test]
    fn time_weighted_average() {
        let mut w = TimeWeighted::new(0.0);
        w.set(SimTime::from_secs(2), 10.0); // 0 for [0,2)
        w.set(SimTime::from_secs(4), 0.0); // 10 for [2,4)
                                           // Average over [0,5]: (0*2 + 10*2 + 0*1)/5 = 4.
        assert!((w.average(SimTime::from_secs(5)) - 4.0).abs() < 1e-12);
        assert_eq!(w.peak(), 10.0);
        assert_eq!(w.value(), 0.0);
    }

    #[test]
    fn moments_match_closed_form() {
        // Uniform 1..=9: mean 5, variance 60/9.
        let mut m = OnlineMoments::new();
        for i in 1..=9 {
            m.record(i as f64);
        }
        assert_eq!(m.count(), 9);
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((m.variance().unwrap() - 60.0 / 9.0).abs() < 1e-9);
        // Symmetric: zero skewness.
        assert!(m.skewness().unwrap().abs() < 1e-9);
    }

    #[test]
    fn merge_matches_single_stream() {
        let xs: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.37).sin() * 20.0 + 5.0)
            .collect();
        let mut whole = OnlineMoments::new();
        let mut left = OnlineMoments::new();
        let mut right = OnlineMoments::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < 47 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert!((left.skewness().unwrap() - whole.skewness().unwrap()).abs() < 1e-9);
        assert!((left.excess_kurtosis().unwrap() - whole.excess_kurtosis().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = OnlineMoments::new();
        m.record(1.0);
        m.record(3.0);
        let snapshot = m.clone();
        m.merge(&OnlineMoments::new());
        assert_eq!(m.count(), snapshot.count());
        assert_eq!(m.mean(), snapshot.mean());
        let mut empty = OnlineMoments::new();
        empty.merge(&snapshot);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), snapshot.mean());
    }

    #[test]
    fn moments_edge_cases() {
        let m = OnlineMoments::new();
        assert!(m.mean().is_none());
        let mut one = OnlineMoments::new();
        one.record(4.0);
        assert_eq!(one.variance(), Some(0.0));
        assert!(one.skewness().is_none());
        let mut constant = OnlineMoments::new();
        constant.record(2.0);
        constant.record(2.0);
        assert!(constant.skewness().is_none(), "zero variance has no skew");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Online moments agree with the two-pass formulas.
        #[test]
        fn online_matches_two_pass(xs in proptest::collection::vec(-100.0f64..100.0, 2..200)) {
            let mut m = OnlineMoments::new();
            for &x in &xs {
                m.record(x);
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((m.mean().unwrap() - mean).abs() < 1e-6);
            prop_assert!((m.variance().unwrap() - var).abs() < 1e-5 * var.max(1.0));
        }

        /// Time-weighted average lies within [min, max] of set values.
        #[test]
        fn tw_average_bounded(steps in proptest::collection::vec((1u64..100, 0.0f64..50.0), 1..50)) {
            let mut w = TimeWeighted::new(0.0);
            let mut t = 0u64;
            let mut lo: f64 = 0.0;
            let mut hi: f64 = 0.0;
            for &(dt, v) in &steps {
                t += dt;
                w.set(SimTime::from_secs(t), v);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let avg = w.average(SimTime::from_secs(t));
            prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        }
    }
}
