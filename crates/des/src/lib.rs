//! # pio-des — discrete-event simulation kernel
//!
//! The substrate under the parallel-I/O simulator: a virtual clock with
//! nanosecond resolution, a deterministic event queue, reproducible
//! random-number streams with the samplers the file-system model needs
//! (log-normal service overheads, Pareto outliers), FIFO service centers
//! that model shared hardware resources by eager completion-time
//! computation, and a max–min fair bandwidth solver used for fluid-flow
//! rate assignment and for fairness ablations.
//!
//! Everything here is deterministic: the same seed produces the same
//! simulation, which is what lets the ensemble analysis treat the seed as
//! the only source of run-to-run variability (mirroring the paper's
//! repeated runs of a single *experiment*).

pub mod engine;
pub mod hash;
pub mod hist;
pub mod maxmin;
pub mod queue;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use engine::{Scheduler, Simulator, World};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use server::{MultiServiceCenter, ServiceCenter};
pub use time::{SimSpan, SimTime};
