//! Mergeable log-spaced histograms — the single binning implementation
//! shared by the analysis layer (`pio-core::loghist`), the capture layer
//! (`pio-trace::profile`), and the streaming-ingest sketches
//! (`pio-ingest`).
//!
//! Two pieces: [`LogBins`] is the pure geometry (which bin does a value
//! fall in, where is a bin centered), and [`LogHistogram`] is geometry
//! plus mergeable counts. Merging two histograms with the same geometry
//! is exactly equivalent to accumulating the union of their streams,
//! which is what makes per-shard and per-rank collection safe.

use serde::{Deserialize, Serialize};

/// Where a value lands relative to a [`LogBins`] geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinSlot {
    /// Below the range (or non-positive).
    Under,
    /// In-range bin index.
    In(usize),
    /// At or above the upper bound.
    Over,
}

/// The `[left, right)` bounds of one histogram bin.
///
/// Named fields replace the old `(f64, f64)` return of
/// [`LogBins::edges`] / [`LogHistogram::bin_edges`]: at call sites a
/// bare `.1` gave no hint whether it was the upper edge or a count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinEdges {
    /// Lower edge (inclusive).
    pub left: f64,
    /// Upper edge (exclusive).
    pub right: f64,
}

impl BinEdges {
    /// Geometric width `right / left` (log-bin "width" is a ratio).
    pub fn ratio(&self) -> f64 {
        self.right / self.left
    }

    /// Does `v` fall inside `[left, right)`?
    pub fn contains(&self, v: f64) -> bool {
        self.left <= v && v < self.right
    }
}

/// Logarithmically spaced bin geometry over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogBins {
    lo: f64,
    hi: f64,
    bins: usize,
}

impl LogBins {
    /// `bins` log-spaced bins over `[lo, hi)`; both bounds must be positive.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins > 0, "invalid log bin geometry");
        LogBins { lo, hi, bins }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Classify a value.
    pub fn slot(&self, v: f64) -> BinSlot {
        if v <= 0.0 || v < self.lo {
            BinSlot::Under
        } else if v >= self.hi {
            BinSlot::Over
        } else {
            let frac = (v / self.lo).ln() / (self.hi / self.lo).ln();
            BinSlot::In(((frac * self.bins as f64) as usize).min(self.bins - 1))
        }
    }

    /// Bin index with out-of-range values clamped to the edge bins.
    pub fn index_clamped(&self, v: f64) -> usize {
        match self.slot(v) {
            BinSlot::Under => 0,
            BinSlot::In(i) => i,
            BinSlot::Over => self.bins - 1,
        }
    }

    /// Geometric center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo * (self.hi / self.lo).powf((i as f64 + 0.5) / self.bins as f64)
    }

    /// Bounds of bin `i`.
    pub fn edges(&self, i: usize) -> BinEdges {
        let n = self.bins as f64;
        BinEdges {
            left: self.lo * (self.hi / self.lo).powf(i as f64 / n),
            right: self.lo * (self.hi / self.lo).powf((i as f64 + 1.0) / n),
        }
    }
}

/// Precomputed branch-light binning kernel for one [`LogBins`] geometry.
///
/// Classifies values bit-identically to [`LogBins::slot`] without a
/// `ln` call per value: the 11-bit biased exponent of the `f64` indexes
/// a per-octave rank base, and a short sorted run of exact bin
/// boundaries inside that octave resolves the final bin with `<=`
/// comparisons only (log-spaced duration geometries put ~3-4 boundaries
/// per octave, so the scan is a handful of flops).
///
/// Boundaries are found by bisecting the positive `f64` bit space
/// against the reference `slot`, then each boundary is verified against
/// its one-ULP predecessor. If any check fails (a geometry so tight
/// that bins are narrower than a ULP, or a non-monotone libm `ln`), the
/// table marks itself inexact and every lookup falls through to the
/// reference implementation — so the kernel is bit-identical to
/// [`LogBins::slot`] *by construction*, never by assumption.
#[derive(Debug, Clone)]
pub struct BinTable {
    geom: LogBins,
    /// CSR offsets into `edges`, indexed by biased exponent (2049
    /// entries). `starts[e]` doubles as the rank base for octave `e`:
    /// it counts the boundaries strictly below the octave's first
    /// value, so `rank(v) = starts[e] + |{edges in octave e} <= v|`
    /// and `rank == 0` means Under, `rank == r` means `In(r - 1)`.
    starts: Vec<u32>,
    /// Every bin's exact lower boundary (the smallest positive `f64`
    /// classified into that bin by the reference `slot`), ascending.
    edges: Vec<f64>,
    /// Construction-time verification passed; lookups may use the table.
    exact: bool,
}

impl BinTable {
    /// Build the kernel for `geom`. Always succeeds; if exact boundary
    /// recovery fails the table transparently degrades to the reference
    /// path (see the type docs).
    pub fn new(geom: LogBins) -> Self {
        // ord(v): Under = 0, In(i) = i + 1, Over = bins + 1 — monotone
        // in v for the reference slot (division by a positive constant,
        // ln, and scaling are all monotone).
        let ord = |v: f64| -> usize {
            match geom.slot(v) {
                BinSlot::Under => 0,
                BinSlot::In(i) => i + 1,
                BinSlot::Over => geom.bins + 1,
            }
        };
        let lo_bits = geom.lo.to_bits();
        let hi_bits = geom.hi.to_bits();
        let mut edges = Vec::with_capacity(geom.bins);
        let mut exact = true;
        for i in 0..geom.bins {
            // Smallest positive finite v with ord(v) >= i + 1, by
            // bisection over the (order-preserving) positive bit space.
            let (mut lo_b, mut hi_b) = (lo_bits, hi_bits);
            if ord(f64::from_bits(lo_b)) > i {
                hi_b = lo_b;
            }
            while lo_b < hi_b {
                let mid = lo_b + (hi_b - lo_b) / 2;
                if ord(f64::from_bits(mid)) > i {
                    hi_b = mid;
                } else {
                    lo_b = mid + 1;
                }
            }
            let b = f64::from_bits(hi_b);
            // The boundary must land exactly on its bin and its one-ULP
            // predecessor exactly on the previous slot.
            let prev = f64::from_bits(hi_b.wrapping_sub(1));
            if ord(b) != i + 1 || ord(prev) != i {
                exact = false;
                break;
            }
            edges.push(b);
        }
        let starts = if exact {
            let mut starts = Vec::with_capacity(2049);
            for e in 0..2048u64 {
                let octave_start = f64::from_bits(e << 52);
                starts.push(edges.partition_point(|b| *b < octave_start) as u32);
            }
            starts.push(edges.len() as u32);
            starts
        } else {
            edges.clear();
            Vec::new()
        };
        BinTable {
            geom,
            starts,
            edges,
            exact,
        }
    }

    /// The geometry this table classifies for.
    pub fn geometry(&self) -> LogBins {
        self.geom
    }

    /// Did construction verify exact boundaries (i.e. lookups avoid
    /// `ln`)? The classification result is reference-identical either
    /// way.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Classify a value — bit-identical to [`LogBins::slot`].
    #[inline]
    pub fn slot(&self, v: f64) -> BinSlot {
        if !self.exact {
            return self.geom.slot(v);
        }
        // lo > 0, so `v < lo` covers negatives, zeros, and (0, lo).
        // NaN fails every comparison and lands in In(0), exactly like
        // the reference's `(NaN * bins) as usize` saturation.
        if v < self.geom.lo {
            return BinSlot::Under;
        }
        if v >= self.geom.hi {
            return BinSlot::Over;
        }
        if v.is_nan() {
            return BinSlot::In(0);
        }
        let e = ((v.to_bits() >> 52) & 0x7ff) as usize;
        let mut rank = self.starts[e] as usize;
        let lo = self.starts[e] as usize;
        let hi = self.starts[e + 1] as usize;
        for &b in &self.edges[lo..hi] {
            rank += (b <= v) as usize;
        }
        debug_assert_eq!(BinSlot::In(rank - 1), self.geom.slot(v));
        BinSlot::In(rank - 1)
    }

    /// Bin index with out-of-range values clamped to the edge bins —
    /// bit-identical to [`LogBins::index_clamped`].
    #[inline]
    pub fn index_clamped(&self, v: f64) -> usize {
        match self.slot(v) {
            BinSlot::Under => 0,
            BinSlot::In(i) => i,
            BinSlot::Over => self.geom.bins - 1,
        }
    }
}

/// A histogram with logarithmically spaced bins over `[lo, hi)`.
///
/// Out-of-range samples land in dedicated under/overflow counters by
/// default ([`LogHistogram::add`]); capture-style collectors that prefer
/// clamping use [`LogHistogram::add_clamped`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// `bins` log-spaced bins over `[lo, hi)`; both bounds must be positive.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        let geom = LogBins::new(lo, hi, bins);
        LogHistogram {
            lo: geom.lo,
            hi: geom.hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build from positive samples, range padded to cover all of them.
    /// Non-positive samples land in the underflow counter.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        let positives: Vec<f64> = samples.iter().cloned().filter(|&v| v > 0.0).collect();
        assert!(!positives.is_empty(), "no positive samples");
        let min = positives.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = positives.iter().cloned().fold(0.0f64, f64::max);
        let mut h = LogHistogram::new(min / 1.05, max * 1.05, bins);
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Rebuild from raw parts — for container formats (e.g. saved
    /// profiles) that store the counts of several histograms side by side.
    /// Panics on invalid geometry or empty counts.
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>, underflow: u64, overflow: u64) -> Self {
        LogBins::new(lo, hi, counts.len());
        LogHistogram {
            lo,
            hi,
            counts,
            underflow,
            overflow,
        }
    }

    /// The bin geometry.
    pub fn geometry(&self) -> LogBins {
        LogBins::new(self.lo, self.hi, self.counts.len())
    }

    /// Record one sample (non-positive values count as underflow).
    pub fn add(&mut self, v: f64) {
        match self.geometry().slot(v) {
            BinSlot::Under => self.underflow += 1,
            BinSlot::In(i) => self.counts[i] += 1,
            BinSlot::Over => self.overflow += 1,
        }
    }

    /// Record one sample, clamping out-of-range values to the edge bins.
    pub fn add_clamped(&mut self, v: f64) {
        let i = self.geometry().index_clamped(v);
        self.counts[i] += 1;
    }

    /// Record one pre-classified sample. Equivalent to [`Self::add`]
    /// when `slot` came from this histogram's geometry (a [`BinTable`]
    /// built for [`Self::geometry`]); the batch ingest path classifies
    /// once and fans the slot out to several collectors.
    #[inline]
    pub fn add_slot(&mut self, slot: BinSlot) {
        match slot {
            BinSlot::Under => self.underflow += 1,
            BinSlot::In(i) => self.counts[i] += 1,
            BinSlot::Over => self.overflow += 1,
        }
    }

    /// Record one sample already clamped to bin `i`. Equivalent to
    /// [`Self::add_clamped`] when `i` came from this histogram's
    /// geometry ([`BinTable::index_clamped`]).
    #[inline]
    pub fn add_clamped_at(&mut self, i: usize) {
        self.counts[i] += 1;
    }

    /// Geometric center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.geometry().center(i)
    }

    /// Bounds of bin `i`.
    pub fn bin_edges(&self, i: usize) -> BinEdges {
        self.geometry().edges(i)
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin count.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Samples below the range (or non-positive).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples including out-of-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// In-range samples.
    pub fn in_range(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(center, count)` pairs with nonzero counts — ready for log-log
    /// plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// Fraction of in-range mass at or beyond `threshold` — quantifies a
    /// "right shoulder" like Franklin's slow reads.
    pub fn tail_fraction(&self, threshold: f64) -> f64 {
        let total = self.in_range();
        if total == 0 {
            return 0.0;
        }
        let tail: u64 = (0..self.counts.len())
            .filter(|&i| self.bin_edges(i).right > threshold)
            .map(|i| self.counts[i])
            .sum();
        tail as f64 / total as f64 + self.overflow as f64 / total as f64
    }

    /// Approximate quantile over the in-range mass (bin-center resolution),
    /// or `None` if empty. `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.in_range();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for i in 0..self.counts.len() {
            acc += self.counts[i];
            if acc >= target {
                return Some(self.bin_center(i));
            }
        }
        Some(self.bin_center(self.counts.len() - 1))
    }

    /// Merge another histogram with the same geometry into this one; the
    /// result is identical to having accumulated both streams into one
    /// histogram. Panics if geometries differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "merging log histograms with different bin geometry"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_partition_the_line() {
        let g = LogBins::new(0.1, 10.0, 20);
        assert_eq!(g.slot(-1.0), BinSlot::Under);
        assert_eq!(g.slot(0.05), BinSlot::Under);
        assert_eq!(g.slot(0.1), BinSlot::In(0));
        assert_eq!(g.slot(10.0), BinSlot::Over);
        assert_eq!(g.index_clamped(1e-9), 0);
        assert_eq!(g.index_clamped(1e9), 19);
    }

    #[test]
    fn centers_inside_edges() {
        let g = LogBins::new(0.01, 100.0, 32);
        for i in 0..32 {
            let c = g.center(i);
            let e = g.edges(i);
            assert!(e.contains(c), "bin {i}: {} {c} {}", e.left, e.right);
            assert!(e.ratio() > 1.0);
            assert_eq!(g.slot(c), BinSlot::In(i));
        }
    }

    #[test]
    fn merge_equals_union() {
        let vals: Vec<f64> = (1..200).map(|i| 0.01 * i as f64 * i as f64).collect();
        let mut a = LogHistogram::new(0.05, 50.0, 24);
        let mut b = a.clone();
        let mut union = a.clone();
        for (i, &v) in vals.iter().enumerate() {
            if i % 3 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            union.add(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = LogHistogram::new(0.1, 10.0, 8);
        let b = LogHistogram::new(0.1, 10.0, 16);
        a.merge(&b);
    }

    /// Deterministic 64-bit mixer for test-value generation.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn table_geometries() -> Vec<LogBins> {
        vec![
            // The duration geometry every ingest sketch uses.
            LogBins::new(1e-6, 1e3, 96),
            LogBins::new(0.1, 10.0, 20),
            LogBins::new(1e-3, 1e3, 64),
            LogBins::new(0.05, 50.0, 24),
            // One bin, power-of-two aligned bounds, subnormal lows.
            LogBins::new(1.0, 2.0, 1),
            LogBins::new(0.25, 1024.0, 7),
            LogBins::new(1e-310, 1e-300, 12),
        ]
    }

    #[test]
    fn bin_table_matches_reference_on_specials_and_edges() {
        for g in table_geometries() {
            let t = BinTable::new(g);
            assert!(t.is_exact(), "expected exact table for {g:?}");
            let mut probes = vec![
                0.0,
                -0.0,
                -1.0,
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE,
                5e-324,
                g.lo(),
                g.hi(),
                f64::MAX,
            ];
            // Every bin boundary ± 64 ULPs, plus exact edges/centers.
            for i in 0..g.bins() {
                let e = g.edges(i);
                for anchor in [e.left, e.right, g.center(i)] {
                    let bits = anchor.to_bits();
                    for d in 0..64u64 {
                        probes.push(f64::from_bits(bits.wrapping_add(d)));
                        probes.push(f64::from_bits(bits.wrapping_sub(d)));
                    }
                }
            }
            for v in probes {
                assert_eq!(t.slot(v), g.slot(v), "slot({v:e}) on {g:?}");
                assert_eq!(
                    t.index_clamped(v),
                    g.index_clamped(v),
                    "index_clamped({v:e}) on {g:?}"
                );
            }
        }
    }

    #[test]
    fn bin_table_matches_reference_on_dense_random_sweep() {
        let mut state = 0x5eed_1234u64;
        for g in table_geometries() {
            let t = BinTable::new(g);
            let (lo_bits, hi_bits) = (g.lo().to_bits(), g.hi().to_bits());
            for _ in 0..200_000 {
                // Log-uniform over the geometry's own range (uniform in
                // bit space), widened a little past both ends.
                let span = hi_bits - lo_bits;
                let bits = lo_bits
                    .wrapping_sub(span / 8)
                    .wrapping_add(splitmix(&mut state) % (span + span / 4).max(1));
                let v = f64::from_bits(bits);
                assert_eq!(t.slot(v), g.slot(v), "slot({v:e}) on {g:?}");
            }
        }
    }

    #[test]
    fn bin_table_degrades_to_reference_when_bins_are_subulp() {
        // 1000 bins across a 2-ULP interval: boundaries can't be
        // recovered exactly, so the table must fall back — and still
        // agree with the reference everywhere.
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 2);
        let g = LogBins::new(lo, hi, 1000);
        let t = BinTable::new(g);
        assert!(!t.is_exact());
        for v in [0.0, lo, f64::from_bits(lo.to_bits() + 1), hi, 2.0] {
            assert_eq!(t.slot(v), g.slot(v));
        }
    }

    #[test]
    fn add_slot_matches_add() {
        let g = LogBins::new(1e-6, 1e3, 96);
        let t = BinTable::new(g);
        let mut a = LogHistogram::new(1e-6, 1e3, 96);
        let mut b = a.clone();
        let mut c = a.clone();
        let mut d = a.clone();
        let mut state = 7u64;
        for i in 0..10_000 {
            let v = match i % 7 {
                0 => -1.0,
                1 => 0.0,
                2 => 5e4,
                _ => f64::from_bits(
                    g.lo().to_bits() + splitmix(&mut state) % (g.hi().to_bits() - g.lo().to_bits()),
                ),
            };
            a.add(v);
            b.add_slot(t.slot(v));
            c.add_clamped(v);
            d.add_clamped_at(t.index_clamped(v));
        }
        assert_eq!(a, b);
        assert_eq!(c, d);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LogHistogram::new(1e-3, 1e3, 64);
        for i in 1..=100 {
            h.add(i as f64 * 0.1);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!(q50 > 2.5 && q50 < 10.0, "{q50}");
        assert!(h.quantile(1.0).unwrap() >= q50);
        assert!(LogHistogram::new(0.1, 1.0, 4).quantile(0.5).is_none());
    }
}
