//! Simulation engine: a `World` handles events, a `Scheduler` lets it
//! schedule follow-ups, and `Simulator` runs the loop.

use crate::queue::EventQueue;
use crate::time::{SimSpan, SimTime};

/// Handed to `World::handle` to schedule follow-up events.
///
/// Scheduling strictly in the past is a logic error; the scheduler clamps
/// such requests to `now` (and counts them) rather than corrupting the
/// timeline, since models legitimately compute completion times that equal
/// the current instant.
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
    clamped: u64,
}

impl<E> Scheduler<E> {
    /// A scheduler for `now` reusing `pending` as its follow-up buffer
    /// (the simulator hands the same buffer back every step, so the
    /// steady-state event loop allocates nothing).
    fn with_buffer(now: SimTime, pending: Vec<(SimTime, E)>) -> Self {
        debug_assert!(pending.is_empty());
        Scheduler {
            now,
            pending,
            clamped: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to `now` if earlier).
    pub fn at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        self.pending.push((at, event));
    }

    /// Schedule `event` after `delay`. Routes through [`Scheduler::at`]
    /// so clamp accounting stays consistent across entry points.
    pub fn after(&mut self, delay: SimSpan, event: E) {
        self.at(self.now + delay, event);
    }

    /// Schedule `event` immediately (still goes through the queue, so it
    /// runs after the current handler returns). Same clamp accounting as
    /// [`Scheduler::at`] — `now` is never in the past, so never counted.
    pub fn now_(&mut self, event: E) {
        self.at(self.now, event);
    }
}

/// A simulation model: owns all state and reacts to events.
pub trait World {
    /// The event alphabet of this model.
    type Event;

    /// React to `event` occurring at `now`, scheduling follow-ups on `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The event loop: pops events in time order and dispatches to the world.
pub struct Simulator<W: World> {
    /// The model being simulated (public so drivers can inspect/finalize it).
    pub world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
    clamped: u64,
    /// Follow-up buffer recycled through every `step()`'s `Scheduler`,
    /// keeping the steady-state loop allocation-free.
    scratch: Vec<(SimTime, W::Event)>,
}

impl<W: World> Simulator<W> {
    /// Wrap `world` with an empty event queue at time zero.
    pub fn new(world: W) -> Self {
        Simulator {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            clamped: 0,
            scratch: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of in-the-past schedule requests that were clamped to `now`.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Seed an event before (or during) the run.
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        debug_assert!(at >= self.now, "seeding an event in the past");
        self.queue.push(at.max(self.now), event);
    }

    /// Process a single event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        let mut sched = Scheduler::with_buffer(t, std::mem::take(&mut self.scratch));
        self.world.handle(t, ev, &mut sched);
        self.clamped += sched.clamped;
        self.queue.push_batch(&mut sched.pending);
        self.scratch = sched.pending;
        self.processed += 1;
        true
    }

    /// Run until the queue drains; returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the queue drains or virtual time would exceed `deadline`.
    ///
    /// Events strictly after `deadline` remain queued; returns the final
    /// virtual time (≤ `deadline`).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Pending event count (for drain assertions in tests).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that counts down: event n schedules event n-1 one second later.
    struct Countdown {
        fired: Vec<(SimTime, u32)>,
    }

    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.fired.push((now, ev));
            if ev > 0 {
                sched.after(SimSpan::from_secs(1), ev - 1);
            }
        }
    }

    #[test]
    fn chain_of_events_advances_time() {
        let mut sim = Simulator::new(Countdown { fired: vec![] });
        sim.schedule(SimTime::ZERO, 3);
        let end = sim.run();
        assert_eq!(end, SimTime::from_secs(3));
        assert_eq!(sim.processed(), 4);
        assert_eq!(
            sim.world.fired,
            vec![
                (SimTime::from_secs(0), 3),
                (SimTime::from_secs(1), 2),
                (SimTime::from_secs(2), 1),
                (SimTime::from_secs(3), 0),
            ]
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(Countdown { fired: vec![] });
        sim.schedule(SimTime::ZERO, 10);
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.world.fired.len(), 5); // t = 0..=4
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.world.fired.len(), 11);
    }

    struct PastScheduler;
    impl World for PastScheduler {
        type Event = bool;
        fn handle(&mut self, now: SimTime, first: bool, sched: &mut Scheduler<bool>) {
            if first {
                // Deliberately schedule one second "ago".
                let past = SimTime(now.nanos().saturating_sub(2_000_000_000));
                sched.at(past, false);
            }
        }
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Simulator::new(PastScheduler);
        sim.schedule(SimTime::from_secs(5), true);
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.clamped(), 1);
        assert_eq!(sim.processed(), 2);
    }
}
