//! Deterministic fast hashing for id-keyed simulator maps.
//!
//! The simulators key their hot-path maps by small dense integers
//! (monotonic I/O ids, stream ids, `(rank, rank)` channel pairs). The
//! standard library's SipHash is hardened against adversarial keys the
//! simulation can never produce, and its per-lookup cost shows up
//! directly in events/sec. [`FxHasher`] is the classic Firefox/rustc
//! multiply-xor hash: a handful of cycles per word, with distribution
//! that is more than good enough for sequential ids.
//!
//! Determinism: the hash is a pure function of the key bytes — no
//! per-process random state — so map behaviour is identical across runs
//! and processes. Nothing in the simulators iterates these maps in a
//! result-affecting order, but a stable hash removes even that footgun.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (64-bit golden-ratio constant).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A fast, deterministic, non-cryptographic hasher for simulator keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert!(m.contains_key(&i));
        }
        for i in (0..1000u64).step_by(2) {
            assert!(m.remove(&i).is_some());
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn hash_is_stable_across_hashers() {
        // Same key → same hash in fresh hasher instances (no per-process
        // randomness), which is what keeps map behaviour reproducible.
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn sequential_ids_spread() {
        // Monotonic ids (the IoId pattern) must not collide in the low
        // bits the table indexes with. Multiplication by an odd constant
        // is a bijection mod 2^k, so low bits spread perfectly.
        let mut low7 = FxHashSet::default();
        for i in 0..128u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(i);
            low7.insert(hasher.finish() & 0x7f);
        }
        assert_eq!(low7.len(), 128, "low-bit collisions on sequential ids");
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is 20+");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is 20+");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is 20-");
        assert_ne!(a.finish(), c.finish());
    }
}
