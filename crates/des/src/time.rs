//! Virtual time with nanosecond resolution.
//!
//! Simulated time is an unsigned nanosecond count from simulation start
//! (`SimTime`); intervals are `SimSpan`. Integer time keeps event ordering
//! exact and reproducible across platforms — floating-point time would make
//! tie-breaking depend on accumulated rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_nanos(s))
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Raw nanosecond count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Span since an earlier instant; saturates to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimSpan {
    /// Zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimSpan(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimSpan(secs_to_nanos(s))
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimSpan(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimSpan(ms * 1_000_000)
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Raw nanosecond count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Span for transferring `bytes` at `bytes_per_sec`.
    ///
    /// A non-positive rate yields `SimSpan::ZERO` rather than a division
    /// blow-up; the file-system model treats zero-rate resources as free.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> SimSpan {
        if bytes_per_sec <= 0.0 {
            return SimSpan::ZERO;
        }
        SimSpan::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Scale by a dimensionless factor (saturating, never negative).
    pub fn scale(self, factor: f64) -> SimSpan {
        if factor <= 0.0 {
            return SimSpan::ZERO;
        }
        SimSpan(saturating_f64_to_u64(self.0 as f64 * factor))
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if s <= 0.0 {
        return 0;
    }
    saturating_f64_to_u64(s * NANOS_PER_SEC as f64)
}

fn saturating_f64_to_u64(v: f64) -> u64 {
    if v >= u64::MAX as f64 {
        u64::MAX
    } else if v <= 0.0 {
        0
    } else {
        v as u64
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        self.since(rhs)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs.max(1))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimSpan::from_secs_f64(-0.1), SimSpan::ZERO);
    }

    #[test]
    fn add_span_to_time() {
        let t = SimTime::from_secs(2) + SimSpan::from_millis(250);
        assert_eq!(t.nanos(), 2_250_000_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.since(a), SimSpan::from_secs(2));
        assert_eq!(a.since(b), SimSpan::ZERO);
    }

    #[test]
    fn span_for_bytes() {
        // 1 MiB at 1 MiB/s is one second.
        let s = SimSpan::for_bytes(1 << 20, (1 << 20) as f64);
        assert_eq!(s, SimSpan::from_secs(1));
        // Zero rate treated as free.
        assert_eq!(SimSpan::for_bytes(123, 0.0), SimSpan::ZERO);
    }

    #[test]
    fn scale_rounds_down_and_clamps() {
        let s = SimSpan::from_secs(10).scale(0.25);
        assert_eq!(s, SimSpan::from_secs_f64(2.5));
        assert_eq!(SimSpan::from_secs(10).scale(-1.0), SimSpan::ZERO);
    }

    #[test]
    fn saturating_arithmetic_at_extremes() {
        let max = SimTime::MAX;
        assert_eq!(max + SimSpan::from_secs(1), SimTime::MAX);
        let big = SimSpan(u64::MAX);
        assert_eq!(big * 2, SimSpan(u64::MAX));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
