//! FIFO service centers: shared hardware resources modeled by eager
//! completion-time computation.
//!
//! A `ServiceCenter` is a single FIFO server (an OST's disk pipeline, a
//! node's injection link, the aggregate fabric). Submitting work at virtual
//! time `at` with service demand `dur` returns the completion instant
//! `max(at, next_free) + dur` and advances `next_free` — the classic
//! "activity scan" shortcut that lets one event per RPC model an entire
//! queueing network, provided submissions happen in nondecreasing event
//! time (which the DES loop guarantees).

use crate::time::{SimSpan, SimTime};
use std::collections::BinaryHeap;

/// A single FIFO server.
///
/// ```
/// use pio_des::{ServiceCenter, SimSpan, SimTime};
/// let mut ost = ServiceCenter::new();
/// let a = ost.submit(SimTime::from_secs(0), SimSpan::from_secs(5));
/// let b = ost.submit(SimTime::from_secs(1), SimSpan::from_secs(2)); // queues
/// assert_eq!(a, SimTime::from_secs(5));
/// assert_eq!(b, SimTime::from_secs(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceCenter {
    next_free: SimTime,
    busy: SimSpan,
    served: u64,
    /// Instant of the most recent submission (for utilization windows).
    last_submit: SimTime,
}

impl ServiceCenter {
    /// An idle server at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit work arriving at `at` requiring `dur` of service.
    /// Returns the completion instant.
    pub fn submit(&mut self, at: SimTime, dur: SimSpan) -> SimTime {
        let start = at.max(self.next_free);
        let done = start + dur;
        self.next_free = done;
        self.busy += dur;
        self.served += 1;
        self.last_submit = at;
        done
    }

    /// How long work arriving at `at` would wait before service starts.
    pub fn backlog(&self, at: SimTime) -> SimSpan {
        self.next_free.since(at)
    }

    /// The instant the server next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total service time delivered.
    pub fn busy_time(&self) -> SimSpan {
        self.busy
    }

    /// Number of jobs served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of `[0, horizon]` spent busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.nanos() == 0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }
}

/// A bank of `c` identical FIFO servers fed from one queue
/// (e.g. an OSS front-end with several service threads).
#[derive(Debug, Clone)]
pub struct MultiServiceCenter {
    free_at: BinaryHeap<std::cmp::Reverse<SimTime>>,
    busy: SimSpan,
    served: u64,
}

impl MultiServiceCenter {
    /// `servers` idle servers at time zero. `servers` must be nonzero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "service center needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(std::cmp::Reverse(SimTime::ZERO));
        }
        MultiServiceCenter {
            free_at,
            busy: SimSpan::ZERO,
            served: 0,
        }
    }

    /// Submit work arriving at `at` requiring `dur`; served by the first
    /// server to become free. Returns the completion instant.
    pub fn submit(&mut self, at: SimTime, dur: SimSpan) -> SimTime {
        let std::cmp::Reverse(earliest) = self.free_at.pop().expect("nonzero servers");
        let start = at.max(earliest);
        let done = start + dur;
        self.free_at.push(std::cmp::Reverse(done));
        self.busy += dur;
        self.served += 1;
        done
    }

    /// Number of jobs served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total service time delivered across all servers.
    pub fn busy_time(&self) -> SimSpan {
        self.busy
    }

    /// Server count.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }
    fn d(x: u64) -> SimSpan {
        SimSpan::from_secs(x)
    }

    #[test]
    fn idle_server_serves_immediately() {
        let mut c = ServiceCenter::new();
        assert_eq!(c.submit(s(10), d(2)), s(12));
        assert_eq!(c.served(), 1);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut c = ServiceCenter::new();
        assert_eq!(c.submit(s(0), d(5)), s(5));
        // Arrives at t=1 but waits until t=5.
        assert_eq!(c.submit(s(1), d(2)), s(7));
        assert_eq!(c.backlog(s(1)), d(6));
        assert_eq!(c.busy_time(), d(7));
    }

    #[test]
    fn gap_lets_server_idle() {
        let mut c = ServiceCenter::new();
        c.submit(s(0), d(1));
        assert_eq!(c.submit(s(10), d(1)), s(11));
        assert_eq!(c.busy_time(), d(2));
        assert!((c.utilization(s(11)).abs() - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn multi_server_parallelism() {
        let mut c = MultiServiceCenter::new(2);
        assert_eq!(c.submit(s(0), d(4)), s(4));
        assert_eq!(c.submit(s(0), d(4)), s(4)); // second server
        assert_eq!(c.submit(s(0), d(4)), s(8)); // queues behind first free
        assert_eq!(c.served(), 3);
        assert_eq!(c.servers(), 2);
    }

    #[test]
    fn multi_server_picks_earliest_free() {
        let mut c = MultiServiceCenter::new(2);
        c.submit(s(0), d(10)); // server A busy till 10
        c.submit(s(0), d(2)); // server B busy till 2
        assert_eq!(c.submit(s(3), d(1)), s(4)); // B is free at 3
    }

    #[test]
    #[should_panic]
    fn zero_servers_rejected() {
        MultiServiceCenter::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Work conservation: for nondecreasing arrivals, the final
        /// completion time equals max over jobs of (start-of-busy-period +
        /// accumulated service), and total busy time equals the sum of
        /// service demands.
        #[test]
        fn work_conservation(jobs in proptest::collection::vec((0u64..100, 1u64..20), 1..50)) {
            let mut arrivals: Vec<(u64, u64)> = jobs;
            arrivals.sort_by_key(|&(a, _)| a);
            let mut c = ServiceCenter::new();
            let mut clock = 0u64; // manual reference model
            let mut total = 0u64;
            for &(a, svc) in &arrivals {
                let done = c.submit(SimTime::from_secs(a), SimSpan::from_secs(svc));
                clock = clock.max(a) + svc;
                total += svc;
                prop_assert_eq!(done, SimTime::from_secs(clock));
            }
            prop_assert_eq!(c.busy_time(), SimSpan::from_secs(total));
        }

        /// A multi-center with one server behaves exactly like ServiceCenter.
        #[test]
        fn multi1_equals_single(jobs in proptest::collection::vec((0u64..100, 1u64..20), 1..50)) {
            let mut arrivals = jobs;
            arrivals.sort_by_key(|&(a, _)| a);
            let mut single = ServiceCenter::new();
            let mut multi = MultiServiceCenter::new(1);
            for &(a, svc) in &arrivals {
                let t = SimTime::from_secs(a);
                let dur = SimSpan::from_secs(svc);
                prop_assert_eq!(single.submit(t, dur), multi.submit(t, dur));
            }
        }

        /// More servers never delay any individual completion.
        #[test]
        fn more_servers_no_slower(jobs in proptest::collection::vec((0u64..50, 1u64..10), 1..40)) {
            let mut arrivals = jobs;
            arrivals.sort_by_key(|&(a, _)| a);
            let mut few = MultiServiceCenter::new(1);
            let mut many = MultiServiceCenter::new(4);
            for &(a, svc) in &arrivals {
                let t = SimTime::from_secs(a);
                let dur = SimSpan::from_secs(svc);
                let f = few.submit(t, dur);
                let m = many.submit(t, dur);
                prop_assert!(m <= f);
            }
        }
    }
}
