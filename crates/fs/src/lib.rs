//! # pio-fs — a Lustre-like parallel file system simulator
//!
//! The substrate the paper's measurements ran on: a Cray XT4 with a Lustre
//! file system. This crate reproduces the *mechanisms* that shape the
//! completion-time distributions the paper analyses:
//!
//! * **Striping** ([`stripe`]) — files are striped round-robin over object
//!   storage targets (OSTs) in fixed-size stripes; every transfer splits
//!   into stripe-aligned RPCs.
//! * **OST service** ([`ost`]) — each OST is a FIFO server with
//!   bandwidth-proportional service plus log-normally distributed per-RPC
//!   overhead and a stream-switch (seek) penalty when interleaving
//!   requests from many clients.
//! * **Client cache & write-back** ([`node`], [`sim`]) — a per-node dirty
//!   page cache absorbs writes at memory speed until the dirty limit, then
//!   `write()` blocks on drain; this produces the high/low plateau
//!   structure of the paper's aggregate-rate curves.
//! * **Node service discipline** ([`node`]) — each node's client serves
//!   its tasks' I/O exclusively, in pairs, or fairly (resampled each
//!   phase); exclusive service yields completion times at T/4, T/2, …, T —
//!   the harmonic R, R/2, R/4 modes of the paper's Figure 1(c).
//! * **Read-ahead** ([`readahead`]) — sequential and strided pattern
//!   detection, *including the Lustre bug the paper isolates*: a strided
//!   pattern recognized on its third appearance erroneously inflates the
//!   read-ahead window, and under client memory pressure the window is
//!   fetched as 4 KiB page reads, turning 15-second reads into 30–500 s
//!   stalls. A `franklin_patched` preset disables strided detection, the
//!   fix the paper reports as a 4.2× speedup.
//! * **Extent locks** ([`locks`]) — writes to a shared stripe from
//!   different nodes pay a lock revocation plus read-modify-write, the
//!   cost the GCRM study removes by aligning records to 1 MiB.
//! * **MDS** ([`sim`]) — a metadata service center; small serialized
//!   metadata transactions are what the GCRM metadata-aggregation
//!   optimization attacks.
//! * **Fault hooks** ([`fault`]) — an optional injection trait consulted
//!   at every resource touch point (OST, fabric, NIC, MDS, RPC
//!   transmission); inert when absent, it lets the `pio-fault` crate
//!   degrade components deterministically without this crate carrying
//!   any fault policy.

pub mod config;
pub mod fault;
pub mod locks;
pub mod node;
pub mod ost;
pub mod readahead;
pub mod sim;
pub mod stripe;

pub use config::{FsConfig, ReadaheadConfig};
pub use fault::FaultInjector;
pub use locks::LockStats;
pub use ost::Ost;
pub use sim::{FsEvent, FsNotify, FsSim, FsStats, IoId, IoKind, IoReq};
pub use stripe::{Extent, StripeLayout};

/// Node identifier within a cluster.
pub type NodeId = u32;
/// File identifier within a run.
pub type FileId = u32;
