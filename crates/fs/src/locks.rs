//! Distributed extent locks over file stripes.
//!
//! Lustre's DLM grants extent locks per client; when two clients write
//! into the same stripe of a shared file, ownership ping-pongs: each
//! write pays a revocation round-trip, and a partial-stripe write under a
//! foreign lock implies reading the stripe back first (read-modify-write).
//! "The Lustre file system prefers aligned offsets when writing to a
//! shared file" — the GCRM alignment optimization exists precisely to
//! eliminate these shared boundary stripes.

use crate::NodeId;
use pio_des::FxHashMap;

/// What a write into a stripe costs in lock terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// This node already owns the stripe lock — free.
    Owned,
    /// Nobody held the stripe — a fresh grant (cheap, counted but free of
    /// revocation cost).
    Granted,
    /// Another node held the stripe: revocation round-trip required; if
    /// the write is partial the stripe must be read back (RMW).
    Conflict {
        /// Whether a read-modify-write of the stripe is needed.
        rmw: bool,
    },
}

/// Aggregate lock-table counters for a run.
///
/// Replaces the old positional `(grants, conflicts, rmws)` tuple so call
/// sites name what they read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Fresh extent-lock grants (nobody held the stripe).
    pub acquired: u64,
    /// Acquisitions that hit a foreign owner — each costs a revocation
    /// round-trip through the DLM.
    pub contended: u64,
    /// Contended acquisitions whose partial-stripe write also had to read
    /// the stripe back (read-modify-write) under the revoked lock — the
    /// expensive subset of `contended`.
    pub revoked: u64,
}

/// Lock table for all shared files.
#[derive(Debug, Default)]
pub struct LockMap {
    /// (file, stripe) → owning node.
    owners: FxHashMap<(u32, u64), NodeId>,
    grants: u64,
    conflicts: u64,
    rmws: u64,
}

impl LockMap {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a write by `node` covering `stripe` of `file`;
    /// `full_stripe` is whether the write covers the stripe completely.
    pub fn write_stripe(
        &mut self,
        file: u32,
        stripe: u64,
        node: NodeId,
        full_stripe: bool,
    ) -> LockOutcome {
        match self.owners.insert((file, stripe), node) {
            None => {
                self.grants += 1;
                LockOutcome::Granted
            }
            Some(owner) if owner == node => LockOutcome::Owned,
            Some(_) => {
                self.conflicts += 1;
                let rmw = !full_stripe;
                if rmw {
                    self.rmws += 1;
                }
                LockOutcome::Conflict { rmw }
            }
        }
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquired: self.grants,
            contended: self.conflicts,
            revoked: self.rmws,
        }
    }

    /// Total fresh grants.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total cross-node conflicts.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Conflicts that also required read-modify-write.
    pub fn rmws(&self) -> u64 {
        self.rmws
    }

    /// Drop all locks of a file (close/unlink).
    pub fn drop_file(&mut self, file: u32) {
        self.owners.retain(|&(f, _), _| f != file);
    }

    /// Stripes currently locked.
    pub fn held(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_writer_gets_grant_then_owns() {
        let mut l = LockMap::new();
        assert_eq!(l.write_stripe(1, 0, 10, true), LockOutcome::Granted);
        assert_eq!(l.write_stripe(1, 0, 10, true), LockOutcome::Owned);
        assert_eq!(l.grants(), 1);
        assert_eq!(l.conflicts(), 0);
    }

    #[test]
    fn cross_node_write_conflicts() {
        let mut l = LockMap::new();
        l.write_stripe(1, 5, 10, true);
        assert_eq!(
            l.write_stripe(1, 5, 11, true),
            LockOutcome::Conflict { rmw: false }
        );
        // Ownership transferred: node 11 now owns.
        assert_eq!(l.write_stripe(1, 5, 11, true), LockOutcome::Owned);
        // Ping-pong back.
        assert_eq!(
            l.write_stripe(1, 5, 10, false),
            LockOutcome::Conflict { rmw: true }
        );
        assert_eq!(l.conflicts(), 2);
        assert_eq!(l.rmws(), 1);
    }

    #[test]
    fn partial_stripe_conflict_requires_rmw() {
        let mut l = LockMap::new();
        l.write_stripe(2, 7, 1, false);
        let out = l.write_stripe(2, 7, 2, false);
        assert_eq!(out, LockOutcome::Conflict { rmw: true });
    }

    #[test]
    fn files_and_stripes_are_independent() {
        let mut l = LockMap::new();
        l.write_stripe(1, 0, 10, true);
        assert_eq!(l.write_stripe(2, 0, 11, true), LockOutcome::Granted);
        assert_eq!(l.write_stripe(1, 1, 11, true), LockOutcome::Granted);
        assert_eq!(l.conflicts(), 0);
        assert_eq!(l.held(), 3);
    }

    #[test]
    fn drop_file_releases_locks() {
        let mut l = LockMap::new();
        l.write_stripe(1, 0, 10, true);
        l.write_stripe(1, 1, 10, true);
        l.write_stripe(2, 0, 10, true);
        l.drop_file(1);
        assert_eq!(l.held(), 1);
        // Re-acquiring file 1 stripes is a fresh grant, not a conflict.
        assert_eq!(l.write_stripe(1, 0, 11, true), LockOutcome::Granted);
    }

    #[test]
    fn aligned_writers_never_conflict() {
        // Each of 8 nodes writes its own stripe range — the aligned GCRM
        // pattern: zero conflicts by construction.
        let mut l = LockMap::new();
        for node in 0..8u32 {
            for s in 0..4u64 {
                let stripe = node as u64 * 4 + s;
                assert_eq!(l.write_stripe(1, stripe, node, true), LockOutcome::Granted);
            }
        }
        assert_eq!(l.conflicts(), 0);
    }

    #[test]
    fn unaligned_boundaries_conflict_between_neighbours() {
        // Each writer's range spills one partial stripe into the next
        // writer's first stripe — the unaligned GCRM pattern.
        let mut l = LockMap::new();
        let mut conflicts = 0;
        for node in 0..8u32 {
            let first = node as u64 * 3; // overlaps previous node's last
            for s in first..first + 4 {
                let full = s != first + 3; // last stripe partial
                if matches!(
                    l.write_stripe(1, s, node, full),
                    LockOutcome::Conflict { .. }
                ) {
                    conflicts += 1;
                }
            }
        }
        assert!(conflicts >= 7, "neighbour boundary stripes must conflict");
    }
}
