//! The file-system simulator proper: wires nodes, fabric, OSTs, MDS,
//! locks and read-ahead into an event-driven model with one event per
//! RPC.
//!
//! ## I/O life cycle
//!
//! A data I/O acquires its node's discipline token, then streams
//! stripe-sized RPCs through the chain *NIC → fabric → OST*, each stage a
//! FIFO service center, keeping a window of RPCs in flight.
//!
//! * **Buffered writes** are accepted into the node's dirty-page cache;
//!   `write()` returns when the last byte is accepted (at memory speed if
//!   there is room, else when enough dirty data has drained). Write-back
//!   continues after return; `Flush` waits for node quiescence.
//! * **Synchronous writes**: a shared-file write that is mostly partial
//!   stripes (an unaligned small record), or that conflicts with another
//!   node's extent lock (a revocation round serialized through the DLM),
//!   loses caching — `write()` then returns only when the data is on the
//!   OSTs. This is what makes the unaligned GCRM baseline slow.
//! * **Reads** bypass the cache and return at the last RPC completion. A
//!   read classified *strided* by the read-ahead engine, on a node under
//!   memory pressure, degrades to serialized page-sized fetches whose
//!   cost scales with the erroneous window (the Franklin bug).
//! * **Metadata** ops go to the MDS service center (small writes also
//!   touch their OST); they bypass the data token.

use crate::config::FsConfig;
use crate::fault::FaultInjector;
use crate::locks::{LockMap, LockOutcome, LockStats};
use crate::node::Node;
use crate::ost::Ost;
use crate::readahead::{ReadMode, ReadaheadTracker};
use crate::stripe::StripeLayout;
use crate::{FileId, NodeId};
use pio_des::{FxHashMap, FxHashSet, MultiServiceCenter, ServiceCenter, SimRng, SimSpan, SimTime};

/// Identifier of an in-flight (or recently submitted) I/O.
pub type IoId = u64;

/// What kind of call an I/O request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Data read.
    Read,
    /// Data write (buffered unless lock conflicts force sync).
    Write,
    /// Small metadata read (MDS lookup).
    MetaRead,
    /// Small metadata write (synchronous MDS transaction + OST touch).
    MetaWrite,
    /// File open (MDS).
    Open,
    /// File close (MDS); drops read-ahead stream state.
    Close,
    /// Wait for all dirty data on this rank's node to reach the servers.
    Flush,
}

/// An I/O request from the execution layer.
#[derive(Debug, Clone)]
pub struct IoReq {
    /// Issuing rank (returned in notifications).
    pub rank: u32,
    /// Node the rank runs on.
    pub node: NodeId,
    /// Target file (from [`FsSim::register_file`]).
    pub file: FileId,
    /// Stream identity (rank/fd) for read-ahead and OST seek modeling.
    pub stream: u64,
    /// Call kind.
    pub kind: IoKind,
    /// File offset.
    pub offset: u64,
    /// Length in bytes (data and metadata ops; 0 allowed for open/close/flush).
    pub len: u64,
}

/// Internal events of the file-system model.
#[derive(Debug, Clone, Copy)]
pub enum FsEvent {
    /// RPC `idx` of I/O `io` completed at the OSTs.
    RpcDone {
        /// The I/O.
        io: IoId,
        /// RPC index within the I/O's plan.
        idx: u32,
    },
    /// Buffered write `io` fully accepted into the cache (call returns).
    Accepted {
        /// The I/O.
        io: IoId,
    },
    /// Metadata operation finished.
    MetaDone {
        /// The I/O.
        io: IoId,
    },
}

/// Completion notifications to the execution layer.
#[derive(Debug, Clone, Copy)]
pub enum FsNotify {
    /// The call of I/O `io` returned to the application at the event time.
    Done {
        /// The I/O.
        io: IoId,
        /// Issuing rank.
        rank: u32,
    },
}

/// Aggregate statistics over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Data RPCs issued.
    pub data_rpcs: u64,
    /// Metadata operations.
    pub meta_ops: u64,
    /// Reads that executed degraded (the bug path).
    pub degraded_reads: u64,
    /// Writes forced synchronous by lock conflicts.
    pub sync_writes: u64,
    /// Bytes read (data plane).
    pub bytes_read: u64,
    /// Bytes written (data plane).
    pub bytes_written: u64,
    /// Flush operations.
    pub flushes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Rpc {
    offset: u64,
    len: u32,
    /// Extra OST service (RMW, RAID partial-stripe penalty).
    ost_extra: SimSpan,
    /// Client-local extra latency (degraded page fetches).
    local_extra: SimSpan,
    /// Lock revocation required before this RPC (serialized via DLM).
    revoke: bool,
}

#[derive(Debug)]
struct IoState {
    rank: u32,
    node: NodeId,
    file: FileId,
    stream: u64,
    kind: IoKind,
    offset: u64,
    len: u64,
    rpcs: Vec<Rpc>,
    next_rpc: u32,
    inflight: u32,
    done_rpcs: u32,
    window: u32,
    /// Write: bytes accepted into cache so far (== len for sync writes
    /// once granted, acceptance is bypassed).
    accepted: u64,
    noise: f64,
    /// Read degraded by the read-ahead bug.
    degraded: bool,
    /// Write forced synchronous by lock conflicts.
    sync: bool,
    /// Call-return notification delivered.
    returned: bool,
    /// Completion of the copy-in through the node's ingest engine.
    ingest_done: SimTime,
    /// When the node token was granted (acceptance-stretch anchor).
    granted_at: SimTime,
    /// Per-call grant-pacing stretch (≥ 1) applied to buffered-write
    /// acceptance duration.
    stretch: f64,
    /// Strided classification recorded at submit.
    read_mode: ReadMode,
    /// Strided severity (0 = not strided); a strided read degrades the
    /// moment its node comes under memory pressure, even mid-flight.
    strided_severity: u32,
    /// Whether the node was under memory pressure when the call was
    /// issued (POSIX submit time — the paper's "system memory was being
    /// filled with interleaved writes" condition).
    pressure_at_submit: bool,
}

struct FileMeta {
    layout: StripeLayout,
    shared: bool,
}

/// The file-system simulator.
pub struct FsSim {
    cfg: FsConfig,
    fabric: ServiceCenter,
    dlm: ServiceCenter,
    mds: MultiServiceCenter,
    osts: Vec<Ost>,
    nodes: Vec<Node>,
    files: Vec<FileMeta>,
    readahead: ReadaheadTracker,
    locks: LockMap,
    ios: FxHashMap<IoId, IoState>,
    next_io: IoId,
    rng: SimRng,
    stats: FsStats,
    /// Per-node outstanding write RPCs (for flush quiescence).
    node_wr_outstanding: Vec<u32>,
    /// Per-node flush waiters.
    node_flush_waiters: Vec<Vec<IoId>>,
    /// Streams whose current stride-run has already degraded: once the
    /// erroneous window is in effect it stays until the pattern breaks,
    /// even if memory pressure has eased (the window-size calculation,
    /// not the pressure, was the bug).
    degraded_streams: FxHashSet<u64>,
    /// Optional fault-injection hooks (see [`crate::fault`]). `None` is
    /// the common case and costs nothing: no hook calls, no RNG draws.
    fault: Option<Box<dyn FaultInjector>>,
    /// Cached [`FaultInjector::expiry`] horizon in nanoseconds: at or
    /// after this instant hook dispatch is skipped entirely (the
    /// injector guarantees every hook returns zero), so an expired
    /// time-windowed plan costs one integer compare per touch point.
    fault_expiry: u64,
    /// Recycled RPC-plan buffers: retired I/Os return their `rpcs` Vec
    /// here and `grant` reuses them, so steady state allocates no plans.
    rpc_pool: Vec<Vec<Rpc>>,
    /// Scratch buffer for stripe decomposition during `grant`.
    extent_scratch: Vec<crate::stripe::Extent>,
}

/// Where a run's time went: per-resource busy time and contention
/// counters, for the utilization breakdowns the figure binaries and
/// `analyze` print.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilizationReport {
    /// Run end used for the fractions (seconds).
    pub horizon_s: f64,
    /// Fabric busy seconds and fraction of the horizon.
    pub fabric_busy_s: f64,
    /// DLM (lock revocation) busy seconds.
    pub dlm_busy_s: f64,
    /// Total MDS busy seconds across threads.
    pub mds_busy_s: f64,
    /// Per-OST busy seconds.
    pub ost_busy_s: Vec<f64>,
    /// Per-OST stream switches (seek-ish events).
    pub ost_switches: Vec<u64>,
    /// Per-OST read/write turnarounds.
    pub ost_direction_switches: Vec<u64>,
    /// Per-OST bytes served.
    pub ost_bytes: Vec<u64>,
    /// Per-node peak dirty level (bytes).
    pub node_dirty_peak: Vec<u64>,
    /// Per-node time-averaged dirty level (bytes) over the horizon.
    pub node_dirty_avg: Vec<f64>,
}

impl UtilizationReport {
    /// Fabric utilization over the horizon.
    pub fn fabric_utilization(&self) -> f64 {
        if self.horizon_s <= 0.0 {
            return 0.0;
        }
        (self.fabric_busy_s / self.horizon_s).min(1.0)
    }

    /// Mean OST utilization over the horizon.
    pub fn mean_ost_utilization(&self) -> f64 {
        if self.horizon_s <= 0.0 || self.ost_busy_s.is_empty() {
            return 0.0;
        }
        let mean = self.ost_busy_s.iter().sum::<f64>() / self.ost_busy_s.len() as f64;
        (mean / self.horizon_s).min(1.0)
    }

    /// Imbalance across OSTs: max busy / mean busy (1 = perfectly even).
    pub fn ost_imbalance(&self) -> f64 {
        let mean = self.ost_busy_s.iter().sum::<f64>() / self.ost_busy_s.len().max(1) as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        self.ost_busy_s.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Output buffers threaded through submit/handle: events to schedule and
/// notifications to deliver.
pub struct FsOut {
    /// Events to schedule at the given instants.
    pub sched: Vec<(SimTime, FsEvent)>,
    /// Call-return notifications.
    pub notify: Vec<FsNotify>,
}

impl FsOut {
    /// Empty buffers.
    pub fn new() -> Self {
        FsOut {
            sched: Vec::new(),
            notify: Vec::new(),
        }
    }

    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.sched.clear();
        self.notify.clear();
    }
}

impl Default for FsOut {
    fn default() -> Self {
        Self::new()
    }
}

/// Stretch a buffered write's acceptance interval by the call's
/// grant-pacing factor: completion moves from `done` to
/// `granted + (done − granted)·stretch` (pure client-side wait; consumes
/// no shared resources).
fn stretch_accept(granted: SimTime, done: SimTime, stretch: f64) -> SimTime {
    granted + done.since(granted).scale(stretch)
}

impl FsSim {
    /// A simulator for `n_nodes` compute nodes under `cfg`, seeded with
    /// `seed` (stream-split from the run's master seed).
    pub fn new(cfg: FsConfig, n_nodes: u32, seed: u64) -> Self {
        cfg.validate().expect("invalid fs config");
        let osts = (0..cfg.n_osts).map(|_| Ost::new()).collect();
        let nodes = (0..n_nodes)
            .map(|_| Node::new(cfg.tasks_per_node))
            .collect();
        let mds = MultiServiceCenter::new(cfg.mds_threads);
        FsSim {
            fabric: ServiceCenter::new(),
            dlm: ServiceCenter::new(),
            mds,
            osts,
            nodes,
            files: Vec::new(),
            readahead: ReadaheadTracker::new(),
            locks: LockMap::new(),
            ios: FxHashMap::default(),
            next_io: 1,
            rng: SimRng::stream(seed, 0xF5),
            stats: FsStats::default(),
            node_wr_outstanding: vec![0; n_nodes as usize],
            node_flush_waiters: vec![Vec::new(); n_nodes as usize],
            degraded_streams: FxHashSet::default(),
            fault: None,
            fault_expiry: u64::MAX,
            rpc_pool: Vec::new(),
            extent_scratch: Vec::new(),
            cfg,
        }
    }

    /// Install fault-injection hooks for this run. The injector must own
    /// its own RNG stream (it may not draw from the simulator's), so a
    /// faulted run perturbs only what the plan says it perturbs.
    pub fn set_fault(&mut self, fault: Box<dyn FaultInjector>) {
        self.fault_expiry = fault.expiry().nanos();
        self.fault = Some(fault);
    }

    /// Register a file; `shared` enables extent-lock semantics.
    /// Files start on staggered OSTs to spread load.
    pub fn register_file(&mut self, shared: bool) -> FileId {
        let id = self.files.len() as FileId;
        let layout = StripeLayout::new(
            self.cfg.stripe_bytes,
            self.cfg.n_osts,
            (id as usize * 7) % self.cfg.n_osts,
        );
        self.files.push(FileMeta { layout, shared });
        id
    }

    /// Configuration in use.
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &FsStats {
        &self.stats
    }

    /// Lock-table statistics.
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Where the run's time went, measured against `end`.
    pub fn utilization(&self, end: SimTime) -> UtilizationReport {
        UtilizationReport {
            horizon_s: end.as_secs_f64(),
            fabric_busy_s: self.fabric.busy_time().as_secs_f64(),
            dlm_busy_s: self.dlm.busy_time().as_secs_f64(),
            mds_busy_s: self.mds.busy_time().as_secs_f64(),
            ost_busy_s: self
                .osts
                .iter()
                .map(|o| o.busy_time().as_secs_f64())
                .collect(),
            ost_switches: self.osts.iter().map(|o| o.switches()).collect(),
            ost_direction_switches: self.osts.iter().map(|o| o.direction_switches()).collect(),
            ost_bytes: self.osts.iter().map(|o| o.bytes()).collect(),
            node_dirty_peak: self.nodes.iter().map(|n| n.dirty_peak).collect(),
            node_dirty_avg: self
                .nodes
                .iter()
                .map(|n| n.dirty_over_time.average(end))
                .collect(),
        }
    }

    /// Node accessor (diagnostics and tests).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// OST accessor (diagnostics and tests).
    pub fn ost(&self, idx: usize) -> &Ost {
        &self.osts[idx]
    }

    /// Resample every node's service discipline — call at each barrier
    /// (synchronous phase boundary), mirroring the run-to-run randomness
    /// of which tasks the client favours.
    pub fn new_phase(&mut self) {
        let weights = self.cfg.discipline_weights;
        let tasks = self.cfg.tasks_per_node;
        for n in &mut self.nodes {
            n.resample(&mut self.rng, &weights, tasks);
        }
    }

    /// Submit an I/O request at `now`. Completion is notified via
    /// [`FsNotify::Done`] in `out` (possibly after events run).
    pub fn submit(&mut self, now: SimTime, req: IoReq, out: &mut FsOut) -> IoId {
        let io = self.next_io;
        self.next_io += 1;
        debug_assert!((req.node as usize) < self.nodes.len(), "unknown node");
        debug_assert!(
            (req.file as usize) < self.files.len()
                || !matches!(req.kind, IoKind::Read | IoKind::Write | IoKind::MetaWrite),
            "unknown file"
        );

        match req.kind {
            IoKind::Open | IoKind::Close | IoKind::MetaRead => {
                self.stats.meta_ops += 1;
                if matches!(req.kind, IoKind::Close) {
                    self.readahead.close_stream(req.stream);
                }
                let lat = self
                    .rng
                    .lognormal(self.cfg.mds_latency_median, self.cfg.meta_sigma);
                let mut demand = SimSpan::from_secs_f64(lat);
                if now.nanos() < self.fault_expiry {
                    if let Some(f) = self.fault.as_deref_mut() {
                        demand += f.mds_extra(now, demand);
                    }
                }
                let done = self.mds.submit(now, demand);
                self.ios.insert(io, self.meta_state(io, &req, now));
                out.sched.push((done, FsEvent::MetaDone { io }));
            }
            IoKind::MetaWrite => {
                self.stats.meta_ops += 1;
                assert!(req.len > 0, "zero-length metadata write");
                let lat = self
                    .rng
                    .lognormal(self.cfg.meta_sync_median, self.cfg.meta_sigma);
                let mut demand = SimSpan::from_secs_f64(lat);
                if now.nanos() < self.fault_expiry {
                    if let Some(f) = self.fault.as_deref_mut() {
                        demand += f.mds_extra(now, demand);
                    }
                }
                let t1 = self.mds.submit(now, demand);
                // The metadata bytes land on the OST of their offset.
                let layout = self.files[req.file as usize].layout;
                let ost = layout.ost_of_stripe(layout.stripe_of(req.offset));
                let done = self.osts[ost].submit(
                    t1,
                    req.len,
                    req.stream,
                    false,
                    1.0,
                    SimSpan::ZERO,
                    &self.cfg,
                    &mut self.rng,
                );
                self.ios.insert(io, self.meta_state(io, &req, now));
                out.sched.push((done, FsEvent::MetaDone { io }));
            }
            IoKind::Flush => {
                self.stats.flushes += 1;
                let n = req.node as usize;
                self.ios.insert(io, self.meta_state(io, &req, now));
                if self.node_quiescent(req.node) {
                    out.sched.push((now, FsEvent::MetaDone { io }));
                } else {
                    self.node_flush_waiters[n].push(io);
                }
            }
            IoKind::Read | IoKind::Write => {
                assert!(req.len > 0, "zero-length data I/O");
                // Classify reads in program order at submit time.
                let read_mode = if req.kind == IoKind::Read {
                    let mode = self.readahead.observe_read(
                        &self.cfg.readahead,
                        req.stream,
                        req.offset,
                        req.len,
                    );
                    if mode == ReadMode::Normal {
                        // The stride-run broke: the erroneous window is gone.
                        self.degraded_streams.remove(&req.stream);
                    }
                    mode
                } else {
                    ReadMode::Normal
                };
                let noise = self.rng.lognormal(1.0, self.cfg.call_noise_sigma);
                let pressure_at_submit = self.nodes[req.node as usize].under_pressure(
                    now,
                    self.cfg.cache_bytes,
                    self.cfg.pressure_frac,
                );
                let stretch = self.rng.lognormal(1.0, self.cfg.grant_noise_sigma).max(1.0);
                let st = IoState {
                    rank: req.rank,
                    node: req.node,
                    file: req.file,
                    stream: req.stream,
                    kind: req.kind,
                    offset: req.offset,
                    len: req.len,
                    rpcs: Vec::new(),
                    next_rpc: 0,
                    inflight: 0,
                    done_rpcs: 0,
                    window: 1,
                    accepted: 0,
                    noise,
                    degraded: false,
                    sync: false,
                    returned: false,
                    ingest_done: SimTime::ZERO,
                    granted_at: SimTime::ZERO,
                    stretch,
                    read_mode,
                    strided_severity: 0,
                    pressure_at_submit,
                };
                self.ios.insert(io, st);
                let granted = self.nodes[req.node as usize].acquire(io);
                if granted {
                    self.grant(now, io, out);
                }
            }
        }
        io
    }

    /// Handle one of this model's events.
    pub fn handle(&mut self, now: SimTime, ev: FsEvent, out: &mut FsOut) {
        match ev {
            FsEvent::MetaDone { io } => {
                let st = self.retire(io);
                out.notify.push(FsNotify::Done { io, rank: st.rank });
            }
            FsEvent::Accepted { io } => {
                let (rank, node, all_done) = {
                    let st = self.ios.get_mut(&io).expect("accepted io state");
                    st.returned = true;
                    (st.rank, st.node, st.done_rpcs as usize == st.rpcs.len())
                };
                out.notify.push(FsNotify::Done { io, rank });
                self.release_token(now, node, out);
                if all_done {
                    self.retire(io);
                }
            }
            FsEvent::RpcDone { io, idx } => self.rpc_done(now, io, idx, out),
        }
    }

    // ---- internal machinery -------------------------------------------

    /// Remove a finished I/O, recycling its RPC-plan buffer for reuse by
    /// a later `grant`.
    fn retire(&mut self, io: IoId) -> IoState {
        let mut st = self.ios.remove(&io).expect("retire io state");
        let mut rpcs = std::mem::take(&mut st.rpcs);
        rpcs.clear();
        self.rpc_pool.push(rpcs);
        st
    }

    fn meta_state(&self, _io: IoId, req: &IoReq, _now: SimTime) -> IoState {
        IoState {
            rank: req.rank,
            node: req.node,
            file: req.file,
            stream: req.stream,
            kind: req.kind,
            offset: req.offset,
            len: req.len,
            rpcs: Vec::new(),
            next_rpc: 0,
            inflight: 0,
            done_rpcs: 0,
            window: 1,
            accepted: 0,
            noise: 1.0,
            degraded: false,
            sync: false,
            returned: false,
            ingest_done: SimTime::ZERO,
            granted_at: SimTime::ZERO,
            stretch: 1.0,
            read_mode: ReadMode::Normal,
            strided_severity: 0,
            pressure_at_submit: false,
        }
    }

    fn node_quiescent(&self, node: NodeId) -> bool {
        let n = node as usize;
        self.node_wr_outstanding[n] == 0
            && self.nodes[n].dirty == 0
            && self.nodes[n].blocked.is_empty()
    }

    /// Token granted: build the RPC plan and start the pipeline.
    fn grant(&mut self, now: SimTime, io: IoId, out: &mut FsOut) {
        // Build the plan first (immutable config reads + rng).
        let (kind, node_id, file, offset, len, read_mode, pressure) = {
            let st = self.ios.get(&io).expect("grant io state");
            (
                st.kind,
                st.node,
                st.file,
                st.offset,
                st.len,
                st.read_mode,
                st.pressure_at_submit,
            )
        };
        let layout = self.files[file as usize].layout;
        let shared = self.files[file as usize].shared;
        let window_default = self.nodes[node_id as usize].io_window(self.cfg.node_window);

        let mut rpcs = self.rpc_pool.pop().unwrap_or_default();
        debug_assert!(rpcs.is_empty());
        let mut sync = false;
        let degraded = false;
        // Decompose into a recycled scratch buffer (taken out of `self`
        // so the loop below can still borrow the lock table and RNG).
        let mut extents = std::mem::take(&mut self.extent_scratch);
        layout.extents_into(offset, len, &mut extents);
        match kind {
            IoKind::Write => {
                // A small shared-file write dominated by partial stripes
                // cannot be buffered: the client must perform the
                // lock-covered read-modify-write edges synchronously. Large
                // writes amortize their two edges and stay cached.
                let partials = extents
                    .iter()
                    .filter(|e| !e.is_full_stripe(self.cfg.stripe_bytes))
                    .count();
                if shared && partials * 4 > extents.len() {
                    sync = true;
                }
                for &ex in &extents {
                    let full = ex.is_full_stripe(self.cfg.stripe_bytes);
                    let mut ost_extra = SimSpan::ZERO;
                    let mut revoke = false;
                    if !full {
                        // Sub-stripe write: RAID read-modify-write penalty.
                        ost_extra += SimSpan::from_secs_f64(
                            self.rng.lognormal(self.cfg.raid_partial_median, 0.3),
                        );
                    }
                    if shared {
                        match self.locks.write_stripe(file, ex.stripe, node_id, full) {
                            LockOutcome::Conflict { rmw } => {
                                revoke = true;
                                sync = true;
                                if rmw {
                                    // Read the stripe back before writing.
                                    ost_extra +=
                                        SimSpan::for_bytes(self.cfg.stripe_bytes, self.cfg.ost_bw);
                                }
                            }
                            LockOutcome::Granted | LockOutcome::Owned => {}
                        }
                    }
                    rpcs.push(Rpc {
                        offset: ex.offset,
                        len: ex.len as u32,
                        ost_extra,
                        local_extra: SimSpan::ZERO,
                        revoke,
                    });
                }
                self.stats.bytes_written += len;
                if sync {
                    self.stats.sync_writes += 1;
                }
            }
            IoKind::Read => {
                for &ex in &extents {
                    rpcs.push(Rpc {
                        offset: ex.offset,
                        len: ex.len as u32,
                        ost_extra: SimSpan::ZERO,
                        local_extra: SimSpan::ZERO,
                        revoke: false,
                    });
                }
                self.stats.bytes_read += len;
            }
            _ => unreachable!("grant is only for data I/O"),
        }
        self.extent_scratch = extents;

        let severity = match read_mode {
            ReadMode::Strided { severity } if kind == IoKind::Read => severity,
            _ => 0,
        };
        {
            let st = self.ios.get_mut(&io).expect("grant io state");
            st.granted_at = now;
            st.rpcs = rpcs;
            st.sync = sync;
            st.degraded = degraded;
            st.strided_severity = severity;
            st.window = window_default;
        }
        // A strided read degrades from the first page if the node is
        // already pressured or this stream's stride-run degraded before;
        // otherwise it may still degrade mid-flight (see `pump`) once
        // interleaved writes fill the cache.
        if severity > 0 {
            let sticky = {
                let st = self.ios.get(&io).expect("grant io state");
                self.degraded_streams.contains(&st.stream)
            };
            if pressure || sticky {
                self.degrade_read(io);
            }
        }

        if kind == IoKind::Write {
            if sync {
                // Synchronous path: no cache acceptance; completion at the
                // last RPC.
                let st = self.ios.get_mut(&io).expect("io state");
                st.accepted = st.len;
            } else {
                let cache = self.cfg.cache_bytes;
                let free = self.nodes[node_id as usize].free_cache(cache);
                let (accepted_all, len_taken) = {
                    let st = self.ios.get_mut(&io).expect("io state");
                    let take = free.min(st.len);
                    st.accepted = take;
                    (take == st.len, take)
                };
                self.nodes[node_id as usize].add_dirty(now, len_taken);
                // Reserve the node's shared ingest engine for the memcpy
                // regardless of cache state; the call cannot return before
                // the copy-in finishes.
                let ingest_done = self.nodes[node_id as usize].ingest.submit(
                    now,
                    SimSpan::for_bytes(self.ios[&io].len, self.cfg.ingest_bw),
                );
                self.ios.get_mut(&io).expect("io state").ingest_done = ingest_done;
                if accepted_all {
                    let st = &self.ios[&io];
                    let ret = stretch_accept(st.granted_at, ingest_done.max(now), st.stretch);
                    out.sched.push((ret, FsEvent::Accepted { io }));
                } else {
                    self.nodes[node_id as usize].blocked.push_back(io);
                }
            }
        }
        self.pump(now, io, out);
    }

    /// Degrade the un-submitted remainder of a strided read: the
    /// erroneous read-ahead window is fetched as serialized page-sized
    /// RPCs whose per-page cost scales with the window severity.
    fn degrade_read(&mut self, io: IoId) {
        let severity = {
            let st = self.ios.get(&io).expect("degrade io state");
            if st.degraded || st.strided_severity == 0 {
                return;
            }
            st.strided_severity
        };
        let page_cost = self.rng.lognormal(
            self.cfg.readahead.page_cost_median * severity as f64,
            self.cfg.readahead.page_cost_sigma,
        );
        let page_bytes = self.cfg.readahead.page_bytes;
        let st = self.ios.get_mut(&io).expect("degrade io state");
        st.degraded = true;
        st.window = 1;
        let from = st.next_rpc as usize;
        for rpc in &mut st.rpcs[from..] {
            let pages = (rpc.len as u64).div_ceil(page_bytes);
            rpc.local_extra = SimSpan::from_secs_f64(pages as f64 * page_cost);
        }
        self.degraded_streams.insert(st.stream);
        self.stats.degraded_reads += 1;
    }

    /// Submit RPCs of `io` up to its window (and, for buffered writes,
    /// only for bytes already accepted into the cache).
    fn pump(&mut self, now: SimTime, io: IoId, out: &mut FsOut) {
        // Mid-flight degradation: a strided read whose node has since come
        // under memory pressure collapses to page-sized fetches for its
        // remaining extent.
        if let Some(st) = self.ios.get(&io) {
            if st.kind == IoKind::Read && !st.degraded && st.strided_severity > 0 {
                let node = st.node as usize;
                if self.nodes[node].under_pressure(
                    now,
                    self.cfg.cache_bytes,
                    self.cfg.pressure_frac,
                ) {
                    self.degrade_read(io);
                }
            }
        }
        // Split the borrow so each iteration pays a single map lookup:
        // the I/O state stays mutably borrowed from `ios` while the
        // service centers, RNG and counters are reached through their own
        // disjoint fields.
        let FsSim {
            ios,
            nodes,
            files,
            fabric,
            dlm,
            osts,
            rng,
            cfg,
            fault,
            fault_expiry,
            stats,
            node_wr_outstanding,
            ..
        } = self;
        let fault_expiry = *fault_expiry;
        loop {
            let Some(st) = ios.get_mut(&io) else { return };
            if st.inflight >= st.window || (st.next_rpc as usize) >= st.rpcs.len() {
                return;
            }
            let idx = st.next_rpc as usize;
            let rpc = st.rpcs[idx];
            // Buffered writes send only accepted bytes.
            if st.kind == IoKind::Write
                && !st.sync
                && rpc.offset + rpc.len as u64 > st.offset + st.accepted
            {
                return;
            }
            let (node_id, stream, noise, is_write) =
                (st.node, st.stream, st.noise, st.kind == IoKind::Write);
            let layout = files[st.file as usize].layout;
            st.next_rpc += 1;
            st.inflight += 1;

            let bytes = rpc.len as u64;
            let ost = layout.ost_of_stripe(layout.stripe_of(rpc.offset));
            // Fault hooks (inert when no injector is installed): extra
            // per-stage demand plus a client-side drop/retry delay before
            // the RPC is (re)transmitted.
            let (drop_delay, nic_x, fab_x, ost_x) = match fault.as_deref_mut() {
                Some(f) if now.nanos() < fault_expiry => (
                    f.rpc_drop_delay(now),
                    f.nic_extra(now, node_id, SimSpan::for_bytes(bytes, cfg.nic_bw)),
                    f.fabric_extra(now, SimSpan::for_bytes(bytes, cfg.fabric_bw)),
                    f.ost_extra(now, ost, SimSpan::for_bytes(bytes, cfg.ost_bw), !is_write),
                ),
                _ => (SimSpan::ZERO, SimSpan::ZERO, SimSpan::ZERO, SimSpan::ZERO),
            };
            // Lock revocation serializes through the DLM before the data
            // moves.
            let start = if rpc.revoke {
                let lat = rng.lognormal(cfg.lock_revoke_latency, 0.3);
                dlm.submit(now, SimSpan::from_secs_f64(lat))
            } else {
                now
            };
            let t_nic = nodes[node_id as usize]
                .nic
                .submit(start, SimSpan::for_bytes(bytes, cfg.nic_bw));
            let t_fab = fabric.submit(t_nic, SimSpan::for_bytes(bytes, cfg.fabric_bw) + fab_x);
            let t_ost = osts[ost].submit(
                t_fab,
                bytes,
                stream,
                !is_write,
                noise,
                rpc.ost_extra + ost_x,
                cfg,
                rng,
            );
            // Drop/retry waits and the straggler-NIC excess are
            // client-visible latency only: with eager completion-time
            // reservations, charging them to the shared pipeline would
            // let one sick client stall the global fabric FIFO behind
            // its future start times.
            let done = t_ost + rpc.local_extra + drop_delay + nic_x;
            stats.data_rpcs += 1;
            if is_write {
                node_wr_outstanding[node_id as usize] += 1;
            }
            out.sched.push((
                done,
                FsEvent::RpcDone {
                    io,
                    idx: idx as u32,
                },
            ));
        }
    }

    fn rpc_done(&mut self, now: SimTime, io: IoId, idx: u32, out: &mut FsOut) {
        let (kind, node_id, rpc_len, sync, returned) = {
            let st = self.ios.get_mut(&io).expect("rpc io state");
            st.inflight -= 1;
            st.done_rpcs += 1;
            (
                st.kind,
                st.node,
                st.rpcs[idx as usize].len as u64,
                st.sync,
                st.returned,
            )
        };

        if kind == IoKind::Write {
            let n = node_id as usize;
            self.node_wr_outstanding[n] -= 1;
            if !sync {
                self.nodes[n].drain_dirty(now, rpc_len);
                self.wake_blocked(now, node_id, out);
            }
        }

        // Keep this I/O's pipeline full.
        self.pump(now, io, out);

        let (all_done, rank) = {
            let st = self.ios.get(&io).expect("rpc io state");
            (
                st.done_rpcs as usize == st.rpcs.len() && st.inflight == 0,
                st.rank,
            )
        };
        if all_done {
            match kind {
                IoKind::Read => {
                    out.notify.push(FsNotify::Done { io, rank });
                    self.retire(io);
                    self.release_token(now, node_id, out);
                }
                IoKind::Write => {
                    if sync {
                        // Sync write returns at last RPC.
                        out.notify.push(FsNotify::Done { io, rank });
                        self.retire(io);
                        self.release_token(now, node_id, out);
                    } else if returned {
                        // Call already returned at acceptance; write-back done.
                        self.retire(io);
                    }
                    // else: acceptance event will clean up.
                }
                _ => unreachable!(),
            }
        }

        // Flush quiescence check (after drains and pumps above).
        if kind == IoKind::Write && self.node_quiescent(node_id) {
            let waiters = std::mem::take(&mut self.node_flush_waiters[node_id as usize]);
            for fio in waiters {
                out.sched.push((now, FsEvent::MetaDone { io: fio }));
            }
        }
    }

    /// Grant freed cache space to blocked writers, round-robin in
    /// RPC-sized chunks so concurrent writers make even progress.
    fn wake_blocked(&mut self, now: SimTime, node_id: NodeId, out: &mut FsOut) {
        let cache = self.cfg.cache_bytes;
        loop {
            let n = node_id as usize;
            let free = self.nodes[n].free_cache(cache);
            if free == 0 {
                return;
            }
            let Some(&front) = self.nodes[n].blocked.front() else {
                return;
            };
            let (take, fully, ret) = {
                let st = self.ios.get_mut(&front).expect("blocked io state");
                let take = free.min(st.len - st.accepted);
                st.accepted += take;
                let ret = stretch_accept(st.granted_at, st.ingest_done.max(now), st.stretch);
                (take, st.accepted == st.len, ret)
            };
            self.nodes[n].add_dirty(now, take);
            if self.nodes[n].under_pressure(now, self.cfg.cache_bytes, self.cfg.pressure_frac) {
                self.nodes[n].note_pressure(now, self.cfg.pressure_hold);
            }
            if fully {
                self.nodes[n].blocked.pop_front();
                out.sched.push((ret, FsEvent::Accepted { io: front }));
                self.pump(now, front, out);
                // Loop: maybe more free space for the next blocked writer.
            } else {
                // Cache exhausted: rotate for round-robin fairness.
                self.pump(now, front, out);
                if let Some(x) = self.nodes[n].blocked.pop_front() {
                    self.nodes[n].blocked.push_back(x);
                }
                return;
            }
        }
    }

    fn release_token(&mut self, now: SimTime, node_id: NodeId, out: &mut FsOut) {
        if let Some(next) = self.nodes[node_id as usize].release(&mut self.rng) {
            self.grant(now, next, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_des::{Scheduler, Simulator, World};

    /// Minimal world that drives FsSim and records notifications.
    struct FsWorld {
        fs: FsSim,
        done: Vec<(SimTime, IoId, u32)>,
    }

    impl World for FsWorld {
        type Event = FsEvent;
        fn handle(&mut self, now: SimTime, ev: FsEvent, sched: &mut Scheduler<FsEvent>) {
            let mut out = FsOut::new();
            self.fs.handle(now, ev, &mut out);
            for (t, e) in out.sched {
                sched.at(t, e);
            }
            for FsNotify::Done { io, rank } in out.notify {
                self.done.push((now, io, rank));
            }
        }
    }

    fn world(cfg: FsConfig, nodes: u32) -> Simulator<FsWorld> {
        Simulator::new(FsWorld {
            fs: FsSim::new(cfg, nodes, 42),
            done: Vec::new(),
        })
    }

    fn submit(sim: &mut Simulator<FsWorld>, now: SimTime, req: IoReq) -> IoId {
        let mut out = FsOut::new();
        let io = sim.world.fs.submit(now, req, &mut out);
        for (t, e) in out.sched {
            sim.schedule(t, e);
        }
        for FsNotify::Done { io, rank } in out.notify {
            sim.world.done.push((now, io, rank));
        }
        io
    }

    fn req(rank: u32, node: NodeId, file: FileId, kind: IoKind, offset: u64, len: u64) -> IoReq {
        IoReq {
            rank,
            node,
            file,
            stream: rank as u64,
            kind,
            offset,
            len,
        }
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn single_write_completes_with_plausible_time() {
        let mut sim = world(FsConfig::tiny_test(), 1);
        let f = sim.world.fs.register_file(false);
        // 64 MB write, cache is 16 MB → drain-bound.
        let io = submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::Write, 0, 64 * MB),
        );
        sim.run();
        assert_eq!(sim.world.done.len(), 1);
        let (t, done_io, rank) = sim.world.done[0];
        assert_eq!(done_io, io);
        assert_eq!(rank, 0);
        // Fabric 400 MB/s: (64-16) MB must drain before acceptance: ≥ 0.12 s
        // and well under 10 s.
        let secs = t.as_secs_f64();
        assert!(secs > 0.1 && secs < 10.0, "{secs}");
        assert_eq!(sim.world.fs.stats().bytes_written, 64 * MB);
    }

    #[test]
    fn small_write_fits_cache_and_returns_at_ingest_speed() {
        let mut sim = world(FsConfig::tiny_test(), 1);
        let f = sim.world.fs.register_file(false);
        submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::Write, 0, 4 * MB),
        );
        sim.run();
        let (t, _, _) = sim.world.done[0];
        // 4 MB at 400 MB/s ingest ≈ 0.01 s, far faster than 4 MB at
        // fabric 400 MB/s + overheads would be with drain semantics.
        let secs = t.as_secs_f64();
        assert!(secs < 0.05, "{secs}");
        // Write-back still happened.
        sim.run();
        assert_eq!(sim.world.fs.node(0).dirty, 0);
    }

    #[test]
    fn read_completes_at_last_rpc() {
        let mut sim = world(FsConfig::tiny_test(), 1);
        let f = sim.world.fs.register_file(false);
        submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::Read, 0, 8 * MB),
        );
        sim.run();
        assert_eq!(sim.world.done.len(), 1);
        let (t, _, _) = sim.world.done[0];
        // 8 MB at ~100-200 MB/s effective — tens of ms.
        let secs = t.as_secs_f64();
        assert!(secs > 0.02 && secs < 2.0, "{secs}");
        assert_eq!(sim.world.fs.stats().bytes_read, 8 * MB);
    }

    #[test]
    fn flush_waits_for_writeback() {
        let mut sim = world(FsConfig::tiny_test(), 1);
        let f = sim.world.fs.register_file(false);
        submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::Write, 0, 4 * MB),
        );
        // Run until the write call returns (fast), then flush.
        sim.run_until(SimTime::from_secs_f64(0.02));
        assert!(sim.world.fs.node(0).dirty > 0, "write-back still pending");
        let now = sim.now();
        submit(&mut sim, now, req(0, 0, f, IoKind::Flush, 0, 0));
        sim.run();
        // Flush is the second completion and comes after drain.
        assert_eq!(sim.world.done.len(), 2);
        assert_eq!(sim.world.fs.node(0).dirty, 0);
        let flush_t = sim.world.done[1].0;
        assert!(flush_t > SimTime::from_secs_f64(0.02));
    }

    #[test]
    fn flush_on_quiescent_node_is_immediate() {
        let mut sim = world(FsConfig::tiny_test(), 1);
        let f = sim.world.fs.register_file(false);
        submit(&mut sim, SimTime::ZERO, req(0, 0, f, IoKind::Flush, 0, 0));
        sim.run();
        assert_eq!(sim.world.done.len(), 1);
        assert_eq!(sim.world.done[0].0, SimTime::ZERO);
    }

    #[test]
    fn metadata_ops_complete_and_count() {
        let mut sim = world(FsConfig::tiny_test(), 1);
        let f = sim.world.fs.register_file(true);
        submit(&mut sim, SimTime::ZERO, req(0, 0, f, IoKind::Open, 0, 0));
        submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::MetaRead, 0, 2048),
        );
        submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::MetaWrite, 0, 2048),
        );
        submit(&mut sim, SimTime::ZERO, req(0, 0, f, IoKind::Close, 0, 0));
        sim.run();
        assert_eq!(sim.world.done.len(), 4);
        assert_eq!(sim.world.fs.stats().meta_ops, 4);
    }

    #[test]
    fn shared_unaligned_writes_conflict_and_go_sync() {
        let mut cfg = FsConfig::tiny_test();
        cfg.cache_bytes = 1 << 30; // cache never the issue
        let mut sim = world(cfg, 2);
        let f = sim.world.fs.register_file(true);
        // Node 0 writes [0, 1.5MB); node 1 writes [1.5MB, 3MB): stripe 1 shared.
        submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::Write, 0, 3 * MB / 2),
        );
        sim.run();
        let now = sim.now();
        submit(
            &mut sim,
            now,
            req(4, 1, f, IoKind::Write, 3 * MB / 2, 3 * MB / 2),
        );
        sim.run();
        let locks = sim.world.fs.lock_stats();
        assert!(locks.contended >= 1, "boundary stripe must conflict");
        assert!(locks.revoked >= 1, "partial boundary stripe needs RMW");
        // Both writes are small unaligned shared-file writes: sync.
        assert_eq!(sim.world.fs.stats().sync_writes, 2);
    }

    #[test]
    fn aligned_shared_writes_do_not_conflict() {
        let mut sim = world(FsConfig::tiny_test(), 2);
        let f = sim.world.fs.register_file(true);
        submit(
            &mut sim,
            SimTime::ZERO,
            req(0, 0, f, IoKind::Write, 0, 2 * MB),
        );
        submit(
            &mut sim,
            SimTime::ZERO,
            req(4, 1, f, IoKind::Write, 2 * MB, 2 * MB),
        );
        sim.run();
        assert_eq!(sim.world.fs.lock_stats().contended, 0);
        assert_eq!(sim.world.fs.stats().sync_writes, 0);
    }

    #[test]
    fn strided_reads_under_pressure_degrade() {
        let mut cfg = FsConfig::tiny_test();
        cfg.cache_bytes = 8 * MB;
        cfg.pressure_frac = 0.25;
        let mut sim = world(cfg, 1);
        let f = sim.world.fs.register_file(false);
        // Keep the node dirty: a big buffered write that can't drain fast.
        submit(
            &mut sim,
            SimTime::ZERO,
            req(1, 0, f, IoKind::Write, 1000 * MB, 64 * MB),
        );
        // Strided read sequence on another stream (2 MB reads, 1 MB gaps),
        // issued while the write is still draining so the node is under
        // pressure when the strided mode engages.
        let f2 = sim.world.fs.register_file(false);
        for i in 0..6u64 {
            let r = IoReq {
                rank: 0,
                node: 0,
                file: f2,
                stream: 99,
                kind: IoKind::Read,
                offset: i * 3 * MB,
                len: 2 * MB,
            };
            submit(&mut sim, SimTime::ZERO, r);
        }
        sim.run();
        assert!(
            sim.world.fs.stats().degraded_reads >= 1,
            "stride + pressure must degrade ({} degraded)",
            sim.world.fs.stats().degraded_reads
        );
    }

    #[test]
    fn patched_config_never_degrades() {
        let mut cfg = FsConfig::tiny_test();
        cfg.readahead.strided_detection = false;
        cfg.cache_bytes = 8 * MB;
        cfg.pressure_frac = 0.25;
        let mut sim = world(cfg, 1);
        let f = sim.world.fs.register_file(false);
        submit(
            &mut sim,
            SimTime::ZERO,
            req(1, 0, f, IoKind::Write, 1000 * MB, 64 * MB),
        );
        let f2 = sim.world.fs.register_file(false);
        for i in 0..6u64 {
            let r = IoReq {
                rank: 0,
                node: 0,
                file: f2,
                stream: 99,
                kind: IoKind::Read,
                offset: i * 3 * MB,
                len: 2 * MB,
            };
            let now = sim.now();
            submit(&mut sim, now, r);
            sim.run();
        }
        assert_eq!(sim.world.fs.stats().degraded_reads, 0);
    }

    #[test]
    fn exclusive_discipline_staggers_completions() {
        let mut cfg = FsConfig::tiny_test();
        cfg.discipline_weights = [1.0, 0.0, 0.0]; // always exclusive
        cfg.cache_bytes = MB; // force drain-bound
        cfg.call_noise_sigma = 1e-6;
        cfg.ost_overhead_sigma = 1e-6;
        let mut sim = world(cfg, 1);
        sim.world.fs.new_phase();
        let f = sim.world.fs.register_file(false);
        for rank in 0..4u32 {
            submit(
                &mut sim,
                SimTime::ZERO,
                req(rank, 0, f, IoKind::Write, rank as u64 * 64 * MB, 32 * MB),
            );
        }
        sim.run();
        assert_eq!(sim.world.done.len(), 4);
        let mut times: Vec<f64> = sim.world.done.iter().map(|d| d.0.as_secs_f64()).collect();
        times.sort_by(f64::total_cmp);
        // Serialized: roughly arithmetic progression T, 2T, 3T, 4T —
        // the 4th should be ≈4× the 1st (tolerance for cache head start).
        let ratio = times[3] / times[0];
        assert!(ratio > 2.5, "expected staggering, got {times:?}");
    }

    #[test]
    fn fair_discipline_finishes_together() {
        let mut cfg = FsConfig::tiny_test();
        cfg.discipline_weights = [0.0, 0.0, 1.0];
        cfg.cache_bytes = MB;
        cfg.call_noise_sigma = 1e-6;
        cfg.ost_overhead_sigma = 1e-6;
        let mut sim = world(cfg, 1);
        sim.world.fs.new_phase();
        let f = sim.world.fs.register_file(false);
        for rank in 0..4u32 {
            submit(
                &mut sim,
                SimTime::ZERO,
                req(rank, 0, f, IoKind::Write, rank as u64 * 64 * MB, 32 * MB),
            );
        }
        sim.run();
        let mut times: Vec<f64> = sim.world.done.iter().map(|d| d.0.as_secs_f64()).collect();
        times.sort_by(f64::total_cmp);
        let spread = (times[3] - times[0]) / times[3];
        assert!(
            spread < 0.25,
            "fair sharing should finish together: {times:?}"
        );
    }

    #[test]
    fn utilization_breaks_down_the_run() {
        let mut sim = world(FsConfig::tiny_test(), 2);
        let f = sim.world.fs.register_file(false);
        for rank in 0..8u32 {
            submit(
                &mut sim,
                SimTime::ZERO,
                req(
                    rank,
                    rank % 2,
                    f,
                    IoKind::Write,
                    rank as u64 * 64 * MB,
                    8 * MB,
                ),
            );
        }
        let end = sim.run();
        let u = sim.world.fs.utilization(end);
        assert_eq!(u.ost_busy_s.len(), 4);
        assert_eq!(u.ost_bytes.iter().sum::<u64>(), 8 * 8 * MB);
        assert!(u.fabric_busy_s > 0.0);
        assert!(u.mean_ost_utilization() > 0.0);
        assert!(u.node_dirty_peak.iter().all(|&p| p > 0));
    }

    #[test]
    fn pressure_hold_keeps_reads_degrading_after_drain() {
        // A node crosses the dirty threshold once; the hold window keeps
        // a later strided read degraded even though dirty has drained.
        let mut cfg = FsConfig::tiny_test();
        cfg.cache_bytes = 8 * MB;
        cfg.pressure_frac = 0.25;
        cfg.pressure_hold = 1000.0; // effectively forever for this test
        let mut sim = world(cfg, 1);
        let f = sim.world.fs.register_file(false);
        // Cross the threshold, then let everything drain.
        submit(
            &mut sim,
            SimTime::ZERO,
            req(1, 0, f, IoKind::Write, 1000 * MB, 16 * MB),
        );
        sim.run();
        assert_eq!(sim.world.fs.node(0).dirty, 0, "drained");
        // Strided reads issued long after: still under held pressure.
        let f2 = sim.world.fs.register_file(false);
        let t0 = sim.now();
        for i in 0..5u64 {
            let r = IoReq {
                rank: 0,
                node: 0,
                file: f2,
                stream: 42,
                kind: IoKind::Read,
                offset: i * 3 * MB,
                len: 2 * MB,
            };
            submit(&mut sim, t0, r);
        }
        sim.run();
        assert!(
            sim.world.fs.stats().degraded_reads > 0,
            "hold window must keep the pressure verdict alive"
        );
    }

    #[test]
    fn sticky_degradation_survives_pressure_loss_until_stride_breaks() {
        let mut cfg = FsConfig::tiny_test();
        cfg.cache_bytes = 8 * MB;
        cfg.pressure_frac = 0.25;
        cfg.pressure_hold = 0.0;
        let mut sim = world(cfg, 1);
        let fw = sim.world.fs.register_file(false);
        let fr = sim.world.fs.register_file(false);
        // Build the stride while pressured (concurrent big write).
        submit(
            &mut sim,
            SimTime::ZERO,
            req(1, 0, fw, IoKind::Write, 1000 * MB, 64 * MB),
        );
        for i in 0..4u64 {
            let r = IoReq {
                rank: 0,
                node: 0,
                file: fr,
                stream: 9,
                kind: IoKind::Read,
                offset: i * 3 * MB,
                len: 2 * MB,
            };
            submit(&mut sim, SimTime::ZERO, r);
        }
        sim.run();
        let degraded_during = sim.world.fs.stats().degraded_reads;
        assert!(degraded_during > 0, "stride + pressure degrades");
        // Continue the stride with zero pressure: stickiness keeps it
        // degraded...
        let t = sim.now();
        let r = IoReq {
            rank: 0,
            node: 0,
            file: fr,
            stream: 9,
            kind: IoKind::Read,
            offset: 4 * 3 * MB,
            len: 2 * MB,
        };
        submit(&mut sim, t, r);
        sim.run();
        assert!(sim.world.fs.stats().degraded_reads > degraded_during);
        // ...until a backwards seek resets the stride-run.
        let after_sticky = sim.world.fs.stats().degraded_reads;
        let t = sim.now();
        for (off, len) in [(0u64, MB), (2 * MB, MB), (4 * MB, MB)] {
            let r = IoReq {
                rank: 0,
                node: 0,
                file: fr,
                stream: 9,
                kind: IoKind::Read,
                offset: off,
                len,
            };
            submit(&mut sim, t, r);
            sim.run();
        }
        assert_eq!(
            sim.world.fs.stats().degraded_reads,
            after_sticky,
            "reset stride on an unpressured node must not degrade"
        );
    }

    #[test]
    fn grant_stretch_never_speeds_up_acceptance() {
        // With a huge grant-noise sigma, buffered writes only get slower;
        // sync paths and totals stay conserved.
        let mut base = FsConfig::tiny_test();
        base.grant_noise_sigma = 1e-9;
        let mut noisy = FsConfig::tiny_test();
        noisy.grant_noise_sigma = 1.0;
        let run_one = |cfg: FsConfig| {
            let mut sim = world(cfg, 1);
            let f = sim.world.fs.register_file(false);
            submit(
                &mut sim,
                SimTime::ZERO,
                req(0, 0, f, IoKind::Write, 0, 64 * MB),
            );
            sim.run();
            sim.world.done[0].0.as_secs_f64()
        };
        let quiet = run_one(base);
        let loud = run_one(noisy);
        assert!(
            loud >= quiet * 0.99,
            "stretch is a pure delay: {quiet} vs {loud}"
        );
    }

    #[test]
    fn byte_conservation_across_many_ios() {
        let mut sim = world(FsConfig::tiny_test(), 2);
        let f = sim.world.fs.register_file(false);
        let mut expect_w = 0;
        let mut expect_r = 0;
        for i in 0..10u64 {
            let node = (i % 2) as u32;
            submit(
                &mut sim,
                SimTime::ZERO,
                req(i as u32, node, f, IoKind::Write, i * 100 * MB, 3 * MB),
            );
            expect_w += 3 * MB;
        }
        sim.run();
        for i in 0..10u64 {
            let node = (i % 2) as u32;
            let now = sim.now();
            submit(
                &mut sim,
                now,
                req(i as u32, node, f, IoKind::Read, i * 100 * MB, 3 * MB),
            );
            expect_r += 3 * MB;
        }
        sim.run();
        let st = sim.world.fs.stats();
        assert_eq!(st.bytes_written, expect_w);
        assert_eq!(st.bytes_read, expect_r);
        assert_eq!(sim.world.done.len(), 20);
        // OST bytes match total moved (writes drain fully; reads fetched).
        let ost_bytes: u64 = (0..4).map(|i| sim.world.fs.ost(i).bytes()).sum();
        assert_eq!(ost_bytes, expect_w + expect_r);
        assert_eq!(sim.world.fs.node(0).dirty + sim.world.fs.node(1).dirty, 0);
    }
}
