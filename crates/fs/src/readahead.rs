//! The client read-ahead engine — including the bug the paper isolated.
//!
//! Lustre's client detects access patterns per file stream. Sequential
//! streams get a read-ahead window (good). The Franklin client also
//! recognized *strided* patterns — constant positive gaps between reads —
//! "on its third appearance", and subsequent matching reads received "a
//! larger read-ahead window". MADbench's 1 MB alignment produces exactly
//! such a stride. The failure mode: during the interleaved read/write
//! phase the client's memory is full of dirty pages, and Lustre then
//! "issues one page (4 kB) reads due to a lack of system memory
//! resources" — turning a 15-second read into 30–500 seconds. The
//! deployed patch "removed strided read-ahead detection entirely".
//!
//! `StreamDetector` reproduces the detection state machine; the simulator
//! combines its verdict with the node's memory-pressure state to decide
//! whether a read executes normally or degraded (serialized page-sized
//! fetches whose per-page cost scales with the erroneous window size).

use crate::config::ReadaheadConfig;
use pio_des::FxHashMap;

/// Pattern classification of the *next* read on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// No pattern or benign sequential read-ahead: full-size RPCs.
    Normal,
    /// Strided mode engaged (bug): if the node is under memory pressure
    /// the read degrades to page-sized fetches. `severity` is the window
    /// inflation multiplier (doubles per additional matched stride).
    Strided {
        /// Window inflation factor (1, 2, 4, … up to the configured cap).
        severity: u32,
    },
}

/// Pattern classification of a write on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Appends at the stream's write cursor: dirty pages accumulate
    /// contiguously and flush back efficiently.
    Sequential,
    /// Lands anywhere else: a seek-write dirtying a new region.
    Seeked,
}

/// Per-stream access history.
#[derive(Debug, Clone, Default)]
struct StreamState {
    /// End offset of the previous read.
    last_end: Option<u64>,
    /// Gap observed between the previous two reads.
    last_gap: Option<u64>,
    /// Consecutive constant-gap repetitions observed.
    stride_matches: u32,
}

/// Per-stream write-side history, kept separate from the read state:
/// Lustre's read-ahead state machine only advances on reads, so a write
/// must never perturb stride detection.
#[derive(Debug, Clone, Default)]
struct WriteState {
    /// End offset of the previous write.
    last_end: Option<u64>,
    /// Bytes written and not yet flushed back.
    dirty: u64,
}

/// Detector over all open streams (keyed by an opaque stream id,
/// typically hash of `(rank, fd)`).
#[derive(Debug, Default)]
pub struct ReadaheadTracker {
    streams: FxHashMap<u64, StreamState>,
    writes: FxHashMap<u64, WriteState>,
    /// Unflushed written bytes across all open streams.
    dirty_bytes: u64,
    /// Total reads classified as strided (for diagnostics/stats).
    strided_classified: u64,
}

impl ReadaheadTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a read of `[offset, offset+len)` on `stream` and classify
    /// it under `cfg`. Call once per read, in program order.
    pub fn observe_read(
        &mut self,
        cfg: &ReadaheadConfig,
        stream: u64,
        offset: u64,
        len: u64,
    ) -> ReadMode {
        let st = self.streams.entry(stream).or_default();
        let mode = match (st.last_end, st.last_gap) {
            (Some(end), prev_gap) if offset >= end => {
                let gap = offset - end;
                if gap == 0 {
                    // Purely sequential: benign read-ahead; stride state resets.
                    st.last_gap = None;
                    st.stride_matches = 0;
                    ReadMode::Normal
                } else {
                    match prev_gap {
                        Some(g) if g == gap => {
                            st.stride_matches += 1;
                            // Matches counts *repetitions* of the gap; the
                            // pattern's "appearances" are matches + 1.
                            let appearances = st.stride_matches + 1;
                            if cfg.strided_detection && appearances >= cfg.stride_trigger {
                                let over = appearances - cfg.stride_trigger;
                                let severity = 1u32
                                    .checked_shl(over)
                                    .unwrap_or(cfg.max_severity)
                                    .min(cfg.max_severity);
                                self.strided_classified += 1;
                                ReadMode::Strided { severity }
                            } else {
                                ReadMode::Normal
                            }
                        }
                        _ => {
                            st.last_gap = Some(gap);
                            st.stride_matches = 0;
                            ReadMode::Normal
                        }
                    }
                }
            }
            _ => {
                // First read, or a backwards seek: reset pattern state.
                st.last_gap = None;
                st.stride_matches = 0;
                ReadMode::Normal
            }
        };
        st.last_end = Some(offset + len);
        mode
    }

    /// Observe a write of `[offset, offset+len)` on `stream`. Writes
    /// never touch the read-side stride state (Lustre's read-ahead state
    /// machine only advances on reads); they maintain a separate write
    /// cursor and a dirty-byte ledger — the memory-pressure signal the
    /// paper's failure mode hinges on ("memory full of dirty pages").
    pub fn observe_write(&mut self, stream: u64, offset: u64, len: u64) -> WriteMode {
        let st = self.writes.entry(stream).or_default();
        let mode = match st.last_end {
            // First write on the stream is trivially an append.
            Some(end) if offset != end => WriteMode::Seeked,
            _ => WriteMode::Sequential,
        };
        st.last_end = Some(offset + len);
        st.dirty += len;
        self.dirty_bytes += len;
        mode
    }

    /// Mark a stream's dirty pages as written back (fsync or write-out).
    pub fn flush_stream(&mut self, stream: u64) {
        if let Some(st) = self.writes.get_mut(&stream) {
            self.dirty_bytes -= st.dirty;
            st.dirty = 0;
        }
    }

    /// Unflushed written bytes across all open streams.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    /// Drop state for a closed stream (close implies write-back, so its
    /// dirty bytes leave the ledger).
    pub fn close_stream(&mut self, stream: u64) {
        self.streams.remove(&stream);
        if let Some(st) = self.writes.remove(&stream) {
            self.dirty_bytes -= st.dirty;
        }
    }

    /// Number of reads classified as strided so far.
    pub fn strided_classified(&self) -> u64 {
        self.strided_classified
    }

    /// Open stream count.
    pub fn streams_tracked(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(detect: bool) -> ReadaheadConfig {
        ReadaheadConfig {
            strided_detection: detect,
            stride_trigger: 3,
            max_severity: 16,
            page_bytes: 4096,
            page_cost_median: 1e-3,
            page_cost_sigma: 0.5,
        }
    }

    const MB: u64 = 1 << 20;

    /// MADbench-like pattern: 300 MB reads with a constant 1 MB gap.
    fn strided_reads(t: &mut ReadaheadTracker, c: &ReadaheadConfig, n: usize) -> Vec<ReadMode> {
        let region = 301 * MB; // 300 MB data + 1 MB alignment gap
        (0..n)
            .map(|i| t.observe_read(c, 7, i as u64 * region, 300 * MB))
            .collect()
    }

    #[test]
    fn stride_engages_on_third_appearance() {
        let c = cfg(true);
        let mut t = ReadaheadTracker::new();
        let modes = strided_reads(&mut t, &c, 8);
        // Read 1: first read. Read 2: establishes gap. Read 3: first match
        // → appearances = 2... Read 4 is the first with appearances = 3.
        assert_eq!(modes[0], ReadMode::Normal);
        assert_eq!(modes[1], ReadMode::Normal);
        assert_eq!(modes[2], ReadMode::Normal);
        assert_eq!(modes[3], ReadMode::Strided { severity: 1 });
        assert_eq!(modes[4], ReadMode::Strided { severity: 2 });
        assert_eq!(modes[5], ReadMode::Strided { severity: 4 });
        assert_eq!(modes[6], ReadMode::Strided { severity: 8 });
        assert_eq!(modes[7], ReadMode::Strided { severity: 16 });
        assert_eq!(t.strided_classified(), 5);
    }

    #[test]
    fn severity_caps() {
        let c = cfg(true);
        let mut t = ReadaheadTracker::new();
        let modes = strided_reads(&mut t, &c, 12);
        assert_eq!(modes[11], ReadMode::Strided { severity: 16 });
    }

    #[test]
    fn patch_disables_detection() {
        let c = cfg(false);
        let mut t = ReadaheadTracker::new();
        let modes = strided_reads(&mut t, &c, 8);
        assert!(modes.iter().all(|m| *m == ReadMode::Normal));
        assert_eq!(t.strided_classified(), 0);
    }

    #[test]
    fn sequential_reads_stay_normal_and_reset_stride() {
        let c = cfg(true);
        let mut t = ReadaheadTracker::new();
        // Establish a stride...
        strided_reads(&mut t, &c, 4);
        // ...then go sequential: back to normal, stride forgotten.
        let m = t.observe_read(&c, 7, 2_000 * MB, MB);
        assert_eq!(m, ReadMode::Normal);
        let m = t.observe_read(&c, 7, 2_001 * MB, MB);
        assert_eq!(m, ReadMode::Normal);
        // New stride must re-earn its three appearances.
        let m = t.observe_read(&c, 7, 2_003 * MB, MB);
        assert_eq!(m, ReadMode::Normal);
        let m = t.observe_read(&c, 7, 2_005 * MB, MB);
        assert_eq!(m, ReadMode::Normal);
    }

    #[test]
    fn irregular_gaps_never_trigger() {
        let c = cfg(true);
        let mut t = ReadaheadTracker::new();
        let mut off = 0u64;
        for gap in [MB, 2 * MB, MB, 3 * MB, 2 * MB, MB] {
            let m = t.observe_read(&c, 9, off, 10 * MB);
            assert_eq!(m, ReadMode::Normal);
            off += 10 * MB + gap;
        }
    }

    #[test]
    fn streams_are_independent() {
        let c = cfg(true);
        let mut t = ReadaheadTracker::new();
        strided_reads(&mut t, &c, 6); // stream 7 strided
                                      // Stream 8 fresh: normal.
        let m = t.observe_read(&c, 8, 0, MB);
        assert_eq!(m, ReadMode::Normal);
        assert_eq!(t.streams_tracked(), 2);
        t.close_stream(7);
        assert_eq!(t.streams_tracked(), 1);
    }

    #[test]
    fn writes_classify_and_ledger_dirty_bytes() {
        let mut t = ReadaheadTracker::new();
        assert_eq!(t.observe_write(3, 0, MB), WriteMode::Sequential);
        assert_eq!(t.observe_write(3, MB, MB), WriteMode::Sequential);
        assert_eq!(t.observe_write(3, 10 * MB, MB), WriteMode::Seeked);
        assert_eq!(t.observe_write(3, 11 * MB, MB), WriteMode::Sequential);
        // A second stream has its own cursor and ledger.
        assert_eq!(t.observe_write(4, 5 * MB, 2 * MB), WriteMode::Sequential);
        assert_eq!(t.dirty_bytes(), 6 * MB);
        t.flush_stream(3);
        assert_eq!(t.dirty_bytes(), 2 * MB);
        // Post-flush the cursor survives: appends still sequential.
        assert_eq!(t.observe_write(3, 12 * MB, MB), WriteMode::Sequential);
        assert_eq!(t.dirty_bytes(), 3 * MB);
        t.close_stream(4);
        assert_eq!(t.dirty_bytes(), MB);
    }

    #[test]
    fn writes_never_perturb_read_stride_state() {
        let c = cfg(true);
        let region = 301 * MB;
        let mut plain = ReadaheadTracker::new();
        let mut interleaved = ReadaheadTracker::new();
        for i in 0..8u64 {
            let m_plain = plain.observe_read(&c, 7, i * region, 300 * MB);
            // Same stream, overlapping offsets, between every read.
            interleaved.observe_write(7, i * 64, 4096);
            let m_inter = interleaved.observe_read(&c, 7, i * region, 300 * MB);
            interleaved.observe_write(7, i * MB, MB);
            assert_eq!(m_inter, m_plain);
        }
        assert_eq!(interleaved.strided_classified(), plain.strided_classified());
    }

    #[test]
    fn backwards_seek_resets() {
        let c = cfg(true);
        let mut t = ReadaheadTracker::new();
        strided_reads(&mut t, &c, 5);
        // Seek backwards: reset.
        let m = t.observe_read(&c, 7, 0, MB);
        assert_eq!(m, ReadMode::Normal);
        let m = t.observe_read(&c, 7, 2 * MB, MB);
        assert_eq!(m, ReadMode::Normal);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// With detection off, no access pattern is ever degraded.
        #[test]
        fn detection_off_is_always_normal(
            reads in proptest::collection::vec((0u64..1_000_000, 1u64..100_000), 1..100)
        ) {
            let c = ReadaheadConfig {
                strided_detection: false,
                stride_trigger: 3,
                max_severity: 16,
                page_bytes: 4096,
                page_cost_median: 1e-3,
                page_cost_sigma: 0.5,
            };
            let mut t = ReadaheadTracker::new();
            for (off, len) in reads {
                prop_assert_eq!(t.observe_read(&c, 1, off, len), ReadMode::Normal);
            }
        }

        /// Severity is always within [1, max_severity] and a power of two.
        #[test]
        fn severity_is_bounded(n in 1usize..40, trigger in 1u32..6, cap_pow in 0u32..8) {
            let c = ReadaheadConfig {
                strided_detection: true,
                stride_trigger: trigger,
                max_severity: 1 << cap_pow,
                page_bytes: 4096,
                page_cost_median: 1e-3,
                page_cost_sigma: 0.5,
            };
            let mut t = ReadaheadTracker::new();
            for i in 0..n {
                let m = t.observe_read(&c, 3, i as u64 * 200, 100);
                if let ReadMode::Strided { severity } = m {
                    prop_assert!(severity >= 1 && severity <= c.max_severity);
                    prop_assert!(severity.is_power_of_two());
                }
            }
        }
    }
}
