//! Per-node client state: injection link, dirty-page accounting, and the
//! phase-sampled I/O service discipline.
//!
//! The discipline models how a node's Lustre client multiplexes its four
//! tasks' I/O onto the shared node resources. The paper's Figure 1(c)
//! histogram shows peaks at R, R/2, R/4 — "one task on the node (or two)
//! took all the available I/O resources until it was done, with the other
//! tasks waiting until it was complete". We reproduce that with a
//! capacity token: exclusive (one I/O at a time), paired (two), or fair
//! (all tasks), re-sampled per node per synchronous phase, with the
//! waiter wake order randomized so no rank is consistently slow or fast.

use crate::sim::IoId;
use pio_des::stats::TimeWeighted;
use pio_des::{ServiceCenter, SimRng, SimTime};
use std::collections::VecDeque;

/// How the node client schedules its tasks' I/O within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// One task's I/O at a time (yields T/4, T/2, 3T/4, T completions).
    Exclusive,
    /// Two tasks at a time (yields T/2, T completions).
    Paired,
    /// All tasks share fairly (everyone completes near T).
    Fair,
}

impl Discipline {
    /// Concurrency this discipline allows on a node with `tasks` tasks.
    pub fn capacity(self, tasks: u32) -> u32 {
        match self {
            Discipline::Exclusive => 1,
            Discipline::Paired => 2.min(tasks.max(1)),
            Discipline::Fair => tasks.max(1),
        }
    }

    /// Sample a discipline from `[exclusive, paired, fair]` weights.
    pub fn sample(rng: &mut SimRng, weights: &[f64; 3]) -> Self {
        match rng.weighted_choice(weights) {
            0 => Discipline::Exclusive,
            1 => Discipline::Paired,
            _ => Discipline::Fair,
        }
    }
}

/// One compute node's client.
#[derive(Debug)]
pub struct Node {
    /// Injection link (NIC / HyperTransport share).
    pub nic: ServiceCenter,
    /// Page-cache ingest engine (memcpy/grant pacing) — shared by the
    /// node's tasks, so many concurrent buffered writers divide it while
    /// a lone aggregator gets it all.
    pub ingest: ServiceCenter,
    discipline: Discipline,
    capacity: u32,
    active: u32,
    waiters: Vec<IoId>,
    /// Dirty page bytes currently held in the client cache.
    pub dirty: u64,
    /// Writers waiting for cache space, served round-robin.
    pub blocked: VecDeque<IoId>,
    /// Peak dirty level seen (diagnostics).
    pub dirty_peak: u64,
    /// Dirty level integrated over time (for time-averaged cache
    /// occupancy in utilization reports).
    pub dirty_over_time: TimeWeighted,
    /// Memory pressure lingers until this instant (reclaim lag).
    pub pressure_until: SimTime,
}

impl Node {
    /// A node starting in `Fair` discipline with `tasks` tasks.
    pub fn new(tasks: u32) -> Self {
        Node {
            nic: ServiceCenter::new(),
            ingest: ServiceCenter::new(),
            discipline: Discipline::Fair,
            capacity: Discipline::Fair.capacity(tasks),
            active: 0,
            waiters: Vec::new(),
            dirty: 0,
            blocked: VecDeque::new(),
            dirty_peak: 0,
            dirty_over_time: TimeWeighted::new(0.0),
            pressure_until: SimTime::ZERO,
        }
    }

    /// Resample the discipline for a new phase. Existing token holders
    /// keep their tokens; new capacity applies to subsequent grants.
    pub fn resample(&mut self, rng: &mut SimRng, weights: &[f64; 3], tasks: u32) {
        self.discipline = Discipline::sample(rng, weights);
        self.capacity = self.discipline.capacity(tasks);
    }

    /// Current discipline.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Per-I/O RPC window under the current discipline: the node keeps
    /// `node_window` RPCs in flight total, split across token holders, so
    /// a node's fabric share does not depend on its discipline.
    pub fn io_window(&self, node_window: u32) -> u32 {
        (node_window / self.capacity.max(1)).max(1)
    }

    /// Try to take an I/O token; queues the I/O if none is free.
    /// Returns whether the token was granted immediately.
    pub fn acquire(&mut self, io: IoId) -> bool {
        if self.active < self.capacity {
            self.active += 1;
            true
        } else {
            self.waiters.push(io);
            false
        }
    }

    /// Release a token; if anyone waits, a *random* waiter is granted
    /// (keeps rank identity out of the slow/fast assignment, matching the
    /// paper's observation that no task is consistently slow).
    /// Returns the newly granted I/O, if any.
    pub fn release(&mut self, rng: &mut SimRng) -> Option<IoId> {
        debug_assert!(self.active > 0, "release without acquire");
        self.active = self.active.saturating_sub(1);
        if self.active < self.capacity && !self.waiters.is_empty() {
            let idx = rng.index(self.waiters.len());
            let io = self.waiters.swap_remove(idx);
            self.active += 1;
            Some(io)
        } else {
            None
        }
    }

    /// Account `bytes` of newly dirtied cache at `now`.
    pub fn add_dirty(&mut self, now: SimTime, bytes: u64) {
        self.dirty += bytes;
        self.dirty_peak = self.dirty_peak.max(self.dirty);
        self.dirty_over_time.set(now, self.dirty as f64);
    }

    /// Account `bytes` drained to the servers at `now`.
    pub fn drain_dirty(&mut self, now: SimTime, bytes: u64) {
        self.dirty = self.dirty.saturating_sub(bytes);
        self.dirty_over_time.set(now, self.dirty as f64);
    }

    /// Free cache space under `cache_bytes` capacity.
    pub fn free_cache(&self, cache_bytes: u64) -> u64 {
        cache_bytes.saturating_sub(self.dirty)
    }

    /// Whether the node is under memory pressure at `now`: dirty above
    /// the fraction, or within the reclaim-lag window of the last
    /// crossing.
    pub fn under_pressure(&self, now: SimTime, cache_bytes: u64, frac: f64) -> bool {
        (self.dirty as f64) > frac * cache_bytes as f64 || now < self.pressure_until
    }

    /// Note a dirty-level crossing at `now`, extending the pressure
    /// window by `hold` seconds.
    pub fn note_pressure(&mut self, now: SimTime, hold: f64) {
        let until = now + pio_des::SimSpan::from_secs_f64(hold);
        self.pressure_until = self.pressure_until.max(until);
    }

    /// Tokens currently held.
    pub fn active(&self) -> u32 {
        self.active
    }

    /// I/Os waiting for a token.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_per_discipline() {
        assert_eq!(Discipline::Exclusive.capacity(4), 1);
        assert_eq!(Discipline::Paired.capacity(4), 2);
        assert_eq!(Discipline::Fair.capacity(4), 4);
        assert_eq!(Discipline::Paired.capacity(1), 1);
        assert_eq!(Discipline::Fair.capacity(0), 1);
    }

    #[test]
    fn token_grant_and_queue() {
        let mut n = Node::new(4);
        let mut rng = SimRng::new(1);
        n.resample(&mut rng, &[1.0, 0.0, 0.0], 4); // exclusive
        assert!(n.acquire(100));
        assert!(!n.acquire(101));
        assert!(!n.acquire(102));
        assert_eq!(n.active(), 1);
        assert_eq!(n.waiting(), 2);
        let granted = n.release(&mut rng).unwrap();
        assert!(granted == 101 || granted == 102);
        assert_eq!(n.active(), 1);
        assert_eq!(n.waiting(), 1);
        let granted2 = n.release(&mut rng).unwrap();
        assert_ne!(granted, granted2);
        assert!(n.release(&mut rng).is_none());
        assert_eq!(n.active(), 0);
    }

    #[test]
    fn fair_discipline_admits_all_tasks() {
        let mut n = Node::new(4);
        for io in 0..4 {
            assert!(n.acquire(io));
        }
        assert!(!n.acquire(4));
    }

    #[test]
    fn io_window_splits_node_budget() {
        let mut n = Node::new(4);
        let mut rng = SimRng::new(2);
        n.resample(&mut rng, &[1.0, 0.0, 0.0], 4);
        assert_eq!(n.io_window(32), 32);
        n.resample(&mut rng, &[0.0, 1.0, 0.0], 4);
        assert_eq!(n.io_window(32), 16);
        n.resample(&mut rng, &[0.0, 0.0, 1.0], 4);
        assert_eq!(n.io_window(32), 8);
        // Never zero even for tiny budgets.
        assert_eq!(n.io_window(1), 1);
    }

    #[test]
    fn dirty_accounting() {
        let mut n = Node::new(4);
        n.add_dirty(SimTime::ZERO, 100);
        n.add_dirty(SimTime::from_secs(1), 50);
        assert_eq!(n.dirty, 150);
        assert_eq!(n.dirty_peak, 150);
        n.drain_dirty(SimTime::from_secs(2), 120);
        assert_eq!(n.dirty, 30);
        assert_eq!(n.dirty_peak, 150);
        n.drain_dirty(SimTime::from_secs(3), 1000); // saturates
        assert_eq!(n.dirty, 0);
        // Time-average over [0,4]: 100*1 + 150*1 + 30*1 + 0*1 over 4s.
        let avg = n.dirty_over_time.average(SimTime::from_secs(4));
        assert!((avg - 70.0).abs() < 1e-9, "{avg}");
        assert_eq!(n.free_cache(200), 200);
        n.add_dirty(SimTime::from_secs(4), 150);
        assert_eq!(n.free_cache(200), 50);
        assert_eq!(n.free_cache(100), 0);
        assert!(n.under_pressure(SimTime::ZERO, 200, 0.5));
        assert!(!n.under_pressure(SimTime::ZERO, 400, 0.5));
        n.note_pressure(SimTime::from_secs(10), 5.0);
        assert!(
            n.under_pressure(SimTime::from_secs(14), 400, 0.5),
            "lingers"
        );
        assert!(
            !n.under_pressure(SimTime::from_secs(16), 400, 0.5),
            "expires"
        );
    }

    #[test]
    fn sample_respects_degenerate_weights() {
        let mut rng = SimRng::new(3);
        for _ in 0..20 {
            assert_eq!(
                Discipline::sample(&mut rng, &[0.0, 1.0, 0.0]),
                Discipline::Paired
            );
        }
    }

    #[test]
    fn random_wakeup_is_not_always_fifo() {
        // With many waiters, the wake order should differ from insertion
        // order at least once across seeds.
        let mut any_nonfifo = false;
        for seed in 0..10 {
            let mut n = Node::new(4);
            let mut rng = SimRng::new(seed);
            n.resample(&mut rng, &[1.0, 0.0, 0.0], 4);
            n.acquire(0);
            for io in 1..=5 {
                n.acquire(io);
            }
            let mut order = Vec::new();
            for _ in 0..5 {
                order.push(n.release(&mut rng).unwrap());
            }
            if order != vec![1, 2, 3, 4, 5] {
                any_nonfifo = true;
            }
        }
        assert!(any_nonfifo);
    }
}
