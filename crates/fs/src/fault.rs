//! Fault-injection hook points for the file-system model.
//!
//! [`FsSim`](crate::FsSim) (and the MPI message layer above it) consults
//! an optional [`FaultInjector`] at every resource touch point. The
//! contract that keeps the hook layer *provably inert* when absent:
//!
//! * Every hook has a default implementation returning [`SimSpan::ZERO`],
//!   and the simulator only calls hooks when an injector is installed —
//!   a run without one performs **zero** extra work and **zero** extra
//!   RNG draws, so its trace is bit-identical to a build without the
//!   fault layer.
//! * An injector must own its *own* random stream (see
//!   `pio-fault`): it must never draw from the simulator's RNGs, so the
//!   base event randomness is the same with and without faults and any
//!   distributional change is attributable to the fault alone.
//! * Hooks return *additional* service demand (or client-side delay);
//!   they can slow a component down but never speed it up or reorder
//!   completions, which keeps conservation invariants (bytes moved,
//!   records emitted) intact under any plan.
//!
//! The concrete fault vocabulary (slow OST, flaky fabric, MDS stalls,
//! straggler nodes, drop-with-retry) lives in the `pio-fault` crate;
//! this trait is deliberately mechanism-only so the file-system crate
//! carries no fault policy.

use crate::NodeId;
use pio_des::{SimSpan, SimTime};

/// Injection hooks consulted by the simulator at each resource touch
/// point. All methods take `&mut self` so injectors can keep state
/// (their own RNG, retry counters); all default to "no fault".
///
/// `nominal` arguments carry the unperturbed bandwidth-proportional
/// service span of the request, letting injectors express *relative*
/// degradation ("this OST is 4× slower") without knowing the platform
/// configuration.
pub trait FaultInjector: Send {
    /// Extra service demand for an RPC at OST `ost` starting around `at`.
    fn ost_extra(&mut self, at: SimTime, ost: usize, nominal: SimSpan, is_read: bool) -> SimSpan {
        let _ = (at, ost, nominal, is_read);
        SimSpan::ZERO
    }

    /// Extra fabric service demand for a transfer entering around `at`.
    fn fabric_extra(&mut self, at: SimTime, nominal: SimSpan) -> SimSpan {
        let _ = (at, nominal);
        SimSpan::ZERO
    }

    /// Extra NIC service demand on `node` for a transfer around `at`.
    fn nic_extra(&mut self, at: SimTime, node: NodeId, nominal: SimSpan) -> SimSpan {
        let _ = (at, node, nominal);
        SimSpan::ZERO
    }

    /// Extra metadata-server demand for an operation issued at `at`.
    fn mds_extra(&mut self, at: SimTime, nominal: SimSpan) -> SimSpan {
        let _ = (at, nominal);
        SimSpan::ZERO
    }

    /// Client-side delay before a data RPC may be (re)transmitted —
    /// models transient request drops: the client times out and
    /// retries, so the RPC still completes (bounded retries, no
    /// deadlock) but its latency gains a right tail.
    fn rpc_drop_delay(&mut self, at: SimTime) -> SimSpan {
        let _ = at;
        SimSpan::ZERO
    }

    /// Delay before a point-to-point MPI message is delivered — the
    /// message-layer analogue of [`FaultInjector::rpc_drop_delay`].
    fn msg_drop_delay(&mut self, at: SimTime) -> SimSpan {
        let _ = at;
        SimSpan::ZERO
    }

    /// Latest simulated instant at which any hook may still return a
    /// non-zero span. At or after this time every hook is guaranteed to
    /// return [`SimSpan::ZERO`], so the simulator may cache this value
    /// at install time and skip hook dispatch entirely — an expired
    /// time-windowed plan then costs one integer compare per touch
    /// point instead of several virtual calls. The default,
    /// [`SimTime::MAX`], means "never expires"; injectors whose faults
    /// all carry bounded schedules should override it (conservatively —
    /// rounding the horizon *up* is safe, down is not).
    fn expiry(&self) -> SimTime {
        SimTime::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl FaultInjector for Nop {}

    #[test]
    fn default_hooks_are_all_zero() {
        let mut f = Nop;
        let t = SimTime::from_secs(3);
        let nom = SimSpan::from_secs(1);
        assert_eq!(f.ost_extra(t, 0, nom, true), SimSpan::ZERO);
        assert_eq!(f.fabric_extra(t, nom), SimSpan::ZERO);
        assert_eq!(f.nic_extra(t, 0, nom), SimSpan::ZERO);
        assert_eq!(f.mds_extra(t, nom), SimSpan::ZERO);
        assert_eq!(f.rpc_drop_delay(t), SimSpan::ZERO);
        assert_eq!(f.msg_drop_delay(t), SimSpan::ZERO);
        assert_eq!(f.expiry(), SimTime::MAX);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut b: Box<dyn FaultInjector> = Box::new(Nop);
        assert_eq!(b.rpc_drop_delay(SimTime::ZERO), SimSpan::ZERO);
    }
}
