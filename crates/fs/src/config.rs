//! File-system and platform configuration, with the paper's three
//! platform presets: Franklin (buggy read-ahead), Franklin after the
//! Lustre patch, and Jaguar.
//!
//! All bandwidths are bytes/second; all latencies seconds. The constants
//! are calibrated so the reproduction lands near the paper's headline
//! numbers (IOR ~11.6 GB/s at k=1; MADbench ≈2200 s buggy / ≈520 s
//! patched / ≈275 s Jaguar; GCRM 310→75 s), but the *mechanisms*, not the
//! constants, carry the paper's findings.

use serde::{Deserialize, Serialize};

/// Read-ahead engine configuration (see [`crate::readahead`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadaheadConfig {
    /// Whether strided-pattern detection is enabled. `true` reproduces the
    /// Lustre bug the paper found; the patch "removed strided read-ahead
    /// detection entirely", i.e. set this to `false`.
    pub strided_detection: bool,
    /// Number of stride repetitions before the strided mode engages
    /// (Lustre recognized the pattern "on its third appearance").
    pub stride_trigger: u32,
    /// Severity doubling cap: the erroneous window grows ×2 per additional
    /// matched stride, up to this multiplier.
    pub max_severity: u32,
    /// Page size of the degraded small reads (4 KiB in Lustre).
    pub page_bytes: u64,
    /// Median per-page effective cost (seconds) once degraded.
    pub page_cost_median: f64,
    /// σ of the log-normal per-call page-cost sample (heavy tail:
    /// the paper sees 30–500 s reads).
    pub page_cost_sigma: f64,
}

/// Full platform configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsConfig {
    /// Preset label (used in trace metadata).
    pub name: String,
    /// Number of object storage targets.
    pub n_osts: usize,
    /// Streaming bandwidth per OST (B/s).
    pub ost_bw: f64,
    /// Median per-RPC OST overhead (s), log-normal.
    pub ost_overhead_median: f64,
    /// σ of the OST overhead log-normal.
    pub ost_overhead_sigma: f64,
    /// Median extra service (s) when an OST switches between client
    /// streams (disk seek / request-reordering cost).
    pub stream_switch_median: f64,
    /// Aggregate fabric bandwidth toward the I/O subsystem (B/s).
    pub fabric_bw: f64,
    /// Per-node injection bandwidth (B/s).
    pub nic_bw: f64,
    /// RPC and stripe size (bytes); Lustre moves data in 1 MiB stripes.
    pub stripe_bytes: u64,
    /// Per-node dirty-page cache limit (bytes).
    pub cache_bytes: u64,
    /// Per-call cache ingest bandwidth (memcpy into page cache, B/s).
    pub ingest_bw: f64,
    /// Dirty fraction above which the client is under memory pressure
    /// (gates the read-ahead degradation).
    pub pressure_frac: f64,
    /// How long memory pressure lingers after the dirty level crosses the
    /// threshold (page-reclaim lag: free memory stays scarce for a while
    /// after a write burst even as write-back drains), seconds.
    pub pressure_hold: f64,
    /// Max RPCs a node keeps in flight (shared by its active I/Os).
    pub node_window: u32,
    /// Tasks per node (XT4: quad-core, 4 MPI tasks).
    pub tasks_per_node: u32,
    /// Phase-sampled node service discipline weights:
    /// `[exclusive, paired, fair]` (see paper Fig. 1(c) harmonics).
    pub discipline_weights: [f64; 3],
    /// σ of the per-call log-normal slow-path multiplier applied to OST
    /// overheads.
    pub call_noise_sigma: f64,
    /// σ of the per-call grant-pacing stretch on buffered writes: Lustre
    /// clients pace dirty-page acceptance by per-OSC grants, and a call's
    /// pacing luck varies call to call. This is the per-call variability
    /// whose averaging-out is the paper's Law-of-Large-Numbers effect
    /// (Fig. 2): more calls per task ⇒ per-task totals concentrate ⇒ the
    /// slowest task (which ends the phase) improves.
    pub grant_noise_sigma: f64,
    /// MDS service threads.
    pub mds_threads: usize,
    /// Median MDS latency for opens/lookups (s).
    pub mds_latency_median: f64,
    /// Median latency of a small synchronous metadata write transaction (s).
    pub meta_sync_median: f64,
    /// σ for MDS/meta log-normals.
    pub meta_sigma: f64,
    /// Extent-lock revocation latency when a shared stripe changes owner (s).
    pub lock_revoke_latency: f64,
    /// Median extra OST service for a sub-stripe (partial) write RPC —
    /// the RAID read-modify-write penalty unaligned records pay (s).
    pub raid_partial_median: f64,
    /// Median extra OST service when consecutive RPCs switch between
    /// reads and writes (disk-head direction thrash) (s).
    pub direction_switch_median: f64,
    /// Read-ahead engine settings.
    pub readahead: ReadaheadConfig,
}

impl FsConfig {
    /// Franklin (NERSC Cray XT4), scratch file system, *with* the strided
    /// read-ahead bug — the platform of Figures 1, 2, 4(a–c), 5 and 6.
    pub fn franklin() -> Self {
        FsConfig {
            name: "franklin".into(),
            n_osts: 48,
            ost_bw: 420e6,
            ost_overhead_median: 300e-6,
            ost_overhead_sigma: 0.4,
            stream_switch_median: 2.0e-3,
            fabric_bw: 16e9,
            nic_bw: 1.2e9,
            stripe_bytes: 1 << 20,
            cache_bytes: 768 << 20,
            ingest_bw: 280e6,
            pressure_frac: 0.5,
            pressure_hold: 25.0,
            node_window: 32,
            tasks_per_node: 4,
            discipline_weights: [0.30, 0.30, 0.40],
            call_noise_sigma: 0.18,
            grant_noise_sigma: 0.09,
            mds_threads: 8,
            mds_latency_median: 0.4e-3,
            meta_sync_median: 7e-3,
            meta_sigma: 0.5,
            lock_revoke_latency: 5e-3,
            raid_partial_median: 2.5e-3,
            direction_switch_median: 10e-3,
            readahead: ReadaheadConfig {
                strided_detection: true,
                stride_trigger: 3,
                max_severity: 8,
                page_bytes: 4 << 10,
                page_cost_median: 0.22e-3,
                page_cost_sigma: 0.55,
            },
        }
    }

    /// Franklin after the Lustre patch: strided read-ahead detection
    /// removed entirely (the 4.2× fix of Figure 5).
    pub fn franklin_patched() -> Self {
        let mut cfg = Self::franklin();
        cfg.name = "franklin-patched".into();
        cfg.readahead.strided_detection = false;
        cfg
    }

    /// Franklin's second scratch file system — identical hardware, used by
    /// the paper to show the *distribution* is reproducible even though
    /// individual traces differ (Fig. 1(c)). Same config, different label;
    /// run it with a different seed.
    pub fn franklin_scratch2() -> Self {
        let mut cfg = Self::franklin();
        cfg.name = "franklin-scratch2".into();
        cfg
    }

    /// Jaguar (ORNL Cray XT4 partition): 144 OSTs, higher aggregate
    /// bandwidth, no read-ahead bug, and "only modest variability in I/O
    /// rate from one task to the next" (Fig. 4(d–f)).
    pub fn jaguar() -> Self {
        FsConfig {
            name: "jaguar".into(),
            n_osts: 144,
            ost_bw: 420e6,
            ost_overhead_median: 250e-6,
            ost_overhead_sigma: 0.3,
            stream_switch_median: 0.8e-3,
            // Effective I/O bandwidth available to a 256-task job on the
            // shared Jaguar fabric (the raw XT4 partition is faster, but
            // the paper's job does not own the machine).
            fabric_bw: 11e9,
            nic_bw: 1.6e9,
            stripe_bytes: 1 << 20,
            cache_bytes: 768 << 20,
            ingest_bw: 320e6,
            pressure_frac: 0.5,
            pressure_hold: 25.0,
            node_window: 32,
            tasks_per_node: 4,
            discipline_weights: [0.05, 0.15, 0.80],
            call_noise_sigma: 0.08,
            grant_noise_sigma: 0.05,
            mds_threads: 8,
            mds_latency_median: 0.4e-3,
            meta_sync_median: 7e-3,
            meta_sigma: 0.4,
            lock_revoke_latency: 0.5e-3,
            raid_partial_median: 3e-3,
            direction_switch_median: 3e-3,
            readahead: ReadaheadConfig {
                strided_detection: false,
                stride_trigger: 3,
                max_severity: 16,
                page_bytes: 4 << 10,
                page_cost_median: 0.15e-3,
                page_cost_sigma: 0.7,
            },
        }
    }

    /// A tiny configuration for fast unit/integration tests: few OSTs,
    /// small cache, deterministic-ish (low noise).
    pub fn tiny_test() -> Self {
        FsConfig {
            name: "tiny-test".into(),
            n_osts: 4,
            ost_bw: 100e6,
            ost_overhead_median: 100e-6,
            ost_overhead_sigma: 0.2,
            stream_switch_median: 0.2e-3,
            fabric_bw: 400e6,
            nic_bw: 200e6,
            stripe_bytes: 1 << 20,
            cache_bytes: 16 << 20,
            ingest_bw: 400e6,
            pressure_frac: 0.5,
            pressure_hold: 0.5,
            node_window: 8,
            tasks_per_node: 4,
            discipline_weights: [0.0, 0.0, 1.0],
            call_noise_sigma: 0.05,
            grant_noise_sigma: 0.02,
            mds_threads: 2,
            mds_latency_median: 0.5e-3,
            meta_sync_median: 2e-3,
            meta_sigma: 0.2,
            lock_revoke_latency: 0.5e-3,
            raid_partial_median: 1e-3,
            direction_switch_median: 1e-3,
            readahead: ReadaheadConfig {
                strided_detection: true,
                stride_trigger: 3,
                max_severity: 8,
                page_bytes: 4 << 10,
                page_cost_median: 0.2e-3,
                page_cost_sigma: 0.3,
            },
        }
    }

    /// A proportionally shrunk platform for a workload whose *task count*
    /// was divided by `factor` (per-task transfer sizes unchanged): the
    /// fabric and the OST pool shrink so per-task shares and per-OST load
    /// match the full platform, while per-node quantities (NIC, cache,
    /// ingest) stay fixed because each node still runs the same tasks.
    pub fn scaled(&self, factor: u32) -> Self {
        if factor <= 1 {
            return self.clone();
        }
        let f = factor as f64;
        let mut cfg = self.clone();
        cfg.fabric_bw = self.fabric_bw / f;
        let total_ost = self.ost_bw * self.n_osts as f64;
        cfg.n_osts = (self.n_osts / factor as usize).max(2);
        cfg.ost_bw = total_ost / f / cfg.n_osts as f64;
        cfg.name = format!("{}-x{}", self.name, factor);
        cfg
    }

    /// Fair per-task share of the fabric at `tasks` concurrency (B/s) —
    /// the paper's "R" reference rate (≈16 MB/s for 1024 tasks on
    /// Franklin).
    pub fn fair_share(&self, tasks: u32) -> f64 {
        self.fabric_bw / tasks.max(1) as f64
    }

    /// Sanity-check invariants (positive rates, nonzero sizes, weights
    /// with mass). Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_osts == 0 {
            return Err("n_osts must be nonzero".into());
        }
        for (label, v) in [
            ("ost_bw", self.ost_bw),
            ("fabric_bw", self.fabric_bw),
            ("nic_bw", self.nic_bw),
            ("ingest_bw", self.ingest_bw),
        ] {
            if v <= 0.0 {
                return Err(format!("{label} must be positive"));
            }
        }
        if self.stripe_bytes == 0 {
            return Err("stripe_bytes must be nonzero".into());
        }
        if self.tasks_per_node == 0 {
            return Err("tasks_per_node must be nonzero".into());
        }
        if self.node_window == 0 {
            return Err("node_window must be nonzero".into());
        }
        if self.discipline_weights.iter().sum::<f64>() <= 0.0 {
            return Err("discipline weights need mass".into());
        }
        if !(0.0..=1.0).contains(&self.pressure_frac) {
            return Err("pressure_frac must be within [0,1]".into());
        }
        if self.mds_threads == 0 {
            return Err("mds_threads must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            FsConfig::franklin(),
            FsConfig::franklin_patched(),
            FsConfig::franklin_scratch2(),
            FsConfig::jaguar(),
            FsConfig::tiny_test(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn patch_only_disables_strided_detection() {
        let a = FsConfig::franklin();
        let b = FsConfig::franklin_patched();
        assert!(a.readahead.strided_detection);
        assert!(!b.readahead.strided_detection);
        assert_eq!(a.n_osts, b.n_osts);
        assert_eq!(a.fabric_bw, b.fabric_bw);
        assert_eq!(a.discipline_weights, b.discipline_weights);
    }

    #[test]
    fn fair_share_matches_papers_r() {
        // ≈16 MB/s for 1024 tasks at 16 GB/s aggregate.
        let r = FsConfig::franklin().fair_share(1024);
        assert!((r - 15.625e6).abs() < 1.0, "{r}");
    }

    #[test]
    fn jaguar_has_more_osts_and_calmer_disciplines() {
        let j = FsConfig::jaguar();
        let f = FsConfig::franklin();
        assert!(j.n_osts > f.n_osts);
        assert!(j.discipline_weights[2] > f.discipline_weights[2]);
        assert!(!j.readahead.strided_detection);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = FsConfig::tiny_test();
        c.n_osts = 0;
        assert!(c.validate().is_err());
        let mut c = FsConfig::tiny_test();
        c.fabric_bw = 0.0;
        assert!(c.validate().is_err());
        let mut c = FsConfig::tiny_test();
        c.discipline_weights = [0.0; 3];
        assert!(c.validate().is_err());
        let mut c = FsConfig::tiny_test();
        c.pressure_frac = 1.5;
        assert!(c.validate().is_err());
    }
}
