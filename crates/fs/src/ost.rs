//! Object storage target model: a FIFO server with stochastic service.
//!
//! Service for an RPC of `b` bytes is `b / ost_bw` plus a log-normal
//! per-RPC overhead, plus a stream-switch penalty when the previous RPC
//! served came from a different client stream (disk seek / request
//! reordering). The switch penalty is what makes 10,240 interleaved
//! writers slower per byte than 80 streaming aggregators — the mechanism
//! behind the GCRM collective-buffering win.

use crate::config::FsConfig;
use pio_des::{ServiceCenter, SimRng, SimSpan, SimTime};

/// One OST.
#[derive(Debug)]
pub struct Ost {
    center: ServiceCenter,
    last_stream: Option<u64>,
    last_was_read: Option<bool>,
    switches: u64,
    direction_switches: u64,
    bytes: u64,
}

impl Ost {
    /// An idle OST.
    pub fn new() -> Self {
        Ost {
            center: ServiceCenter::new(),
            last_stream: None,
            last_was_read: None,
            switches: 0,
            direction_switches: 0,
            bytes: 0,
        }
    }

    /// Submit an RPC of `bytes` from `stream` arriving at `at`.
    ///
    /// `noise` is the per-call slow-path multiplier applied to the
    /// overhead terms (not to the streaming term — bandwidth does not get
    /// "unlucky", queues and seeks do). `extra` is additional service
    /// demand (e.g. read-modify-write of a partial stripe).
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        at: SimTime,
        bytes: u64,
        stream: u64,
        is_read: bool,
        noise: f64,
        extra: SimSpan,
        cfg: &FsConfig,
        rng: &mut SimRng,
    ) -> SimTime {
        let streaming = SimSpan::for_bytes(bytes, cfg.ost_bw);
        let mut overhead = rng.lognormal(cfg.ost_overhead_median, cfg.ost_overhead_sigma);
        if self.last_stream != Some(stream) {
            if self.last_stream.is_some() {
                self.switches += 1;
            }
            overhead += rng.lognormal(cfg.stream_switch_median, cfg.ost_overhead_sigma);
            self.last_stream = Some(stream);
        }
        if self.last_was_read.is_some_and(|r| r != is_read) {
            // Disk-head direction thrash: interleaved reads and writes
            // (MADbench's middle phase) cost extra service per turnaround.
            self.direction_switches += 1;
            overhead += rng.lognormal(cfg.direction_switch_median, cfg.ost_overhead_sigma);
        }
        self.last_was_read = Some(is_read);
        let svc = streaming + SimSpan::from_secs_f64(overhead * noise) + extra;
        self.bytes += bytes;
        self.center.submit(at, svc)
    }

    /// Read↔write turnarounds served.
    pub fn direction_switches(&self) -> u64 {
        self.direction_switches
    }

    /// Stream switches served (seek-ish events).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Bytes served.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// RPCs served.
    pub fn served(&self) -> u64 {
        self.center.served()
    }

    /// Total busy time.
    pub fn busy_time(&self) -> SimSpan {
        self.center.busy_time()
    }

    /// When this OST next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.center.next_free()
    }
}

impl Default for Ost {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FsConfig {
        let mut c = FsConfig::tiny_test();
        // Make overheads deterministic-ish for assertions.
        c.ost_overhead_sigma = 1e-9;
        c.ost_bw = 100e6;
        c.ost_overhead_median = 1e-3;
        c.stream_switch_median = 10e-3;
        c
    }

    #[test]
    fn streaming_term_scales_with_bytes() {
        let c = cfg();
        let mut rng = SimRng::new(1);
        let mut ost = Ost::new();
        let t1 = ost.submit(
            SimTime::ZERO,
            100_000_000,
            1,
            false,
            1.0,
            SimSpan::ZERO,
            &c,
            &mut rng,
        );
        // 100 MB at 100 MB/s ≈ 1 s (+ ~1ms overhead + ~10ms first-stream switch).
        let secs = t1.as_secs_f64();
        assert!(secs > 1.0 && secs < 1.1, "{secs}");
    }

    #[test]
    fn same_stream_avoids_switch_penalty() {
        let c = cfg();
        let mut rng = SimRng::new(2);
        let mut ost = Ost::new();
        ost.submit(
            SimTime::ZERO,
            1000,
            5,
            false,
            1.0,
            SimSpan::ZERO,
            &c,
            &mut rng,
        );
        let before = ost.switches();
        ost.submit(
            SimTime::ZERO,
            1000,
            5,
            false,
            1.0,
            SimSpan::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(ost.switches(), before);
        ost.submit(
            SimTime::ZERO,
            1000,
            6,
            false,
            1.0,
            SimSpan::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(ost.switches(), before + 1);
    }

    #[test]
    fn interleaved_streams_cost_more_than_batched() {
        let c = cfg();
        let mut rng_a = SimRng::new(3);
        let mut rng_b = SimRng::new(3);
        let mut interleaved = Ost::new();
        let mut batched = Ost::new();
        // 20 RPCs alternating between 2 streams vs grouped by stream.
        for i in 0..20u64 {
            interleaved.submit(
                SimTime::ZERO,
                1000,
                i % 2,
                false,
                1.0,
                SimSpan::ZERO,
                &c,
                &mut rng_a,
            );
        }
        for i in 0..20u64 {
            batched.submit(
                SimTime::ZERO,
                1000,
                i / 10,
                false,
                1.0,
                SimSpan::ZERO,
                &c,
                &mut rng_b,
            );
        }
        assert!(interleaved.busy_time() > batched.busy_time());
        assert_eq!(interleaved.switches(), 19);
        assert_eq!(batched.switches(), 1);
    }

    #[test]
    fn noise_multiplier_slows_overheads_only() {
        let c = cfg();
        let mut ost_quiet = Ost::new();
        let mut ost_noisy = Ost::new();
        let mut r1 = SimRng::new(4);
        let mut r2 = SimRng::new(4);
        let a = ost_quiet.submit(
            SimTime::ZERO,
            1000,
            1,
            false,
            1.0,
            SimSpan::ZERO,
            &c,
            &mut r1,
        );
        let b = ost_noisy.submit(
            SimTime::ZERO,
            1000,
            1,
            false,
            5.0,
            SimSpan::ZERO,
            &c,
            &mut r2,
        );
        assert!(b > a);
        // The slowdown is bounded by 5x of the overhead terms.
        assert!(b.as_secs_f64() < 5.0 * a.as_secs_f64() + 1e-9);
    }

    #[test]
    fn extra_service_is_additive() {
        let c = cfg();
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        let mut x = Ost::new();
        let mut y = Ost::new();
        let a = x.submit(
            SimTime::ZERO,
            1000,
            1,
            false,
            1.0,
            SimSpan::ZERO,
            &c,
            &mut r1,
        );
        let b = y.submit(
            SimTime::ZERO,
            1000,
            1,
            false,
            1.0,
            SimSpan::from_secs(2),
            &c,
            &mut r2,
        );
        assert_eq!(b.since(a), SimSpan::from_secs(2));
    }

    #[test]
    fn counters_accumulate() {
        let c = cfg();
        let mut rng = SimRng::new(6);
        let mut ost = Ost::new();
        for _ in 0..5 {
            ost.submit(
                SimTime::ZERO,
                100,
                1,
                false,
                1.0,
                SimSpan::ZERO,
                &c,
                &mut rng,
            );
        }
        assert_eq!(ost.served(), 5);
        assert_eq!(ost.bytes(), 500);
    }
}
