//! Stripe layout: mapping byte ranges of a file onto OSTs.
//!
//! Lustre stripes a file round-robin over its OSTs in fixed-size stripes
//! (1 MiB on the paper's systems). Every client transfer is decomposed
//! into per-stripe RPCs; whether a transfer starts and ends on stripe
//! boundaries decides whether stripes are shared between writers — the
//! alignment effect the GCRM study exploits.

/// Striping of one file over `n_osts` targets.
///
/// ```
/// use pio_fs::StripeLayout;
/// let l = StripeLayout::new(1 << 20, 48, 0);
/// // An unaligned 1.6 MB record spans three stripes on three OSTs:
/// let ex = l.extents(1_600_000, 1_600_000);
/// assert_eq!(ex.len(), 3);
/// assert!(!ex[0].is_full_stripe(1 << 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    /// Stripe size in bytes.
    pub stripe_bytes: u64,
    /// Stripe count (number of OSTs the file is striped over).
    pub n_osts: usize,
    /// First OST index (files start on different OSTs to spread load).
    pub ost_offset: usize,
}

/// One stripe-contained piece of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Global stripe index within the file (`offset / stripe_bytes`).
    pub stripe: u64,
    /// Target OST.
    pub ost: usize,
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes (≤ stripe size).
    pub len: u64,
}

impl Extent {
    /// Whether this extent covers its stripe completely.
    pub fn is_full_stripe(&self, stripe_bytes: u64) -> bool {
        self.len == stripe_bytes && self.offset.is_multiple_of(stripe_bytes)
    }
}

impl StripeLayout {
    /// Layout with `stripe_bytes` stripes over `n_osts` OSTs starting at
    /// OST `ost_offset`.
    pub fn new(stripe_bytes: u64, n_osts: usize, ost_offset: usize) -> Self {
        assert!(stripe_bytes > 0 && n_osts > 0);
        StripeLayout {
            stripe_bytes,
            n_osts,
            ost_offset: ost_offset % n_osts,
        }
    }

    /// OST serving a given stripe index.
    pub fn ost_of_stripe(&self, stripe: u64) -> usize {
        ((stripe as usize) + self.ost_offset) % self.n_osts
    }

    /// Stripe index containing a byte offset.
    pub fn stripe_of(&self, offset: u64) -> u64 {
        offset / self.stripe_bytes
    }

    /// Decompose `[offset, offset+len)` into stripe-contained extents,
    /// in file order. Empty ranges yield no extents.
    pub fn extents(&self, offset: u64, len: u64) -> Vec<Extent> {
        let mut out = Vec::new();
        self.extents_into(offset, len, &mut out);
        out
    }

    /// Like [`StripeLayout::extents`], but clears and fills a
    /// caller-provided buffer — the hot path reuses one buffer per
    /// simulator so steady-state grants allocate nothing.
    pub fn extents_into(&self, offset: u64, len: u64, out: &mut Vec<Extent>) {
        out.clear();
        let mut at = offset;
        let end = offset + len;
        while at < end {
            let stripe = at / self.stripe_bytes;
            let stripe_end = (stripe + 1) * self.stripe_bytes;
            let piece = end.min(stripe_end) - at;
            out.push(Extent {
                stripe,
                ost: self.ost_of_stripe(stripe),
                offset: at,
                len: piece,
            });
            at += piece;
        }
    }

    /// Number of stripes a range touches.
    pub fn stripes_touched(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = offset / self.stripe_bytes;
        let last = (offset + len - 1) / self.stripe_bytes;
        last - first + 1
    }

    /// Round `offset` up to the next stripe boundary (identity if aligned)
    /// — the "padded and aligned to 1 MB boundaries" optimization.
    pub fn align_up(&self, offset: u64) -> u64 {
        offset.div_ceil(self.stripe_bytes) * self.stripe_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn aligned_transfer_splits_into_full_stripes() {
        let l = StripeLayout::new(MB, 4, 0);
        let ex = l.extents(0, 3 * MB);
        assert_eq!(ex.len(), 3);
        for (i, e) in ex.iter().enumerate() {
            assert_eq!(e.stripe, i as u64);
            assert_eq!(e.ost, i % 4);
            assert_eq!(e.len, MB);
            assert!(e.is_full_stripe(MB));
        }
    }

    #[test]
    fn unaligned_transfer_has_partial_edges() {
        // 1.6 MB at offset 1.6 MB — the GCRM record shape.
        let l = StripeLayout::new(MB, 48, 0);
        let off = (16 * MB) / 10;
        let len = (16 * MB) / 10;
        let ex = l.extents(off, len);
        assert_eq!(ex.len(), 3); // partial, full?, partial
        assert!(!ex[0].is_full_stripe(MB));
        assert!(!ex[ex.len() - 1].is_full_stripe(MB));
        let total: u64 = ex.iter().map(|e| e.len).sum();
        assert_eq!(total, len);
        // Consecutive, no gaps.
        for w in ex.windows(2) {
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }
    }

    #[test]
    fn round_robin_wraps_with_offset() {
        let l = StripeLayout::new(MB, 3, 2);
        assert_eq!(l.ost_of_stripe(0), 2);
        assert_eq!(l.ost_of_stripe(1), 0);
        assert_eq!(l.ost_of_stripe(2), 1);
        assert_eq!(l.ost_of_stripe(3), 2);
    }

    #[test]
    fn stripes_touched_counts_boundaries() {
        let l = StripeLayout::new(MB, 4, 0);
        assert_eq!(l.stripes_touched(0, MB), 1);
        assert_eq!(l.stripes_touched(0, MB + 1), 2);
        assert_eq!(l.stripes_touched(MB - 1, 2), 2);
        assert_eq!(l.stripes_touched(5, 0), 0);
    }

    #[test]
    fn align_up_behaviour() {
        let l = StripeLayout::new(MB, 4, 0);
        assert_eq!(l.align_up(0), 0);
        assert_eq!(l.align_up(1), MB);
        assert_eq!(l.align_up(MB), MB);
        assert_eq!(l.align_up(MB + 1), 2 * MB);
    }

    #[test]
    fn zero_length_range_is_empty() {
        let l = StripeLayout::new(MB, 4, 0);
        assert!(l.extents(123, 0).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Extents partition the byte range exactly: contiguous, in order,
        /// summing to len, each within one stripe, OSTs consistent.
        #[test]
        fn extents_partition_range(
            stripe_kb in 1u64..64,
            n_osts in 1usize..16,
            ost_off in 0usize..16,
            offset in 0u64..10_000_000,
            len in 1u64..10_000_000,
        ) {
            let l = StripeLayout::new(stripe_kb << 10, n_osts, ost_off);
            let ex = l.extents(offset, len);
            prop_assert!(!ex.is_empty());
            prop_assert_eq!(ex[0].offset, offset);
            let mut at = offset;
            for e in &ex {
                prop_assert_eq!(e.offset, at);
                prop_assert!(e.len > 0 && e.len <= l.stripe_bytes);
                prop_assert_eq!(e.stripe, e.offset / l.stripe_bytes);
                // An extent never crosses a stripe boundary.
                prop_assert_eq!((e.offset + e.len - 1) / l.stripe_bytes, e.stripe);
                prop_assert_eq!(e.ost, l.ost_of_stripe(e.stripe));
                at += e.len;
            }
            prop_assert_eq!(at, offset + len);
            prop_assert_eq!(ex.len() as u64, l.stripes_touched(offset, len));
        }

        /// Aligning an offset never decreases it and lands on a boundary.
        #[test]
        fn align_up_is_sound(stripe_kb in 1u64..64, offset in 0u64..10_000_000) {
            let l = StripeLayout::new(stripe_kb << 10, 4, 0);
            let a = l.align_up(offset);
            prop_assert!(a >= offset);
            prop_assert_eq!(a % l.stripe_bytes, 0);
            prop_assert!(a - offset < l.stripe_bytes);
        }
    }
}
