//! # pio-trace — an IPM-I/O reimplementation
//!
//! The paper extends IPM (Integrated Performance Monitoring) with I/O
//! tracing: every POSIX I/O call is intercepted and recorded as a
//! timestamped entry containing the call, its arguments, and its duration,
//! with a lookup table of open file descriptors associating events that
//! touch the same file. This crate reproduces that record stream for the
//! simulated POSIX layer:
//!
//! * [`record`] — the trace-entry schema (`Record`, `CallKind`).
//! * [`fdtable`] — the open-descriptor lookup table.
//! * [`trace`] — the in-memory trace: filters, slices, aggregate queries.
//! * [`phase`] — barrier-phase segmentation (synchronous I/O phases are
//!   the unit of the paper's order-statistics argument).
//! * [`profile`] — the *online profiling* mode the paper's future-work
//!   section proposes: accumulate duration histograms at capture time and
//!   never store individual events.
//! * [`sink`] — streaming record sinks: consume events as they happen
//!   instead of buffering a whole trace (`pio-ingest` builds on this).
//! * [`io`] — JSONL / ptb / CSV serialization of traces.
//! * [`jsonl`] — the hot hand-rolled JSONL record parser (with
//!   `serde_json` as the strict fallback).
//! * [`ptb`] — the compact CRC-checked binary trace format, with a
//!   streaming block reader and a `RecordSink` encoder.
//! * [`ptb2`] — the columnar v2 format: structure-of-arrays blocks with
//!   frame-of-reference/delta timestamps, dictionary-coded call kinds
//!   and varint sizes, decoded by branch-free columnar loops.
//! * [`codec`] — the `TraceCodec` trait and static registry that give
//!   every format uniform sniff/read/write/stream entry points.
//! * [`summary`] — an IPM-style per-call summary report.

pub mod codec;
pub mod fdtable;
pub mod io;
pub mod jsonl;
pub mod phase;
pub mod profile;
pub mod ptb;
pub mod ptb2;
pub mod record;
pub mod sink;
pub mod summary;
pub mod trace;

pub use codec::{codec_for, codecs, sniff_codec, PhaseTracker, TraceCodec};
pub use fdtable::FdTable;
pub use io::TraceFormat;
pub use profile::OnlineProfile;
pub use ptb::{PtbBlockReader, PtbWriter};
pub use ptb2::{Ptb2BlockReader, Ptb2Writer};
pub use record::{CallKind, Record};
pub use sink::{Demux, NullSink, RecordSink, Tee};
pub use trace::{Trace, TraceMeta};
