//! The trace-entry schema: one record per intercepted call.

use pio_des::{SimSpan, SimTime};
use serde::{Deserialize, Serialize};

/// Which intercepted call a record describes.
///
/// `Read`/`Write` are POSIX data calls; `MetaRead`/`MetaWrite` are the
/// sub-3 KB middleware metadata transactions the GCRM study isolates
/// (traced separately so histograms can be split by buffer class, as in
/// the paper's Figure 6); `Barrier` entries capture synchronization waits
/// (the "white space" of the paper's trace diagrams); `Send`/`Recv` cover
/// the collective-buffering aggregation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// `open()`.
    Open,
    /// `close()`.
    Close,
    /// Data `read()` / `pread()`.
    Read,
    /// Data `write()` / `pwrite()`.
    Write,
    /// `lseek()`.
    Seek,
    /// Middleware metadata read (small).
    MetaRead,
    /// Middleware metadata write (small).
    MetaWrite,
    /// `fsync()`-like flush: wait for write-back to reach the servers.
    Flush,
    /// Barrier wait.
    Barrier,
    /// Point-to-point send (aggregation traffic).
    Send,
    /// Point-to-point receive (aggregation traffic).
    Recv,
    /// Non-I/O computation interval.
    Compute,
}

impl CallKind {
    /// True for calls that move file data or metadata bytes.
    pub fn is_io(self) -> bool {
        matches!(
            self,
            CallKind::Read | CallKind::Write | CallKind::MetaRead | CallKind::MetaWrite
        )
    }

    /// True for data-plane reads/writes (excludes metadata).
    pub fn is_data(self) -> bool {
        matches!(self, CallKind::Read | CallKind::Write)
    }

    /// True for reads of any class.
    pub fn is_read(self) -> bool {
        matches!(self, CallKind::Read | CallKind::MetaRead)
    }

    /// True for writes of any class.
    pub fn is_write(self) -> bool {
        matches!(self, CallKind::Write | CallKind::MetaWrite)
    }

    /// Short lowercase name used in reports and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            CallKind::Open => "open",
            CallKind::Close => "close",
            CallKind::Read => "read",
            CallKind::Write => "write",
            CallKind::Seek => "seek",
            CallKind::MetaRead => "meta_read",
            CallKind::MetaWrite => "meta_write",
            CallKind::Flush => "flush",
            CallKind::Barrier => "barrier",
            CallKind::Send => "send",
            CallKind::Recv => "recv",
            CallKind::Compute => "compute",
        }
    }

    /// Every kind, for per-kind tabulation.
    pub const ALL: [CallKind; 12] = [
        CallKind::Open,
        CallKind::Close,
        CallKind::Read,
        CallKind::Write,
        CallKind::Seek,
        CallKind::MetaRead,
        CallKind::MetaWrite,
        CallKind::Flush,
        CallKind::Barrier,
        CallKind::Send,
        CallKind::Recv,
        CallKind::Compute,
    ];
}

/// One timestamped trace entry, mirroring IPM-I/O's
/// `(task, call, descriptor, arguments, timestamp, duration)` tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// MPI rank that issued the call.
    pub rank: u32,
    /// The intercepted call.
    pub call: CallKind,
    /// File descriptor (`-1` for barriers/compute).
    pub fd: i32,
    /// File offset of the access (0 where meaningless).
    pub offset: u64,
    /// Bytes moved (0 for barriers, seeks, opens).
    pub bytes: u64,
    /// Call entry time, nanoseconds of virtual time.
    pub start_ns: u64,
    /// Call return time, nanoseconds of virtual time.
    pub end_ns: u64,
    /// Barrier-phase index at time of issue (0-based).
    pub phase: u32,
}

impl Record {
    /// Call entry instant.
    pub fn start(&self) -> SimTime {
        SimTime(self.start_ns)
    }

    /// Call return instant.
    pub fn end(&self) -> SimTime {
        SimTime(self.end_ns)
    }

    /// Call duration.
    pub fn duration(&self) -> SimSpan {
        SimSpan(self.end_ns.saturating_sub(self.start_ns))
    }

    /// Duration in seconds (the paper's histogram axis).
    pub fn secs(&self) -> f64 {
        self.duration().as_secs_f64()
    }

    /// Achieved rate in MB/s (decimal MB, as the paper reports), or `None`
    /// for zero-byte or zero-duration records.
    pub fn rate_mb_s(&self) -> Option<f64> {
        let secs = self.secs();
        if self.bytes == 0 || secs <= 0.0 {
            return None;
        }
        Some(self.bytes as f64 / 1e6 / secs)
    }

    /// Normalized cost in seconds per MB (the paper's Figure 6 lower axis),
    /// or `None` for zero-byte records.
    pub fn sec_per_mb(&self) -> Option<f64> {
        if self.bytes == 0 {
            return None;
        }
        Some(self.secs() / (self.bytes as f64 / 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(call: CallKind, bytes: u64, start: u64, end: u64) -> Record {
        Record {
            rank: 0,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: start,
            end_ns: end,
            phase: 0,
        }
    }

    #[test]
    fn duration_and_rate() {
        // 100 MB in 2 seconds = 50 MB/s.
        let r = rec(CallKind::Write, 100_000_000, 1_000_000_000, 3_000_000_000);
        assert_eq!(r.duration(), SimSpan::from_secs(2));
        assert!((r.rate_mb_s().unwrap() - 50.0).abs() < 1e-9);
        assert!((r.sec_per_mb().unwrap() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_records_have_no_rate() {
        let r = rec(CallKind::Barrier, 0, 0, 5);
        assert!(r.rate_mb_s().is_none());
        assert!(r.sec_per_mb().is_none());
    }

    #[test]
    fn backwards_timestamps_saturate() {
        let r = rec(CallKind::Read, 10, 100, 50);
        assert_eq!(r.duration(), SimSpan(0));
    }

    #[test]
    fn kind_classification() {
        assert!(CallKind::Read.is_io() && CallKind::Read.is_data() && CallKind::Read.is_read());
        assert!(CallKind::MetaWrite.is_io() && !CallKind::MetaWrite.is_data());
        assert!(CallKind::MetaWrite.is_write());
        assert!(!CallKind::Barrier.is_io());
        assert!(!CallKind::Seek.is_io());
        assert_eq!(CallKind::ALL.len(), 12);
        // Names unique.
        let mut names: Vec<_> = CallKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}
