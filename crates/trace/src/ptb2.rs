//! `ptb2` — the columnar binary trace format (Portable Trace Blocks v2).
//!
//! `ptb` v1 stores row-major 45-byte frames: decoding is a per-record
//! scatter of eight field loads. v2 goes structure-of-arrays per block —
//! all ranks, then all timestamps, then all offsets, … — so decode
//! becomes a handful of branch-free columnar loops the compiler can
//! autovectorize, and per-column lightweight compression (frame-of-
//! reference, delta, dictionary, varint) shrinks blocks 2–4× on real
//! traces. Same CRC discipline as v1: every payload is CRC-32-checked,
//! length-prefixed, and the terminator carries the total record count.
//!
//! Container layout (all integers little-endian):
//!
//! ```text
//! header     := magic "PTB2" | meta_len u32 | meta JSON | crc32(meta) u32
//! block      := count u32 (> 0) | payload_len u32 | payload | crc32(payload) u32
//! terminator := 0 u32 | total_records u64 | crc32(total bytes) u32
//! payload    := rank_col | start_col | dur_col | offset_col | fd_col
//!               | phase_col | call_col | bytes_col
//! ```
//!
//! Column encodings:
//!
//! * **Integer columns** (`rank`, `start_ns`, `dur`, `offset`, `fd`,
//!   `phase`) are `tag u8 | base u64 | width u8 | residuals`, where the
//!   encoder picks per block whichever of two schemes is smaller:
//!   - tag 0, *frame-of-reference*: `base` is the column minimum and
//!     each of `count` residuals is `value - base` at `width` bytes;
//!   - tag 1, *delta*: `base` is the first value and each of
//!     `count - 1` residuals is the zigzag-encoded difference from the
//!     previous value at `width` bytes.
//!     `width` is the minimal byte width (0–8) for the residual range,
//!     so a constant column costs 10 bytes total regardless of block
//!     size.
//! * `dur` is the zigzag of `end_ns - start_ns` (wrapping), `fd` the
//!   zigzag of the descriptor — both map small signed values to small
//!   unsigned ones before the integer-column encoder runs.
//! * **`call_col`** is dictionary-coded: `dict_len u8 | dict codes |
//!   width u8 | indices`, the dictionary listing the block's distinct
//!   [`CallKind`] codes in order of first appearance. One kind per
//!   block (the common case in phase-locked traces) costs 0 bytes per
//!   record; otherwise one index byte per record.
//! * **`bytes_col`** is one LEB128 varint per record — sizes cluster
//!   near zero (barriers, metadata) or a few constants (transfers), so
//!   varints beat any fixed width.
//!
//! Wrapping arithmetic end to end means *every* `u64`/`i32` field
//! round-trips exactly, however adversarial — the property tests in
//! `tests/trace_formats.rs` drive the full field ranges.
//!
//! [`Ptb2BlockReader`] mirrors v1's streaming reader: reused buffers,
//! bounded allocation, and corruption/truncation errors that name the
//! failing block index and byte offset.

use crate::ptb::{
    bad_data, call_code, call_from_code, crc32, read_exact_ctx, read_header, write_header,
};
use crate::record::{CallKind, Record};
use crate::sink::RecordSink;
use crate::trace::{Trace, TraceMeta};
use std::io::{self, Read, Write};

/// Magic prefix; the fourth byte (`b'2'`) is the format version.
pub const PTB2_MAGIC: [u8; 4] = *b"PTB2";

/// Records per block written by [`write_ptb2`] / [`Ptb2Writer::new`].
/// Larger than v1's: column headers amortize and width choices improve
/// with more records per block, while the writer's buffer stays small
/// (4096 records ≈ 180 KiB of `Record`s).
pub const DEFAULT_BLOCK_RECORDS: usize = 4096;

/// Upper bound a reader accepts for one block's record count.
const MAX_BLOCK_RECORDS: u32 = 1 << 22;

/// Per-record worst case a legitimate encoder can produce: six integer
/// columns at 8 bytes, one call index byte, one 10-byte varint.
const MAX_BYTES_PER_RECORD: u64 = 6 * 8 + 1 + 10;

/// Column-header worst case: six integer columns (tag+base+width), the
/// call dictionary (len + 12 codes + width).
const MAX_COLUMN_OVERHEAD: u64 = 6 * 10 + 14;

/// Zigzag-map a signed value so small magnitudes become small unsigneds.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Minimal little-endian byte width for `max` (0 for an all-zero range).
#[inline]
fn width_for(max: u64) -> u8 {
    ((64 - max.leading_zeros() as usize).div_ceil(8)) as u8
}

/// Append the low `width` bytes of `v`.
#[inline]
fn put_fixed(out: &mut Vec<u8>, v: u64, width: u8) {
    out.extend_from_slice(&v.to_le_bytes()[..width as usize]);
}

/// Append `v` as a LEB128 varint.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decode one LEB128 varint from `src`, advancing `*p`. `None` on
/// overrun or a value that would exceed 64 bits.
#[inline]
fn take_varint(src: &[u8], p: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *src.get(*p)?;
        *p += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Decode `count` fixed-width values from `src` into `out` (appended).
/// The per-width loops are branch-free over the column — this is the
/// decode hot path, written so the common widths autovectorize.
fn decode_fixed(src: &[u8], width: u8, count: usize, out: &mut Vec<u64>) {
    out.reserve(count);
    match width {
        0 => out.extend(std::iter::repeat_n(0u64, count)),
        1 => out.extend(src.iter().take(count).map(|&b| b as u64)),
        2 => out.extend(
            src.chunks_exact(2)
                .take(count)
                .map(|c| u16::from_le_bytes([c[0], c[1]]) as u64),
        ),
        4 => out.extend(
            src.chunks_exact(4)
                .take(count)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u64),
        ),
        8 => out.extend(
            src.chunks_exact(8)
                .take(count)
                .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])),
        ),
        w => out.extend(src.chunks_exact(w as usize).take(count).map(|c| {
            let mut b = [0u8; 8];
            b[..w as usize].copy_from_slice(c);
            u64::from_le_bytes(b)
        })),
    }
}

/// Encode one integer column, choosing frame-of-reference or delta per
/// block — whichever is smaller for these `vals` (must be non-empty).
fn encode_int_column(vals: &[u64], out: &mut Vec<u8>) {
    let mut min = u64::MAX;
    let mut max = 0u64;
    for &v in vals {
        min = min.min(v);
        max = max.max(v);
    }
    let for_width = width_for(max - min);
    let mut delta_max = 0u64;
    for w in vals.windows(2) {
        delta_max = delta_max.max(zigzag(w[1].wrapping_sub(w[0]) as i64));
    }
    let delta_width = width_for(delta_max);
    let for_size = vals.len() * for_width as usize;
    let delta_size = (vals.len() - 1) * delta_width as usize;
    if delta_size < for_size {
        out.push(1);
        out.extend_from_slice(&vals[0].to_le_bytes());
        out.push(delta_width);
        for w in vals.windows(2) {
            put_fixed(out, zigzag(w[1].wrapping_sub(w[0]) as i64), delta_width);
        }
    } else {
        out.push(0);
        out.extend_from_slice(&min.to_le_bytes());
        out.push(for_width);
        for &v in vals {
            put_fixed(out, v.wrapping_sub(min), for_width);
        }
    }
}

/// A cursor over a CRC-validated block payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    block: u64,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(bad_data(format!(
                "ptb2: {what} overruns the payload of block {}",
                self.block
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> io::Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Decode one integer column of `count` values into `out` (cleared).
    fn int_column(&mut self, count: usize, what: &str, out: &mut Vec<u64>) -> io::Result<()> {
        out.clear();
        let tag = self.u8(what)?;
        let base = self.u64(what)?;
        let width = self.u8(what)?;
        if width > 8 {
            return Err(bad_data(format!(
                "ptb2: invalid width {width} in {what} (block {})",
                self.block
            )));
        }
        match tag {
            0 => {
                let src = self.take(count * width as usize, what)?;
                decode_fixed(src, width, count, out);
                for v in out.iter_mut() {
                    *v = base.wrapping_add(*v);
                }
            }
            1 => {
                let src = self.take((count - 1) * width as usize, what)?;
                out.push(base);
                decode_fixed(src, width, count - 1, out);
                // Prefix-sum the zigzag deltas in place.
                let mut prev = base;
                for v in out.iter_mut().skip(1) {
                    prev = prev.wrapping_add(unzigzag(*v) as u64);
                    *v = prev;
                }
            }
            t => {
                return Err(bad_data(format!(
                    "ptb2: unknown column tag {t} in {what} (block {})",
                    self.block
                )))
            }
        }
        Ok(())
    }
}

/// Columnar scratch shared by the writer and reader — one allocation
/// per stream, reused across blocks.
#[derive(Default)]
struct Columns {
    rank: Vec<u64>,
    start: Vec<u64>,
    dur: Vec<u64>,
    offset: Vec<u64>,
    fd: Vec<u64>,
    phase: Vec<u64>,
    bytes: Vec<u64>,
}

impl Columns {
    fn clear(&mut self) {
        self.rank.clear();
        self.start.clear();
        self.dur.clear();
        self.offset.clear();
        self.fd.clear();
        self.phase.clear();
        self.bytes.clear();
    }
}

/// Encode one block of records into `payload` (cleared first).
fn encode_block(records: &[Record], cols: &mut Columns, payload: &mut Vec<u8>) {
    debug_assert!(!records.is_empty());
    payload.clear();
    cols.clear();
    for r in records {
        cols.rank.push(r.rank as u64);
        cols.start.push(r.start_ns);
        cols.dur
            .push(zigzag(r.end_ns.wrapping_sub(r.start_ns) as i64));
        cols.offset.push(r.offset);
        cols.fd.push(zigzag(r.fd as i64));
        cols.phase.push(r.phase as u64);
    }
    encode_int_column(&cols.rank, payload);
    encode_int_column(&cols.start, payload);
    encode_int_column(&cols.dur, payload);
    encode_int_column(&cols.offset, payload);
    encode_int_column(&cols.fd, payload);
    encode_int_column(&cols.phase, payload);

    // Call kinds: dictionary in order of first appearance, then (unless
    // the block is single-kind) one index byte per record.
    let mut index_of = [u8::MAX; CallKind::ALL.len()];
    let mut dict: Vec<u8> = Vec::with_capacity(4);
    for r in records {
        let code = call_code(r.call) as usize;
        if index_of[code] == u8::MAX {
            index_of[code] = dict.len() as u8;
            dict.push(code as u8);
        }
    }
    payload.push(dict.len() as u8);
    payload.extend_from_slice(&dict);
    if dict.len() == 1 {
        payload.push(0);
    } else {
        payload.push(1);
        for r in records {
            payload.push(index_of[call_code(r.call) as usize]);
        }
    }

    // Sizes: one varint per record.
    for r in records {
        put_varint(payload, r.bytes);
    }
}

/// Decode one CRC-validated block payload into `records` (cleared).
fn decode_block(
    payload: &[u8],
    count: usize,
    block: u64,
    cols: &mut Columns,
    records: &mut Vec<Record>,
) -> io::Result<()> {
    let mut cur = Cursor {
        buf: payload,
        pos: 0,
        block,
    };
    cur.int_column(count, "rank column", &mut cols.rank)?;
    cur.int_column(count, "timestamp column", &mut cols.start)?;
    cur.int_column(count, "duration column", &mut cols.dur)?;
    cur.int_column(count, "offset column", &mut cols.offset)?;
    cur.int_column(count, "fd column", &mut cols.fd)?;
    cur.int_column(count, "phase column", &mut cols.phase)?;

    let dict_len = cur.u8("call dictionary")? as usize;
    if dict_len == 0 || dict_len > CallKind::ALL.len() {
        return Err(bad_data(format!(
            "ptb2: invalid call dictionary length {dict_len} (block {block})"
        )));
    }
    let mut dict = [CallKind::Open; CallKind::ALL.len()];
    for (i, &code) in cur.take(dict_len, "call dictionary")?.iter().enumerate() {
        dict[i] = call_from_code(code)?;
    }
    let idx_width = cur.u8("call indices")?;
    let calls: &[u8] = match idx_width {
        0 => &[],
        1 => cur.take(count, "call indices")?,
        w => {
            return Err(bad_data(format!(
                "ptb2: invalid call index width {w} (block {block})"
            )))
        }
    };
    if calls.iter().any(|&idx| idx as usize >= dict_len) {
        return Err(bad_data(format!(
            "ptb2: call index out of dictionary range (block {block})"
        )));
    }

    // Sizes: decode all varints in one tight pass over the raw slice —
    // per-record cursor calls are too slow for the assembly loop below.
    cols.bytes.clear();
    cols.bytes.reserve(count);
    for _ in 0..count {
        let Some(v) = take_varint(payload, &mut cur.pos) else {
            return Err(bad_data(format!(
                "ptb2: truncated or overlong varint in size column of block {block}"
            )));
        };
        cols.bytes.push(v);
    }

    // Range checks once per column (vectorizable scans), so the zip
    // below can cast without truncating adversarial payloads.
    let over_u32 = |col: &[u64]| col.iter().any(|&v| v > u32::MAX as u64);
    if over_u32(&cols.rank) || over_u32(&cols.phase) {
        return Err(bad_data(format!(
            "ptb2: rank/phase value exceeds u32 (block {block})"
        )));
    }
    if cols.fd.iter().any(|&v| i32::try_from(unzigzag(v)).is_err()) {
        return Err(bad_data(format!(
            "ptb2: fd value exceeds i32 (block {block})"
        )));
    }

    records.clear();
    records.reserve(count);
    let (rank, start) = (&cols.rank[..count], &cols.start[..count]);
    let (dur, offset) = (&cols.dur[..count], &cols.offset[..count]);
    let (fd, phase) = (&cols.fd[..count], &cols.phase[..count]);
    let bytes = &cols.bytes[..count];
    // Everything is validated column-wise above, so this loop is pure
    // branch-free assembly.
    for i in 0..count {
        records.push(Record {
            rank: rank[i] as u32,
            call: if idx_width == 0 {
                dict[0]
            } else {
                dict[calls[i] as usize]
            },
            fd: unzigzag(fd[i]) as i32,
            offset: offset[i],
            bytes: bytes[i],
            start_ns: start[i],
            end_ns: start[i].wrapping_add(unzigzag(dur[i]) as u64),
            phase: phase[i] as u32,
        });
    }
    if cur.pos != payload.len() {
        return Err(bad_data(format!(
            "ptb2: {} trailing payload bytes in block {block}",
            payload.len() - cur.pos
        )));
    }
    Ok(())
}

/// A streaming `ptb2` encoder that is also a [`RecordSink`] — the v2
/// counterpart of [`crate::ptb::PtbWriter`], with the same error-stash
/// contract on the sink path.
pub struct Ptb2Writer<W: Write> {
    w: W,
    buf: Vec<Record>,
    block_records: usize,
    cols: Columns,
    payload: Vec<u8>,
    total: u64,
    finished: bool,
    error: Option<io::Error>,
}

impl<W: Write> Ptb2Writer<W> {
    /// Write the header and return the encoder, using
    /// [`DEFAULT_BLOCK_RECORDS`] per block.
    pub fn new(w: W, meta: &TraceMeta) -> io::Result<Self> {
        Self::with_block_records(w, meta, DEFAULT_BLOCK_RECORDS)
    }

    /// [`Ptb2Writer::new`] with an explicit block size (clamped into
    /// `1..=MAX_BLOCK_RECORDS`).
    pub fn with_block_records(
        mut w: W,
        meta: &TraceMeta,
        block_records: usize,
    ) -> io::Result<Self> {
        write_header(&mut w, &PTB2_MAGIC, meta)?;
        let block_records = block_records.clamp(1, MAX_BLOCK_RECORDS as usize);
        Ok(Ptb2Writer {
            w,
            buf: Vec::with_capacity(block_records),
            block_records,
            cols: Columns::default(),
            payload: Vec::new(),
            total: 0,
            finished: false,
            error: None,
        })
    }

    /// Append one record, flushing a full block to the writer.
    pub fn push_record(&mut self, r: &Record) -> io::Result<()> {
        self.buf.push(r.clone());
        self.total += 1;
        if self.buf.len() >= self.block_records {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        encode_block(&self.buf, &mut self.cols, &mut self.payload);
        self.w.write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.w
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&self.payload)?;
        self.w.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.buf.clear();
        Ok(())
    }

    /// Flush the tail block and write the terminator. Idempotent.
    pub fn finish_mut(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.flush_block()?;
        self.w.write_all(&0u32.to_le_bytes())?;
        let total = self.total.to_le_bytes();
        self.w.write_all(&total)?;
        self.w.write_all(&crc32(&total).to_le_bytes())?;
        self.w.flush()?;
        self.finished = true;
        Ok(())
    }

    /// Finish and return the inner writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.finish_mut()?;
        Ok(self.w)
    }

    /// The first I/O error hit on the [`RecordSink`] path, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }

    fn stash(&mut self, res: io::Result<()>) {
        if let (Err(e), None) = (res, &self.error) {
            self.error = Some(e);
        }
    }
}

impl<W: Write> RecordSink for Ptb2Writer<W> {
    fn push(&mut self, r: &Record) {
        if self.error.is_none() {
            let res = self.push_record(r);
            self.stash(res);
        } else {
            // Still count, so a later error report is not misread as a
            // short trace.
            self.total += 1;
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            let res = self.finish_mut();
            self.stash(res);
        }
    }
}

/// A streaming `ptb2` decoder: one block of records at a time out of
/// buffers reused across calls.
pub struct Ptb2BlockReader<R: Read> {
    r: R,
    meta: TraceMeta,
    payload: Vec<u8>,
    cols: Columns,
    records: Vec<Record>,
    read: u64,
    block: u64,
    offset: u64,
    done: bool,
}

impl<R: Read> Ptb2BlockReader<R> {
    /// Read and validate the header.
    pub fn new(mut r: R) -> io::Result<Self> {
        let (meta, header_bytes) = read_header(&mut r, &PTB2_MAGIC, "ptb2")?;
        Ok(Ptb2BlockReader {
            r,
            meta,
            payload: Vec::new(),
            cols: Columns::default(),
            records: Vec::new(),
            read: 0,
            block: 0,
            offset: header_bytes,
            done: false,
        })
    }

    /// The trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    /// Data blocks decoded so far.
    pub fn blocks_read(&self) -> u64 {
        self.block
    }

    /// Decode the next block into an internal buffer; `Ok(None)` after
    /// a valid terminator. Truncation and corruption are I/O errors
    /// naming the failing block index and its byte offset in the file.
    pub fn next_block(&mut self) -> io::Result<Option<&[Record]>> {
        if self.done {
            return Ok(None);
        }
        let at = self.offset;
        let blk = self.block;
        let mut word = [0u8; 4];
        read_exact_ctx(
            &mut self.r,
            &mut word,
            &format!("ptb2 block {blk} header (byte offset {at})"),
        )?;
        let count = u32::from_le_bytes(word);
        if count == 0 {
            let what = format!("ptb2 terminator (byte offset {at})");
            let mut total = [0u8; 8];
            read_exact_ctx(&mut self.r, &mut total, &what)?;
            let mut crc = [0u8; 4];
            read_exact_ctx(&mut self.r, &mut crc, &what)?;
            if crc32(&total) != u32::from_le_bytes(crc) {
                return Err(bad_data(format!(
                    "ptb2: terminator CRC mismatch (byte offset {at})"
                )));
            }
            let expected = u64::from_le_bytes(total);
            if expected != self.read {
                return Err(bad_data(format!(
                    "ptb2: terminator expects {expected} records, read {}",
                    self.read
                )));
            }
            self.done = true;
            return Ok(None);
        }
        if count > MAX_BLOCK_RECORDS {
            return Err(bad_data(format!(
                "ptb2: implausible count {count} in block {blk} (byte offset {at})"
            )));
        }
        read_exact_ctx(
            &mut self.r,
            &mut word,
            &format!("ptb2 block {blk} payload length (byte offset {at})"),
        )?;
        let payload_len = u32::from_le_bytes(word) as u64;
        if payload_len > count as u64 * MAX_BYTES_PER_RECORD + MAX_COLUMN_OVERHEAD {
            return Err(bad_data(format!(
                "ptb2: implausible payload length {payload_len} for {count} records \
                 in block {blk} (byte offset {at})"
            )));
        }
        self.payload.resize(payload_len as usize, 0);
        read_exact_ctx(
            &mut self.r,
            &mut self.payload,
            &format!("ptb2 block {blk} payload (block starts at byte offset {at})"),
        )?;
        let mut crc = [0u8; 4];
        read_exact_ctx(
            &mut self.r,
            &mut crc,
            &format!("ptb2 block {blk} CRC (block starts at byte offset {at})"),
        )?;
        if crc32(&self.payload) != u32::from_le_bytes(crc) {
            return Err(bad_data(format!(
                "ptb2: CRC mismatch in block {blk} (block starts at byte offset {at})"
            )));
        }
        decode_block(
            &self.payload,
            count as usize,
            blk,
            &mut self.cols,
            &mut self.records,
        )?;
        self.read += count as u64;
        self.block += 1;
        self.offset += 4 + 4 + payload_len + 4;
        Ok(Some(&self.records))
    }
}

/// Write a whole trace as `ptb2`.
pub fn write_ptb2<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    let mut enc = Ptb2Writer::new(w, &trace.meta)?;
    for r in &trace.records {
        enc.push_record(r)?;
    }
    enc.finish_mut()
}

/// Read a whole trace previously written by [`write_ptb2`].
pub fn read_ptb2<R: Read>(r: R) -> io::Result<Trace> {
    let mut dec = Ptb2BlockReader::new(r)?;
    let mut trace = Trace::new(dec.meta().clone());
    while let Some(block) = dec.next_block()? {
        trace.records.extend_from_slice(block);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "ptb2".into(),
            platform: "test".into(),
            ranks: 8,
            seed: 42,
        });
        for i in 0..n {
            t.push(Record {
                rank: (i % 8) as u32,
                call: CallKind::ALL[(i % 12) as usize],
                fd: (i % 5) as i32 - 1,
                offset: i << 16,
                bytes: 4096 + i,
                start_ns: i * 1_000,
                end_ns: i * 1_000 + 500 + i,
                phase: (i / 100) as u32,
            });
        }
        t
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MIN, i64::MAX, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn width_for_covers_the_byte_ladder() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(255), 1);
        assert_eq!(width_for(256), 2);
        assert_eq!(width_for(u32::MAX as u64), 4);
        assert_eq!(width_for(u64::MAX), 8);
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut pos = 0usize;
        for &v in &vals {
            assert_eq!(take_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
        assert_eq!(take_varint(&buf, &mut pos), None);
        // Overlong: 10 continuation bytes would shift past 64 bits.
        assert_eq!(take_varint(&[0x80u8; 11], &mut 0), None);
    }

    #[test]
    fn int_column_round_trips_for_and_delta_shapes() {
        // Monotone (delta wins), constant (width 0), and adversarial
        // extremes (width 8 either way).
        for vals in [
            (0..1000u64).map(|i| i * 1000).collect::<Vec<_>>(),
            vec![7; 500],
            vec![u64::MAX, 0, u64::MAX / 2, 1, u64::MAX - 1],
            vec![3],
        ] {
            let mut buf = Vec::new();
            encode_int_column(&vals, &mut buf);
            let mut cur = Cursor {
                buf: &buf,
                pos: 0,
                block: 0,
            };
            let mut out = Vec::new();
            cur.int_column(vals.len(), "test", &mut out).unwrap();
            assert_eq!(out, vals);
            assert_eq!(cur.pos, buf.len());
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        for n in [0u64, 1, 255, 4096, 9000] {
            let t = sample(n);
            let mut buf = Vec::new();
            write_ptb2(&t, &mut buf).unwrap();
            let back = read_ptb2(std::io::Cursor::new(&buf)).unwrap();
            assert_eq!(back.meta, t.meta, "n={n}");
            assert_eq!(back.records, t.records, "n={n}");
        }
    }

    #[test]
    fn adversarial_field_extremes_round_trip() {
        let mut t = Trace::new(TraceMeta::default());
        for (i, (start, end)) in [
            (u64::MAX, 0u64),
            (0, u64::MAX),
            (u64::MAX, u64::MAX),
            (1, 2),
        ]
        .iter()
        .enumerate()
        {
            t.push(Record {
                rank: u32::MAX - i as u32,
                call: CallKind::Barrier,
                fd: if i % 2 == 0 { i32::MIN } else { i32::MAX },
                offset: u64::MAX - i as u64,
                bytes: u64::MAX / (i as u64 + 1),
                start_ns: *start,
                end_ns: *end,
                phase: u32::MAX,
            });
        }
        let mut buf = Vec::new();
        write_ptb2(&t, &mut buf).unwrap();
        assert_eq!(read_ptb2(std::io::Cursor::new(&buf)).unwrap(), t);
    }

    #[test]
    fn sink_capture_equals_batch_write() {
        let t = sample(7000);
        let mut batch = Vec::new();
        write_ptb2(&t, &mut batch).unwrap();
        let mut sink = Ptb2Writer::new(Vec::new(), &t.meta).unwrap();
        for r in &t.records {
            RecordSink::push(&mut sink, r);
        }
        RecordSink::finish(&mut sink);
        assert!(sink.error().is_none());
        assert_eq!(sink.records_written(), 7000);
        assert_eq!(sink.into_inner().unwrap(), batch);
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let t = sample(5000);
        let mut buf = Vec::new();
        write_ptb2(&t, &mut buf).unwrap();
        for cut in [2, 6, 40, buf.len() - 1, buf.len() - 10] {
            let err = read_ptb2(std::io::Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut={cut}: {err}");
            assert!(err.to_string().contains("truncated"), "cut={cut}: {err}");
        }
        // Dropping the whole terminator must also fail.
        let end_of_blocks = buf.len() - 16;
        assert!(read_ptb2(std::io::Cursor::new(&buf[..end_of_blocks])).is_err());
    }

    #[test]
    fn corruption_is_rejected_by_crc_with_block_context() {
        let t = sample(5000);
        let mut clean = Vec::new();
        write_ptb2(&t, &mut clean).unwrap();
        for pos in [9usize, clean.len() / 2, clean.len() - 6] {
            let mut buf = clean.clone();
            buf[pos] ^= 0x40;
            let err = read_ptb2(std::io::Cursor::new(&buf)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "pos={pos}: {err}");
        }
        // A payload flip names the block and byte offset.
        let mut buf = clean.clone();
        let mid = clean.len() / 2;
        buf[mid] ^= 0x40;
        let err = read_ptb2(std::io::Cursor::new(&buf)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("block") && msg.contains("byte offset"),
            "{msg}"
        );
    }

    #[test]
    fn unknown_version_is_rejected() {
        let t = sample(10);
        let mut buf = Vec::new();
        write_ptb2(&t, &mut buf).unwrap();
        buf[3] = b'9';
        let err = read_ptb2(std::io::Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        buf[0] = b'X';
        let err = read_ptb2(std::io::Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn block_reader_streams_and_counts() {
        let t = sample(10_000);
        let mut buf = Vec::new();
        write_ptb2(&t, &mut buf).unwrap();
        let mut dec = Ptb2BlockReader::new(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(dec.meta(), &t.meta);
        let mut seen = Vec::new();
        let mut blocks = 0;
        while let Some(block) = dec.next_block().unwrap() {
            assert!(block.len() <= DEFAULT_BLOCK_RECORDS);
            seen.extend_from_slice(block);
            blocks += 1;
        }
        assert_eq!(blocks, 3); // 4096 + 4096 + 1808
        assert_eq!(dec.blocks_read(), 3);
        assert_eq!(dec.records_read(), 10_000);
        assert_eq!(seen, t.records);
        assert!(dec.next_block().unwrap().is_none());
    }

    #[test]
    fn columnar_encoding_is_smaller_than_v1_frames() {
        // A realistic shape: strided offsets, near-constant sizes,
        // monotone timestamps, few call kinds.
        let mut t = Trace::new(TraceMeta::default());
        for i in 0..20_000u64 {
            t.push(Record {
                rank: (i % 64) as u32,
                call: if i % 4 == 0 {
                    CallKind::Read
                } else {
                    CallKind::Write
                },
                fd: 3,
                offset: (i % 64) << 24 | (i / 64) << 20,
                bytes: 1 << 20,
                start_ns: i * 50_000,
                end_ns: i * 50_000 + 2_000_000 + (i % 1000) * 300,
                phase: (i / 2500) as u32,
            });
        }
        let mut v1 = Vec::new();
        crate::ptb::write_ptb(&t, &mut v1).unwrap();
        let mut v2 = Vec::new();
        write_ptb2(&t, &mut v2).unwrap();
        assert!(
            v2.len() * 2 <= v1.len(),
            "ptb2 {} not >=2x smaller than ptb {}",
            v2.len(),
            v1.len()
        );
    }
}
