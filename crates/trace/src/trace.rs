//! The in-memory trace: a run's full record stream plus experiment
//! metadata, with the filters and aggregate queries the ensemble analysis
//! is built on.

use crate::record::{CallKind, Record};
use pio_des::{SimSpan, SimTime};
use serde::{Deserialize, Serialize};

/// Identification of the experiment a trace came from.
///
/// The paper distinguishes an *experiment* (a choice of test parameters)
/// from a *run* (one instance of executing it); `seed` is what varies
/// between runs of the same experiment here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceMeta {
    /// Experiment label, e.g. `ior-512m-1024`.
    pub experiment: String,
    /// Platform preset label, e.g. `franklin`.
    pub platform: String,
    /// Number of MPI ranks.
    pub ranks: u32,
    /// Master seed of the run.
    pub seed: u64,
}

/// A complete trace: metadata plus records in issue order per rank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Experiment identification.
    pub meta: TraceMeta,
    /// All records of the run.
    pub records: Vec<Record>,
}

impl Trace {
    /// An empty trace for `meta`.
    pub fn new(meta: TraceMeta) -> Self {
        Trace {
            meta,
            records: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Records of one call kind.
    pub fn of_kind(&self, kind: CallKind) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.call == kind)
    }

    /// Data-plane read/write records.
    pub fn data_records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(|r| r.call.is_data())
    }

    /// Records in one barrier phase.
    pub fn in_phase(&self, phase: u32) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.phase == phase)
    }

    /// Records of one rank.
    pub fn of_rank(&self, rank: u32) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.rank == rank)
    }

    /// Durations (seconds) of all records matching `pred`.
    pub fn durations_where<F: Fn(&Record) -> bool>(&self, pred: F) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| pred(r))
            .map(Record::secs)
            .collect()
    }

    /// Durations (seconds) of all records of `kind`.
    pub fn durations_of(&self, kind: CallKind) -> Vec<f64> {
        self.durations_where(|r| r.call == kind)
    }

    /// Total bytes moved by records of `kind`.
    pub fn bytes_of(&self, kind: CallKind) -> u64 {
        self.of_kind(kind).map(|r| r.bytes).sum()
    }

    /// Wall-clock span of the run (first start to last end), zero if empty.
    pub fn makespan(&self) -> SimSpan {
        let first = self.records.iter().map(|r| r.start_ns).min();
        let last = self.records.iter().map(|r| r.end_ns).max();
        match (first, last) {
            (Some(a), Some(b)) => SimSpan(b.saturating_sub(a)),
            _ => SimSpan::ZERO,
        }
    }

    /// End of the run as an instant.
    pub fn end_time(&self) -> SimTime {
        SimTime(self.records.iter().map(|r| r.end_ns).max().unwrap_or(0))
    }

    /// Number of barrier phases present (max phase index + 1).
    pub fn phase_count(&self) -> u32 {
        self.records.iter().map(|r| r.phase + 1).max().unwrap_or(0)
    }

    /// Aggregate data rate in MB/s over the whole run
    /// (total read+write bytes / makespan).
    pub fn aggregate_rate_mb_s(&self) -> f64 {
        let bytes: u64 = self.data_records().map(|r| r.bytes).sum();
        let secs = self.makespan().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        bytes as f64 / 1e6 / secs
    }

    /// Sort records by start time (rank-major traces interleave naturally).
    pub fn sort_by_start(&mut self) {
        self.records.sort_by_key(|r| (r.start_ns, r.rank, r.end_ns));
    }

    /// The rank whose records sum to the largest total I/O time
    /// (the paper's "slowest individual performer").
    pub fn slowest_rank(&self) -> Option<(u32, f64)> {
        if self.records.is_empty() {
            return None;
        }
        let mut per_rank = std::collections::HashMap::new();
        for r in self.records.iter().filter(|r| r.call.is_io()) {
            *per_rank.entry(r.rank).or_insert(0.0) += r.secs();
        }
        per_rank.into_iter().max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Records overlapping the virtual-time window `[t0, t1)` — for
    /// zooming into one plateau or tail of a rate curve.
    pub fn window(&self, t0: SimTime, t1: SimTime) -> Trace {
        Trace {
            meta: self.meta.clone(),
            records: self
                .records
                .iter()
                .filter(|r| r.start_ns < t1.nanos() && r.end_ns > t0.nanos())
                .cloned()
                .collect(),
        }
    }

    /// Merge another trace of the same experiment (e.g. per-rank shards
    /// collected separately, as a real IPM deployment would produce) into
    /// this one, keeping start-time order.
    pub fn merge(&mut self, other: &Trace) {
        self.records.extend(other.records.iter().cloned());
        self.sort_by_start();
    }

    /// One rank's records in program (start-time) order.
    pub fn rank_timeline(&self, rank: u32) -> Vec<&Record> {
        let mut v: Vec<&Record> = self.of_rank(rank).collect();
        v.sort_by_key(|r| (r.start_ns, r.end_ns));
        v
    }

    /// Basic well-formedness: every record has `end >= start`, every I/O
    /// record has nonzero bytes, and phases are nondecreasing per rank.
    /// Returns the first violation description, if any.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_phase: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (i, r) in self.records.iter().enumerate() {
            if r.end_ns < r.start_ns {
                return Err(format!("record {i}: end before start"));
            }
            if r.call.is_io() && r.bytes == 0 {
                return Err(format!("record {i}: zero-byte {}", r.call.name()));
            }
            let lp = last_phase.entry(r.rank).or_insert(0);
            if r.phase < *lp {
                return Err(format!(
                    "record {i}: phase went backwards on rank {}",
                    r.rank
                ));
            }
            *lp = r.phase;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, call: CallKind, bytes: u64, start: u64, end: u64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: start,
            end_ns: end,
            phase,
        }
    }

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "unit".into(),
            platform: "test".into(),
            ranks: 2,
            seed: 1,
        });
        t.push(rec(0, CallKind::Write, 1000, 0, 2_000_000_000, 0));
        t.push(rec(1, CallKind::Write, 1000, 0, 4_000_000_000, 0));
        t.push(rec(
            0,
            CallKind::Barrier,
            0,
            2_000_000_000,
            4_000_000_000,
            0,
        ));
        t.push(rec(0, CallKind::Read, 500, 4_000_000_000, 5_000_000_000, 1));
        t.push(rec(
            1,
            CallKind::MetaWrite,
            3,
            4_000_000_000,
            4_100_000_000,
            1,
        ));
        t
    }

    #[test]
    fn filters_and_aggregates() {
        let t = sample();
        assert_eq!(t.of_kind(CallKind::Write).count(), 2);
        assert_eq!(t.data_records().count(), 3);
        assert_eq!(t.in_phase(1).count(), 2);
        assert_eq!(t.of_rank(0).count(), 3);
        assert_eq!(t.bytes_of(CallKind::Write), 2000);
        assert_eq!(t.phase_count(), 2);
        assert_eq!(t.makespan(), SimSpan::from_secs(5));
        let durs = t.durations_of(CallKind::Write);
        assert_eq!(durs, vec![2.0, 4.0]);
    }

    #[test]
    fn aggregate_rate() {
        let t = sample();
        // 2500 data bytes over 5 s = 500 B/s = 5e-4 MB/s.
        assert!((t.aggregate_rate_mb_s() - 5e-4).abs() < 1e-12);
    }

    #[test]
    fn slowest_rank_is_total_io_time() {
        let t = sample();
        // rank0: 2s write + 1s read = 3s; rank1: 4s + 0.1s = 4.1s.
        let (rank, secs) = t.slowest_rank().unwrap();
        assert_eq!(rank, 1);
        assert!((secs - 4.1).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_sample_and_rejects_corruption() {
        let mut t = sample();
        assert!(t.validate().is_ok());
        t.push(rec(0, CallKind::Write, 0, 0, 1, 1));
        assert!(t.validate().unwrap_err().contains("zero-byte"));
        let mut t2 = sample();
        t2.push(rec(0, CallKind::Read, 5, 9, 8, 1));
        assert!(t2.validate().unwrap_err().contains("end before start"));
        let mut t3 = sample();
        t3.push(rec(0, CallKind::Read, 5, 9_000_000_000, 9_100_000_000, 0));
        assert!(t3.validate().unwrap_err().contains("phase went backwards"));
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::default();
        assert_eq!(t.makespan(), SimSpan::ZERO);
        assert_eq!(t.phase_count(), 0);
        assert_eq!(t.aggregate_rate_mb_s(), 0.0);
        assert!(t.slowest_rank().is_none());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn window_keeps_overlapping_records() {
        let t = sample();
        // Window [2.5s, 4.5s): overlaps the rank-1 write (0..4), the
        // barrier (2..4), and the phase-1 ops starting at 4.
        let w = t.window(SimTime::from_secs_f64(2.5), SimTime::from_secs_f64(4.5));
        assert_eq!(w.records.len(), 4);
        assert!(w.records.iter().all(|r| r.start_ns < 4_500_000_000));
        // Empty window.
        let e = t.window(SimTime::from_secs(100), SimTime::from_secs(200));
        assert!(e.records.is_empty());
    }

    #[test]
    fn merge_combines_shards_in_order() {
        let full = sample();
        let mut shard0 = Trace::new(full.meta.clone());
        let mut shard1 = Trace::new(full.meta.clone());
        for r in &full.records {
            if r.rank == 0 {
                shard0.push(r.clone());
            } else {
                shard1.push(r.clone());
            }
        }
        shard0.merge(&shard1);
        assert_eq!(shard0.records.len(), full.records.len());
        let starts: Vec<u64> = shard0.records.iter().map(|r| r.start_ns).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        assert_eq!(
            shard0.bytes_of(CallKind::Write),
            full.bytes_of(CallKind::Write)
        );
    }

    #[test]
    fn rank_timeline_is_ordered_per_rank() {
        let t = sample();
        let tl = t.rank_timeline(0);
        assert_eq!(tl.len(), 3);
        assert!(tl.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(tl.iter().all(|r| r.rank == 0));
    }

    #[test]
    fn sort_by_start_orders_records() {
        let mut t = sample();
        t.records.reverse();
        t.sort_by_start();
        let starts: Vec<u64> = t.records.iter().map(|r| r.start_ns).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
