//! Trace serialization: JSONL (one record per line, as IPM-I/O "emits the
//! entire trace"), the binary [`ptb`](crate::ptb) / [`ptb2`](crate::ptb2)
//! formats, and CSV for plotting tools. [`load`] sniffs the on-disk
//! format from the file's leading bytes via the codec registry
//! ([`crate::codec`]), so every consumer transparently reads them all.

use crate::trace::{Trace, TraceMeta};
use std::io::{BufRead, Write};

/// An on-disk trace encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Text: one JSON object per line (meta first).
    Jsonl,
    /// Binary v1: CRC-checked fixed-width record blocks (row-major).
    Ptb,
    /// Binary v2: CRC-checked columnar blocks with per-column
    /// compression (see [`crate::ptb2`]).
    Ptb2,
}

impl TraceFormat {
    /// Every known format, binary formats first (sniffing order).
    pub const ALL: [TraceFormat; 3] = [TraceFormat::Ptb2, TraceFormat::Ptb, TraceFormat::Jsonl];

    /// Parse a user-facing format name (`"jsonl"` / `"ptb"` / `"ptb2"`).
    pub fn from_name(name: &str) -> Option<TraceFormat> {
        match name {
            "jsonl" => Some(TraceFormat::Jsonl),
            "ptb" => Some(TraceFormat::Ptb),
            "ptb2" => Some(TraceFormat::Ptb2),
            _ => None,
        }
    }

    /// The canonical name (also the conventional file extension).
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Ptb => "ptb",
            TraceFormat::Ptb2 => "ptb2",
        }
    }

    /// Infer a format from a path's extension (`t.ptb2` → `Ptb2`).
    pub fn from_extension(path: &std::path::Path) -> Option<TraceFormat> {
        path.extension()
            .and_then(|e| e.to_str())
            .and_then(TraceFormat::from_name)
    }

    /// Classify leading file bytes via the codec registry.
    ///
    /// Heads shorter than any magic prefix, `PTB` files with an unknown
    /// version byte, and content no codec claims are all a clean
    /// [`std::io::ErrorKind::Unsupported`] error — never a panic or a
    /// misdetection.
    pub fn sniff_bytes(head: &[u8]) -> std::io::Result<TraceFormat> {
        crate::codec::sniff_codec(head).map(|c| c.format())
    }

    /// Sniff a file's format from its first bytes.
    pub fn sniff(path: &std::path::Path) -> std::io::Result<TraceFormat> {
        use std::io::Read;
        let mut head = [0u8; 8];
        let mut f = std::fs::File::open(path)?;
        let mut n = 0;
        // File reads may return short counts; fill what we can.
        while n < head.len() {
            let got = f.read(&mut head[n..])?;
            if got == 0 {
                break;
            }
            n += got;
        }
        TraceFormat::sniff_bytes(&head[..n])
    }
}

/// Write `trace` as a JSONL stream: first line the metadata, then one
/// record per line.
pub fn write_jsonl<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    serde_json::to_writer(&mut w, &trace.meta)?;
    w.write_all(b"\n")?;
    for r in &trace.records {
        serde_json::to_writer(&mut w, r)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a trace previously written by [`write_jsonl`].
///
/// Record lines go through the fast scanner in [`crate::jsonl`] (with
/// `serde_json` as the strict fallback) and the line buffer is reused,
/// so the hot loop does no per-record allocation beyond the records
/// themselves.
pub fn read_jsonl<R: BufRead>(mut r: R) -> std::io::Result<Trace> {
    let mut buf = String::new();
    if r.read_line(&mut buf)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "empty trace stream",
        ));
    }
    let meta: TraceMeta = serde_json::from_str(buf.trim_end())?;
    let mut trace = Trace::new(meta);
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        trace.push(crate::jsonl::parse_record(line)?);
    }
    Ok(trace)
}

/// Write records as CSV with a header row.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "rank,call,fd,offset,bytes,start_s,end_s,duration_s,phase"
    )?;
    for r in &trace.records {
        writeln!(
            w,
            "{},{},{},{},{},{:.9},{:.9},{:.9},{}",
            r.rank,
            r.call.name(),
            r.fd,
            r.offset,
            r.bytes,
            r.start().as_secs_f64(),
            r.end().as_secs_f64(),
            r.secs(),
            r.phase
        )?;
    }
    Ok(())
}

/// Save a trace to a file (JSONL).
pub fn save(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    save_as(trace, path, TraceFormat::Jsonl)
}

/// Save a trace to a file in an explicit format (via the codec
/// registry — see [`crate::codec`]).
pub fn save_as(trace: &Trace, path: &std::path::Path, format: TraceFormat) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(f);
    crate::codec::codec_for(format).write(trace, &mut w)
}

/// Load a trace from a file, sniffing the format from its bytes.
pub fn load(path: &std::path::Path) -> std::io::Result<Trace> {
    let format = TraceFormat::sniff(path)?;
    let f = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(f);
    crate::codec::codec_for(format).read(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CallKind, Record};

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "roundtrip".into(),
            platform: "franklin".into(),
            ranks: 4,
            seed: 99,
        });
        for i in 0..10 {
            t.push(Record {
                rank: i % 4,
                call: if i % 2 == 0 {
                    CallKind::Write
                } else {
                    CallKind::Read
                },
                fd: 3,
                offset: i as u64 * 1024,
                bytes: 1024,
                start_ns: i as u64 * 1_000_000,
                end_ns: i as u64 * 1_000_000 + 500_000,
                phase: i / 5,
            });
        }
        t
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn jsonl_tolerates_blank_lines() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.records.len(), t.records.len());
    }

    #[test]
    fn empty_stream_is_an_error() {
        let err = read_jsonl(std::io::Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with("rank,call"));
        assert!(lines[1].starts_with("0,write,3,0,1024,"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pio_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let t = sample();
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.records, t.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_sniffs_every_format() {
        let dir = std::env::temp_dir().join("pio_trace_io_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample();
        // Deliberately mismatched extensions: only the bytes matter.
        for (fname, format) in [
            ("binary.jsonl", TraceFormat::Ptb),
            ("text.ptb", TraceFormat::Jsonl),
            ("columnar.ptb", TraceFormat::Ptb2),
        ] {
            let p = dir.join(fname);
            save_as(&t, &p, format).unwrap();
            assert_eq!(TraceFormat::sniff(&p).unwrap(), format);
            let back = load(&p).unwrap();
            assert_eq!(back.meta, t.meta);
            assert_eq!(back.records, t.records);
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn format_names_round_trip() {
        for f in TraceFormat::ALL {
            assert_eq!(TraceFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(TraceFormat::from_name("csv"), None);
    }

    #[test]
    fn from_extension_maps_known_extensions_only() {
        use std::path::Path;
        assert_eq!(
            TraceFormat::from_extension(Path::new("a/b.ptb2")),
            Some(TraceFormat::Ptb2)
        );
        assert_eq!(
            TraceFormat::from_extension(Path::new("t.ptb")),
            Some(TraceFormat::Ptb)
        );
        assert_eq!(
            TraceFormat::from_extension(Path::new("t.jsonl")),
            Some(TraceFormat::Jsonl)
        );
        assert_eq!(TraceFormat::from_extension(Path::new("t.csv")), None);
        assert_eq!(TraceFormat::from_extension(Path::new("noext")), None);
    }

    #[test]
    fn sniff_bytes_rejects_short_heads_cleanly() {
        for head in [&b""[..], &b"P"[..], &b"PTB"[..]] {
            let err = TraceFormat::sniff_bytes(head).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::Unsupported, "head={head:?}");
        }
        assert_eq!(
            TraceFormat::sniff_bytes(b"PTB1....").unwrap(),
            TraceFormat::Ptb
        );
        assert_eq!(
            TraceFormat::sniff_bytes(b"PTB2....").unwrap(),
            TraceFormat::Ptb2
        );
        assert_eq!(
            TraceFormat::sniff_bytes(b"{\"experiment\"").unwrap(),
            TraceFormat::Jsonl
        );
    }
}
