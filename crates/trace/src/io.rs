//! Trace serialization: JSONL (one record per line, as IPM-I/O "emits the
//! entire trace") and CSV for plotting tools.

use crate::record::Record;
use crate::trace::{Trace, TraceMeta};
use std::io::{BufRead, Write};

/// Write `trace` as a JSONL stream: first line the metadata, then one
/// record per line.
pub fn write_jsonl<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    serde_json::to_writer(&mut w, &trace.meta)?;
    w.write_all(b"\n")?;
    for r in &trace.records {
        serde_json::to_writer(&mut w, r)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a trace previously written by [`write_jsonl`].
pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Trace> {
    let mut lines = r.lines();
    let meta: TraceMeta = match lines.next() {
        Some(line) => serde_json::from_str(&line?)?,
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "empty trace stream",
            ))
        }
    };
    let mut trace = Trace::new(meta);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: Record = serde_json::from_str(&line)?;
        trace.push(rec);
    }
    Ok(trace)
}

/// Write records as CSV with a header row.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "rank,call,fd,offset,bytes,start_s,end_s,duration_s,phase"
    )?;
    for r in &trace.records {
        writeln!(
            w,
            "{},{},{},{},{},{:.9},{:.9},{:.9},{}",
            r.rank,
            r.call.name(),
            r.fd,
            r.offset,
            r.bytes,
            r.start().as_secs_f64(),
            r.end().as_secs_f64(),
            r.secs(),
            r.phase
        )?;
    }
    Ok(())
}

/// Save a trace to a file (JSONL).
pub fn save(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_jsonl(trace, std::io::BufWriter::new(f))
}

/// Load a trace from a file (JSONL).
pub fn load(path: &std::path::Path) -> std::io::Result<Trace> {
    let f = std::fs::File::open(path)?;
    read_jsonl(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CallKind;

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "roundtrip".into(),
            platform: "franklin".into(),
            ranks: 4,
            seed: 99,
        });
        for i in 0..10 {
            t.push(Record {
                rank: i % 4,
                call: if i % 2 == 0 {
                    CallKind::Write
                } else {
                    CallKind::Read
                },
                fd: 3,
                offset: i as u64 * 1024,
                bytes: 1024,
                start_ns: i as u64 * 1_000_000,
                end_ns: i as u64 * 1_000_000 + 500_000,
                phase: i / 5,
            });
        }
        t
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn jsonl_tolerates_blank_lines() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.records.len(), t.records.len());
    }

    #[test]
    fn empty_stream_is_an_error() {
        let err = read_jsonl(std::io::Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with("rank,call"));
        assert!(lines[1].starts_with("0,write,3,0,1024,"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pio_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let t = sample();
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.records, t.records);
        std::fs::remove_file(&path).ok();
    }
}
