//! The hot JSONL record parser: a hand-rolled single-pass field scanner
//! with `serde_json` kept as the strict fallback.
//!
//! A trace line is overwhelmingly the canonical shape
//! `{"rank":0,"call":"Write","fd":3,...}` that [`crate::io::write_jsonl`]
//! emits. [`parse_record`] recognizes exactly that easy subset — all
//! eight fields present once, integer values, a plain-string call name,
//! optional JSON whitespace — directly from the bytes, with no
//! intermediate value tree and no allocation. *Anything* else (escapes,
//! floats, duplicate or unknown keys, overflow, trailing garbage) makes
//! the scanner bail to [`serde_json::from_str`], so accepted lines and
//! error behavior are identical to the strict parser by construction;
//! `tests/trace_formats.rs` checks the agreement differentially.

use crate::record::{CallKind, Record};
use std::io;

/// Parse one JSONL trace line: fast scanner first, `serde_json` for
/// anything the scanner does not recognize.
pub fn parse_record(line: &str) -> io::Result<Record> {
    match parse_record_fast(line) {
        Some(r) => Ok(r),
        None => Ok(serde_json::from_str::<Record>(line)?),
    }
}

/// The fast path alone: `Some` only for the canonical subset it fully
/// understands. Exposed so tests can differentially compare it against
/// `serde_json` — a `None` is never wrong, a `Some` must agree.
pub fn parse_record_fast(line: &str) -> Option<Record> {
    let mut s = Scanner {
        b: line.as_bytes(),
        i: 0,
    };
    s.skip_ws();
    if !s.eat(b'{') {
        return None;
    }
    // Field presence bitmask, in Record declaration order.
    const RANK: u8 = 1 << 0;
    const CALL: u8 = 1 << 1;
    const FD: u8 = 1 << 2;
    const OFFSET: u8 = 1 << 3;
    const BYTES: u8 = 1 << 4;
    const START: u8 = 1 << 5;
    const END: u8 = 1 << 6;
    const PHASE: u8 = 1 << 7;
    let mut seen = 0u8;
    let mut rec = Record {
        rank: 0,
        call: CallKind::Open,
        fd: 0,
        offset: 0,
        bytes: 0,
        start_ns: 0,
        end_ns: 0,
        phase: 0,
    };
    loop {
        s.skip_ws();
        if s.eat(b'}') {
            break;
        }
        if seen != 0 && !s.eat(b',') {
            return None;
        }
        s.skip_ws();
        let key = s.string()?;
        s.skip_ws();
        if !s.eat(b':') {
            return None;
        }
        s.skip_ws();
        let bit = match key {
            b"rank" => RANK,
            b"call" => CALL,
            b"fd" => FD,
            b"offset" => OFFSET,
            b"bytes" => BYTES,
            b"start_ns" => START,
            b"end_ns" => END,
            b"phase" => PHASE,
            // Unknown key: serde ignores it, but its value could be any
            // JSON — let the strict parser deal with the whole line.
            _ => return None,
        };
        if seen & bit != 0 {
            // Duplicate key: serde takes the first occurrence; bail so
            // behavior stays identical.
            return None;
        }
        seen |= bit;
        match bit {
            RANK => rec.rank = s.uint_u32()?,
            FD => rec.fd = s.int_i32()?,
            OFFSET => rec.offset = s.uint()?,
            BYTES => rec.bytes = s.uint()?,
            START => rec.start_ns = s.uint()?,
            END => rec.end_ns = s.uint()?,
            PHASE => rec.phase = s.uint_u32()?,
            _ => rec.call = call_by_name(s.string()?)?,
        }
    }
    s.skip_ws();
    if s.i != s.b.len() {
        return None; // Trailing garbage.
    }
    if seen != 0xFF {
        return None; // Missing field; serde's error names it.
    }
    Some(rec)
}

/// Variant-name lookup matching the serde unit-variant encoding.
fn call_by_name(name: &[u8]) -> Option<CallKind> {
    Some(match name {
        b"Open" => CallKind::Open,
        b"Close" => CallKind::Close,
        b"Read" => CallKind::Read,
        b"Write" => CallKind::Write,
        b"Seek" => CallKind::Seek,
        b"MetaRead" => CallKind::MetaRead,
        b"MetaWrite" => CallKind::MetaWrite,
        b"Flush" => CallKind::Flush,
        b"Barrier" => CallKind::Barrier,
        b"Send" => CallKind::Send,
        b"Recv" => CallKind::Recv,
        b"Compute" => CallKind::Compute,
        _ => return None,
    })
}

struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Scanner<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// A quoted string with no escapes; `None` on `\` or missing quote.
    fn string(&mut self) -> Option<&'a [u8]> {
        if !self.eat(b'"') {
            return None;
        }
        let start = self.i;
        loop {
            match self.b.get(self.i)? {
                b'"' => {
                    let s = &self.b[start..self.i];
                    self.i += 1;
                    return Some(s);
                }
                b'\\' => return None,
                _ => self.i += 1,
            }
        }
    }

    /// A plain decimal magnitude: 1–19 digits, no leading zeros, no
    /// sign, fraction, or exponent (all of those fall back).
    fn digits(&mut self) -> Option<u64> {
        let start = self.i;
        let mut v: u64 = 0;
        while let Some(&c) = self.b.get(self.i) {
            if c.is_ascii_digit() {
                v = v.checked_mul(10)?.checked_add((c - b'0') as u64)?;
                self.i += 1;
            } else {
                break;
            }
        }
        let len = self.i - start;
        if len == 0 || (len > 1 && self.b[start] == b'0') {
            return None;
        }
        // A fraction or exponent would make this a float — bail.
        if matches!(self.b.get(self.i), Some(b'.' | b'e' | b'E')) {
            return None;
        }
        Some(v)
    }

    /// Non-negative integer (u64 field). A leading `-` falls back: the
    /// strict parser decides whether `-0` converts or errors.
    fn uint(&mut self) -> Option<u64> {
        if self.b.get(self.i) == Some(&b'-') {
            return None;
        }
        self.digits()
    }

    /// Non-negative integer narrowed to u32 (`rank`, `phase`); a value
    /// out of range falls back so serde reports the conversion error.
    fn uint_u32(&mut self) -> Option<u32> {
        u32::try_from(self.uint()?).ok()
    }

    /// Signed integer narrowed to i32 (the `fd` field).
    fn int_i32(&mut self) -> Option<i32> {
        let neg = self.eat(b'-');
        let mag = self.digits()? as i128;
        let v = if neg { -mag } else { mag };
        i32::try_from(v).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(line: &str) -> Option<Record> {
        serde_json::from_str::<Record>(line).ok()
    }

    #[test]
    fn fast_path_accepts_canonical_lines() {
        let line = r#"{"rank":7,"call":"MetaWrite","fd":-1,"offset":65536,"bytes":4096,"start_ns":12345,"end_ns":99999,"phase":2}"#;
        let r = parse_record_fast(line).expect("fast path");
        assert_eq!(r, strict(line).unwrap());
        assert_eq!(r.rank, 7);
        assert_eq!(r.call, CallKind::MetaWrite);
        assert_eq!(r.fd, -1);
    }

    #[test]
    fn whitespace_and_field_order_are_tolerated() {
        let line = "{ \"phase\": 1 , \"call\": \"Read\", \"rank\": 3, \"fd\": 0,\n \"offset\": 0, \"bytes\": 1, \"start_ns\": 2, \"end_ns\": 3 }\r\n";
        assert_eq!(parse_record_fast(line), strict(line));
        assert!(parse_record_fast(line).is_some());
    }

    #[test]
    fn hard_cases_fall_back_and_still_agree() {
        // Each of these must not be accepted by the fast path; the
        // public parse_record must still agree with serde on them.
        let lines = [
            r#"{"rank":1e3,"call":"Read","fd":3,"offset":0,"bytes":1,"start_ns":0,"end_ns":1,"phase":0}"#,
            r#"{"rank":-0,"call":"Read","fd":3,"offset":0,"bytes":1,"start_ns":0,"end_ns":1,"phase":0}"#,
            r#"{"rank":1,"rank":2,"call":"Read","fd":3,"offset":0,"bytes":1,"start_ns":0,"end_ns":1,"phase":0}"#,
            r#"{"rank":1,"call":"Read","fd":3,"offset":0,"bytes":1,"start_ns":0,"end_ns":1,"phase":0,"extra":[1,2]}"#,
            r#"{"rank":1,"call":"Read","fd":3}"#,
            r#"{"rank":99999999999,"call":"Read","fd":3,"offset":0,"bytes":1,"start_ns":0,"end_ns":1,"phase":0}"#,
            r#"{"rank":1,"call":"Bogus","fd":3,"offset":0,"bytes":1,"start_ns":0,"end_ns":1,"phase":0}"#,
            "not json at all",
            "",
        ];
        for line in lines {
            assert!(parse_record_fast(line).is_none(), "fast accepted {line:?}");
            assert_eq!(
                parse_record(line).ok(),
                strict(line),
                "disagree on {line:?}"
            );
        }
    }

    #[test]
    fn full_u64_range_round_trips() {
        let line = format!(
            r#"{{"rank":0,"call":"Write","fd":3,"offset":{max},"bytes":{max},"start_ns":0,"end_ns":{max},"phase":0}}"#,
            max = u64::MAX
        );
        let r = parse_record_fast(&line).expect("u64::MAX fits the fast path");
        assert_eq!(r.offset, u64::MAX);
        assert_eq!(r, strict(&line).unwrap());
    }
}
