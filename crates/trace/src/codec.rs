//! The [`TraceCodec`] abstraction: one object per on-disk trace format,
//! with uniform sniff / read / write / stream entry points and a static
//! registry.
//!
//! Before this existed, every consumer (`mktrace`, `analyze`,
//! `trace_convert`, `stream_file`, …) carried its own
//! `match TraceFormat { … }` arm over the free functions in [`crate::io`]
//! and [`crate::ptb`]; adding a format meant editing every call site.
//! Now a format is one `TraceCodec` impl plus one registry entry —
//! `ptb2` was added exactly that way — and call sites go through
//! [`codec_for`] / [`sniff_codec`].
//!
//! Streaming goes through the same trait: [`TraceCodec::stream`] decodes
//! incrementally into a [`RecordSink`], synthesizing barrier-phase
//! boundaries via [`PhaseTracker`] so online consumers (`pio-ingest`,
//! `pio-fleetd`) see identical event sequences whatever the encoding.

use crate::io::{read_jsonl, write_jsonl, TraceFormat};
use crate::ptb::{read_ptb, write_ptb, PtbBlockReader, PTB_MAGIC};
use crate::ptb2::{read_ptb2, write_ptb2, Ptb2BlockReader, PTB2_MAGIC};
use crate::record::Record;
use crate::sink::RecordSink;
use crate::trace::{Trace, TraceMeta};
use std::io::{self, BufRead, Write};

/// Tracks phase progression in a record stream and synthesizes
/// [`RecordSink::phase_end`] events.
///
/// The stream completes phases in order, so when a record's phase index
/// jumps from `p` to `q > p`, every phase in `p..q` has ended. Shared by
/// every codec's [`stream`](TraceCodec::stream) implementation so phase
/// boundaries are format-independent.
pub struct PhaseTracker {
    phase: u32,
    saw_record: bool,
}

impl PhaseTracker {
    /// A tracker that has seen no records yet.
    pub fn new() -> Self {
        PhaseTracker {
            phase: 0,
            saw_record: false,
        }
    }

    /// Observe one record *before* pushing it, firing `phase_end` for
    /// every phase the stream has just completed.
    pub fn on_record(&mut self, rec: &Record, sink: &mut dyn RecordSink) {
        if self.saw_record && rec.phase > self.phase {
            for p in self.phase..rec.phase {
                sink.phase_end(p);
            }
        }
        self.phase = self.phase.max(rec.phase);
        self.saw_record = true;
    }

    /// Observe a decoded block and push it: runs of records that share
    /// the current phase flow to the sink via
    /// [`RecordSink::push_block`], with `phase_end` fired at exactly
    /// the positions the per-record loop would fire it. The sink sees
    /// the same event sequence as `on_record` + `push` per record; only
    /// the granularity of delivery changes.
    pub fn on_block(&mut self, block: &[Record], sink: &mut dyn RecordSink) {
        let mut start = 0;
        for (i, rec) in block.iter().enumerate() {
            if self.saw_record {
                if rec.phase > self.phase {
                    if start < i {
                        sink.push_block(&block[start..i]);
                        start = i;
                    }
                    for p in self.phase..rec.phase {
                        sink.phase_end(p);
                    }
                    self.phase = rec.phase;
                }
            } else {
                self.phase = self.phase.max(rec.phase);
                self.saw_record = true;
            }
        }
        if start < block.len() {
            sink.push_block(&block[start..]);
        }
    }

    /// End of stream: close the final phase (if any) and call
    /// `sink.finish()`.
    pub fn finish(&mut self, sink: &mut dyn RecordSink) {
        if self.saw_record {
            sink.phase_end(self.phase);
        }
        sink.finish();
    }
}

impl Default for PhaseTracker {
    fn default() -> Self {
        PhaseTracker::new()
    }
}

/// One on-disk trace encoding, with every entry point a consumer needs.
///
/// Implementations are stateless unit structs registered in the static
/// codec table; call sites hold `&'static dyn TraceCodec`.
pub trait TraceCodec: Sync {
    /// The [`TraceFormat`] tag this codec implements.
    fn format(&self) -> TraceFormat;

    /// Canonical format name (also the conventional file extension).
    fn name(&self) -> &'static str {
        self.format().name()
    }

    /// Whether `head` (a file's leading bytes, possibly fewer than
    /// requested) identifies this codec's encoding.
    fn sniff(&self, head: &[u8]) -> bool;

    /// Read a whole trace.
    fn read(&self, r: &mut dyn BufRead) -> io::Result<Trace>;

    /// Write a whole trace.
    fn write(&self, trace: &Trace, w: &mut dyn Write) -> io::Result<()>;

    /// Stream a trace into `sink` without materializing it: one record
    /// (text) or one block (binary) in memory at a time, phase
    /// boundaries synthesized, `sink.finish()` called at end of stream.
    /// Returns the trace metadata and the number of records streamed.
    fn stream(
        &self,
        r: &mut dyn BufRead,
        sink: &mut dyn RecordSink,
    ) -> io::Result<(TraceMeta, u64)>;
}

/// The JSONL text codec (metadata line, then one record per line).
pub struct JsonlCodec;

impl TraceCodec for JsonlCodec {
    fn format(&self) -> TraceFormat {
        TraceFormat::Jsonl
    }

    fn sniff(&self, head: &[u8]) -> bool {
        head.iter()
            .find(|b| !b.is_ascii_whitespace())
            .is_some_and(|&b| b == b'{')
    }

    fn read(&self, r: &mut dyn BufRead) -> io::Result<Trace> {
        read_jsonl(r)
    }

    fn write(&self, trace: &Trace, w: &mut dyn Write) -> io::Result<()> {
        write_jsonl(trace, w)
    }

    fn stream(
        &self,
        r: &mut dyn BufRead,
        sink: &mut dyn RecordSink,
    ) -> io::Result<(TraceMeta, u64)> {
        let mut buf = String::new();
        if r.read_line(&mut buf)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "empty trace stream",
            ));
        }
        let meta: TraceMeta = serde_json::from_str(buf.trim_end())?;
        let mut count = 0u64;
        let mut phases = PhaseTracker::new();
        // Parse into a reused block so downstream sinks get the same
        // batched delivery as the binary codecs.
        const JSONL_BLOCK: usize = 512;
        let mut block: Vec<Record> = Vec::with_capacity(JSONL_BLOCK);
        loop {
            buf.clear();
            let eof = r.read_line(&mut buf)? == 0;
            if !eof {
                let line = buf.trim();
                if line.is_empty() {
                    continue;
                }
                block.push(crate::jsonl::parse_record(line)?);
                count += 1;
            }
            if block.len() >= JSONL_BLOCK || (eof && !block.is_empty()) {
                phases.on_block(&block, sink);
                block.clear();
            }
            if eof {
                break;
            }
        }
        phases.finish(sink);
        Ok((meta, count))
    }
}

/// The row-major binary v1 codec (45-byte frames).
pub struct PtbCodec;

impl TraceCodec for PtbCodec {
    fn format(&self) -> TraceFormat {
        TraceFormat::Ptb
    }

    fn sniff(&self, head: &[u8]) -> bool {
        head.len() >= 4 && head[..4] == PTB_MAGIC
    }

    fn read(&self, r: &mut dyn BufRead) -> io::Result<Trace> {
        read_ptb(r)
    }

    fn write(&self, trace: &Trace, w: &mut dyn Write) -> io::Result<()> {
        write_ptb(trace, w)
    }

    fn stream(
        &self,
        r: &mut dyn BufRead,
        sink: &mut dyn RecordSink,
    ) -> io::Result<(TraceMeta, u64)> {
        let mut dec = PtbBlockReader::new(r)?;
        let meta = dec.meta().clone();
        let mut phases = PhaseTracker::new();
        while let Some(block) = dec.next_block()? {
            phases.on_block(block, sink);
        }
        phases.finish(sink);
        Ok((meta, dec.records_read()))
    }
}

/// The columnar binary v2 codec (structure-of-arrays blocks).
pub struct Ptb2Codec;

impl TraceCodec for Ptb2Codec {
    fn format(&self) -> TraceFormat {
        TraceFormat::Ptb2
    }

    fn sniff(&self, head: &[u8]) -> bool {
        head.len() >= 4 && head[..4] == PTB2_MAGIC
    }

    fn read(&self, r: &mut dyn BufRead) -> io::Result<Trace> {
        read_ptb2(r)
    }

    fn write(&self, trace: &Trace, w: &mut dyn Write) -> io::Result<()> {
        write_ptb2(trace, w)
    }

    fn stream(
        &self,
        r: &mut dyn BufRead,
        sink: &mut dyn RecordSink,
    ) -> io::Result<(TraceMeta, u64)> {
        let mut dec = Ptb2BlockReader::new(r)?;
        let meta = dec.meta().clone();
        let mut phases = PhaseTracker::new();
        while let Some(block) = dec.next_block()? {
            phases.on_block(block, sink);
        }
        phases.finish(sink);
        Ok((meta, dec.records_read()))
    }
}

/// Every registered codec, magic-bearing binary formats first (JSONL
/// last because its sniff is the loosest).
static CODECS: [&dyn TraceCodec; 3] = [&Ptb2Codec, &PtbCodec, &JsonlCodec];

/// The static codec registry.
pub fn codecs() -> &'static [&'static dyn TraceCodec] {
    &CODECS
}

/// The codec implementing `format`.
pub fn codec_for(format: TraceFormat) -> &'static dyn TraceCodec {
    codecs()
        .iter()
        .copied()
        .find(|c| c.format() == format)
        .expect("every TraceFormat has a registered codec")
}

/// Identify the codec for a file from its leading bytes.
///
/// Unrecognized content is a clean [`io::ErrorKind::Unsupported`] error
/// — including heads shorter than any magic prefix and `PTB` files with
/// an unknown version byte — never a panic or a misdetection.
pub fn sniff_codec(head: &[u8]) -> io::Result<&'static dyn TraceCodec> {
    if let Some(c) = codecs().iter().copied().find(|c| c.sniff(head)) {
        return Ok(c);
    }
    let msg = if head.len() < 4 {
        format!(
            "trace too short to identify a format ({} byte{})",
            head.len(),
            if head.len() == 1 { "" } else { "s" }
        )
    } else if head.starts_with(b"PTB") {
        format!(
            "unsupported ptb format version {:?} (known: ptb, ptb2)",
            head[3] as char
        )
    } else {
        "unrecognized trace format (expected JSONL, ptb, or ptb2)".to_string()
    };
    Err(io::Error::new(io::ErrorKind::Unsupported, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CallKind;

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "codec".into(),
            platform: "test".into(),
            ranks: 4,
            seed: 5,
        });
        for i in 0..200u64 {
            t.push(Record {
                rank: (i % 4) as u32,
                call: if i % 3 == 0 {
                    CallKind::Write
                } else {
                    CallKind::Read
                },
                fd: 3,
                offset: i * 4096,
                bytes: 4096,
                start_ns: i * 1_000,
                end_ns: i * 1_000 + 700,
                phase: (i / 50) as u32,
            });
        }
        t
    }

    #[test]
    fn every_codec_round_trips_and_self_sniffs() {
        let t = sample();
        for codec in codecs() {
            let mut buf = Vec::new();
            codec.write(&t, &mut buf).unwrap();
            assert!(codec.sniff(&buf), "{} does not sniff itself", codec.name());
            // No other codec claims these bytes.
            for other in codecs() {
                if other.format() != codec.format() {
                    assert!(
                        !other.sniff(&buf),
                        "{} sniffs {}",
                        other.name(),
                        codec.name()
                    );
                }
            }
            let back = codec.read(&mut io::BufReader::new(&buf[..])).unwrap();
            assert_eq!(back, t, "{} round trip", codec.name());
            assert_eq!(sniff_codec(&buf).unwrap().format(), codec.format());
        }
    }

    #[test]
    fn every_codec_streams_the_same_events() {
        let t = sample();
        #[derive(Default, PartialEq, Debug)]
        struct Log {
            records: Vec<Record>,
            phase_ends: Vec<u32>,
            finished: bool,
        }
        impl RecordSink for Log {
            fn push(&mut self, r: &Record) {
                self.records.push(r.clone());
            }
            fn phase_end(&mut self, phase: u32) {
                self.phase_ends.push(phase);
            }
            fn finish(&mut self) {
                self.finished = true;
            }
        }
        let mut logs = Vec::new();
        for codec in codecs() {
            let mut buf = Vec::new();
            codec.write(&t, &mut buf).unwrap();
            let mut log = Log::default();
            let (meta, n) = codec
                .stream(&mut io::BufReader::new(&buf[..]), &mut log)
                .unwrap();
            assert_eq!(meta, t.meta, "{}", codec.name());
            assert_eq!(n, 200, "{}", codec.name());
            assert_eq!(log.records, t.records, "{}", codec.name());
            assert_eq!(log.phase_ends, vec![0, 1, 2, 3], "{}", codec.name());
            assert!(log.finished, "{}", codec.name());
            logs.push(log);
        }
        assert!(logs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn on_block_fires_the_same_event_sequence_as_on_record() {
        #[derive(Default, PartialEq, Debug)]
        struct Log {
            events: Vec<(Option<Record>, Option<u32>)>,
        }
        impl RecordSink for Log {
            fn push(&mut self, r: &Record) {
                self.events.push((Some(r.clone()), None));
            }
            fn phase_end(&mut self, phase: u32) {
                self.events.push((None, Some(phase)));
            }
        }
        let mk = |phase: u32, i: u64| Record {
            rank: (i % 4) as u32,
            call: CallKind::Read,
            fd: 3,
            offset: i * 4096,
            bytes: 4096,
            start_ns: i,
            end_ns: i + 10,
            phase,
        };
        // First record starts at phase 2, a phase skip (3 → 6), a
        // stale lower-phase record mid-stream, and a split across
        // blocks of awkward sizes.
        let phases_seq = [2u32, 2, 3, 3, 1, 6, 6, 0, 6, 7, 7, 7, 9];
        let records: Vec<Record> = phases_seq
            .iter()
            .enumerate()
            .map(|(i, &p)| mk(p, i as u64))
            .collect();
        let mut per_record = Log::default();
        let mut tracker = PhaseTracker::new();
        for r in &records {
            tracker.on_record(r, &mut per_record);
            per_record.push(r);
        }
        tracker.finish(&mut per_record);
        for block_size in [1, 2, 3, 5, 13, 64] {
            let mut blocked = Log::default();
            let mut tracker = PhaseTracker::new();
            for chunk in records.chunks(block_size) {
                tracker.on_block(chunk, &mut blocked);
            }
            tracker.finish(&mut blocked);
            assert_eq!(blocked, per_record, "block_size={block_size}");
        }
    }

    #[test]
    fn short_heads_are_a_clean_unsupported_error() {
        for head in [&b""[..], &b"P"[..], &b"PTB"[..], &b"\x00"[..]] {
            let err = sniff_codec(head).map(|c| c.format()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Unsupported, "head={head:?}");
            assert!(err.to_string().contains("short"), "head={head:?}: {err}");
        }
    }

    #[test]
    fn unknown_ptb_version_names_the_version() {
        let err = sniff_codec(b"PTB9....").map(|c| c.format()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        assert!(err.to_string().contains("version"), "{err}");
        let err = sniff_codec(b"garbage.").map(|c| c.format()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn jsonl_sniff_skips_leading_whitespace() {
        assert!(JsonlCodec.sniff(b"  \n{\"experiment\""));
        assert!(JsonlCodec.sniff(b"{"));
        assert!(!JsonlCodec.sniff(b"   "));
        assert!(!JsonlCodec.sniff(b""));
    }

    #[test]
    fn codec_for_covers_every_format() {
        for f in TraceFormat::ALL {
            assert_eq!(codec_for(f).format(), f);
            assert_eq!(codec_for(f).name(), f.name());
        }
    }
}
