//! Online profiling mode.
//!
//! The paper's conclusion proposes moving "from an I/O tracing paradigm to
//! an I/O profiling paradigm": since the ensemble distribution is what
//! matters and it is reproducible, one need not store every event — just
//! enough to define the distribution. `OnlineProfile` does exactly that:
//! fixed-memory logarithmic duration histograms per call kind, accumulated
//! at capture time, with byte and count totals. Memory is O(kinds × bins)
//! regardless of trace length.
//!
//! The histograms are [`pio_des::hist::LogHistogram`]s — the same
//! mergeable implementation the analysis layer bins with — so a profile
//! merged across ranks is bit-identical to one collected centrally. The
//! saved-profile serde layout (`t_min`/`t_max`/`bins`/`counts`/`totals`)
//! is preserved from the pre-refactor format.

use crate::record::{CallKind, Record};
use pio_des::hist::{LogBins, LogHistogram};
use serde::{de_field, Content, DeError, Deserialize, Serialize};

/// Number of log-spaced bins per call kind.
pub const DEFAULT_BINS: usize = 64;

/// Fixed-memory log-histogram profile of a record stream.
#[derive(Debug, Clone)]
pub struct OnlineProfile {
    /// hists[kind], all sharing one geometry; durations are clamped into
    /// the edge bins so every event is counted.
    hists: Vec<LogHistogram>,
    /// Per-kind totals: (events, bytes, total seconds, max seconds).
    totals: Vec<(u64, u64, f64, f64)>,
}

impl Default for OnlineProfile {
    fn default() -> Self {
        // 10 µs .. 1000 s covers everything from metadata RPCs to the
        // paper's 500-second pathological reads.
        OnlineProfile::new(1e-5, 1e3, DEFAULT_BINS)
    }
}

impl OnlineProfile {
    /// A profile resolving durations in `[t_min, t_max]` seconds over
    /// `bins` log-spaced bins.
    pub fn new(t_min: f64, t_max: f64, bins: usize) -> Self {
        assert!(t_min > 0.0 && t_max > t_min && bins >= 2);
        OnlineProfile {
            hists: vec![LogHistogram::new(t_min, t_max, bins); CallKind::ALL.len()],
            totals: vec![(0, 0, 0.0, 0.0); CallKind::ALL.len()],
        }
    }

    fn kind_index(kind: CallKind) -> usize {
        CallKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL")
    }

    fn geometry(&self) -> LogBins {
        self.hists[0].geometry()
    }

    /// Bin index for a duration in seconds (clamped to the edge bins).
    pub fn bin_of(&self, secs: f64) -> usize {
        self.geometry().index_clamped(secs)
    }

    /// Geometric center (seconds) of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.geometry().center(i)
    }

    /// Accumulate one record.
    pub fn record(&mut self, r: &Record) {
        let k = Self::kind_index(r.call);
        let secs = r.secs();
        self.hists[k].add_clamped(secs);
        let t = &mut self.totals[k];
        t.0 += 1;
        t.1 += r.bytes;
        t.2 += secs;
        t.3 = t.3.max(secs);
    }

    /// Accumulate a whole stream.
    pub fn record_all<'a, I: IntoIterator<Item = &'a Record>>(&mut self, records: I) {
        for r in records {
            self.record(r);
        }
    }

    /// The duration histogram for a kind.
    pub fn hist(&self, kind: CallKind) -> &LogHistogram {
        &self.hists[Self::kind_index(kind)]
    }

    /// Event count for a kind.
    pub fn count(&self, kind: CallKind) -> u64 {
        self.totals[Self::kind_index(kind)].0
    }

    /// Byte total for a kind.
    pub fn bytes(&self, kind: CallKind) -> u64 {
        self.totals[Self::kind_index(kind)].1
    }

    /// Mean duration for a kind, if any events were seen.
    pub fn mean_secs(&self, kind: CallKind) -> Option<f64> {
        let (n, _, sum, _) = self.totals[Self::kind_index(kind)];
        (n > 0).then(|| sum / n as f64)
    }

    /// Longest event for a kind.
    pub fn max_secs(&self, kind: CallKind) -> f64 {
        self.totals[Self::kind_index(kind)].3
    }

    /// Histogram (bin centers, counts) for a kind.
    pub fn histogram(&self, kind: CallKind) -> Vec<(f64, u64)> {
        let h = self.hist(kind);
        (0..h.bins())
            .map(|i| (h.bin_center(i), h.counts()[i]))
            .collect()
    }

    /// Approximate quantile for a kind from the binned counts, or `None`
    /// if no events. `q` in `[0,1]`.
    pub fn quantile(&self, kind: CallKind, q: f64) -> Option<f64> {
        self.hist(kind).quantile(q)
    }

    /// Merge another profile (same geometry) into this one.
    ///
    /// Panics if geometries differ — merging across ranks requires the
    /// collectors to agree on binning, as a real IPM reduction would.
    pub fn merge(&mut self, other: &OnlineProfile) {
        for (h, o) in self.hists.iter_mut().zip(&other.hists) {
            h.merge(o);
        }
        for (t, o) in self.totals.iter_mut().zip(&other.totals) {
            t.0 += o.0;
            t.1 += o.1;
            t.2 += o.2;
            t.3 = t.3.max(o.3);
        }
    }
}

// Saved profiles predate the shared-histogram refactor; serialize the
// historical field layout rather than the internal representation.
impl Serialize for OnlineProfile {
    fn to_content(&self) -> Content {
        let geom = self.geometry();
        let counts: Vec<Vec<u64>> = self.hists.iter().map(|h| h.counts().to_vec()).collect();
        Content::Map(vec![
            ("t_min".to_string(), geom.lo().to_content()),
            ("t_max".to_string(), geom.hi().to_content()),
            ("bins".to_string(), geom.bins().to_content()),
            ("counts".to_string(), counts.to_content()),
            ("totals".to_string(), self.totals.to_content()),
        ])
    }
}

impl Deserialize for OnlineProfile {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let t_min: f64 = de_field(c, "t_min")?;
        let t_max: f64 = de_field(c, "t_max")?;
        let bins: usize = de_field(c, "bins")?;
        let counts: Vec<Vec<u64>> = de_field(c, "counts")?;
        let totals: Vec<(u64, u64, f64, f64)> = de_field(c, "totals")?;
        if counts.len() != CallKind::ALL.len() || totals.len() != CallKind::ALL.len() {
            return Err(DeError(format!(
                "profile kind count {}/{} does not match {} call kinds",
                counts.len(),
                totals.len(),
                CallKind::ALL.len()
            )));
        }
        if counts.iter().any(|k| k.len() != bins) {
            return Err(DeError("profile bin count mismatch".to_string()));
        }
        let hists = counts
            .into_iter()
            .map(|k| LogHistogram::from_parts(t_min, t_max, k, 0, 0))
            .collect();
        Ok(OnlineProfile { hists, totals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(call: CallKind, bytes: u64, secs: f64) -> Record {
        Record {
            rank: 0,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: 0,
            end_ns: (secs * 1e9) as u64,
            phase: 0,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut p = OnlineProfile::default();
        p.record(&rec(CallKind::Write, 100, 1.0));
        p.record(&rec(CallKind::Write, 200, 3.0));
        p.record(&rec(CallKind::Read, 50, 0.5));
        assert_eq!(p.count(CallKind::Write), 2);
        assert_eq!(p.bytes(CallKind::Write), 300);
        assert_eq!(p.mean_secs(CallKind::Write), Some(2.0));
        assert_eq!(p.max_secs(CallKind::Write), 3.0);
        assert_eq!(p.count(CallKind::Read), 1);
        assert_eq!(p.count(CallKind::Barrier), 0);
        assert!(p.mean_secs(CallKind::Barrier).is_none());
    }

    #[test]
    fn binning_is_monotone_and_clamped() {
        let p = OnlineProfile::new(1e-3, 1e2, 32);
        assert_eq!(p.bin_of(1e-9), 0);
        assert_eq!(p.bin_of(1e9), 31);
        let mut last = 0;
        for i in 0..100 {
            let t = 1e-3 * (1e5f64).powf(i as f64 / 99.0);
            let b = p.bin_of(t);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn bin_center_round_trips() {
        let p = OnlineProfile::new(1e-3, 1e2, 32);
        for i in 0..32 {
            assert_eq!(p.bin_of(p.bin_center(i)), i, "bin {i}");
        }
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut p = OnlineProfile::default();
        for i in 1..=100 {
            p.record(&rec(CallKind::Read, 1, i as f64 * 0.1));
        }
        let q50 = p.quantile(CallKind::Read, 0.5).unwrap();
        // True median 5.05 s; log bins are coarse, allow 2x.
        assert!(q50 > 2.5 && q50 < 10.0, "{q50}");
        let q100 = p.quantile(CallKind::Read, 1.0).unwrap();
        assert!(q100 >= q50);
        assert!(p.quantile(CallKind::Write, 0.5).is_none());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = OnlineProfile::default();
        let mut b = OnlineProfile::default();
        let mut combined = OnlineProfile::default();
        for i in 0..50 {
            let r = rec(CallKind::Write, i, 0.01 * (i + 1) as f64);
            if i % 2 == 0 {
                a.record(&r);
            } else {
                b.record(&r);
            }
            combined.record(&r);
        }
        a.merge(&b);
        assert_eq!(a.count(CallKind::Write), combined.count(CallKind::Write));
        assert_eq!(a.bytes(CallKind::Write), combined.bytes(CallKind::Write));
        assert_eq!(
            a.histogram(CallKind::Write),
            combined.histogram(CallKind::Write)
        );
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = OnlineProfile::new(1e-3, 1e2, 32);
        let b = OnlineProfile::new(1e-3, 1e2, 64);
        a.merge(&b);
    }

    #[test]
    fn serde_layout_is_preserved() {
        let mut p = OnlineProfile::new(1e-3, 1e2, 8);
        p.record(&rec(CallKind::Write, 512, 0.5));
        p.record(&rec(CallKind::Read, 64, 7.0));
        let json = serde_json::to_string(&p).unwrap();
        for key in [
            "\"t_min\"",
            "\"t_max\"",
            "\"bins\":8",
            "\"counts\"",
            "\"totals\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let back: OnlineProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count(CallKind::Write), 1);
        assert_eq!(back.bytes(CallKind::Write), 512);
        assert_eq!(back.histogram(CallKind::Read), p.histogram(CallKind::Read));
        assert_eq!(back.max_secs(CallKind::Read), 7.0);
    }
}
