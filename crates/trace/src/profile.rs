//! Online profiling mode.
//!
//! The paper's conclusion proposes moving "from an I/O tracing paradigm to
//! an I/O profiling paradigm": since the ensemble distribution is what
//! matters and it is reproducible, one need not store every event — just
//! enough to define the distribution. `OnlineProfile` does exactly that:
//! fixed-memory logarithmic duration histograms per call kind, accumulated
//! at capture time, with byte and count totals. Memory is O(kinds × bins)
//! regardless of trace length.

use crate::record::{CallKind, Record};
use serde::{Deserialize, Serialize};

/// Number of log-spaced bins per call kind.
pub const DEFAULT_BINS: usize = 64;

/// Fixed-memory log-histogram profile of a record stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineProfile {
    /// Smallest resolvable duration (seconds); shorter events land in bin 0.
    t_min: f64,
    /// Largest resolvable duration (seconds); longer events land in the last bin.
    t_max: f64,
    bins: usize,
    /// counts[kind][bin]
    counts: Vec<Vec<u64>>,
    /// Per-kind totals: (events, bytes, total seconds, max seconds).
    totals: Vec<(u64, u64, f64, f64)>,
}

impl Default for OnlineProfile {
    fn default() -> Self {
        // 10 µs .. 1000 s covers everything from metadata RPCs to the
        // paper's 500-second pathological reads.
        OnlineProfile::new(1e-5, 1e3, DEFAULT_BINS)
    }
}

impl OnlineProfile {
    /// A profile resolving durations in `[t_min, t_max]` seconds over
    /// `bins` log-spaced bins.
    pub fn new(t_min: f64, t_max: f64, bins: usize) -> Self {
        assert!(t_min > 0.0 && t_max > t_min && bins >= 2);
        OnlineProfile {
            t_min,
            t_max,
            bins,
            counts: vec![vec![0; bins]; CallKind::ALL.len()],
            totals: vec![(0, 0, 0.0, 0.0); CallKind::ALL.len()],
        }
    }

    fn kind_index(kind: CallKind) -> usize {
        CallKind::ALL.iter().position(|&k| k == kind).expect("kind in ALL")
    }

    /// Bin index for a duration in seconds.
    pub fn bin_of(&self, secs: f64) -> usize {
        if secs <= self.t_min {
            return 0;
        }
        if secs >= self.t_max {
            return self.bins - 1;
        }
        let frac = (secs / self.t_min).ln() / (self.t_max / self.t_min).ln();
        ((frac * self.bins as f64) as usize).min(self.bins - 1)
    }

    /// Geometric center (seconds) of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let ratio = (self.t_max / self.t_min).powf((i as f64 + 0.5) / self.bins as f64);
        self.t_min * ratio
    }

    /// Accumulate one record.
    pub fn record(&mut self, r: &Record) {
        let k = Self::kind_index(r.call);
        let secs = r.secs();
        let bin = self.bin_of(secs);
        self.counts[k][bin] += 1;
        let t = &mut self.totals[k];
        t.0 += 1;
        t.1 += r.bytes;
        t.2 += secs;
        t.3 = t.3.max(secs);
    }

    /// Accumulate a whole stream.
    pub fn record_all<'a, I: IntoIterator<Item = &'a Record>>(&mut self, records: I) {
        for r in records {
            self.record(r);
        }
    }

    /// Event count for a kind.
    pub fn count(&self, kind: CallKind) -> u64 {
        self.totals[Self::kind_index(kind)].0
    }

    /// Byte total for a kind.
    pub fn bytes(&self, kind: CallKind) -> u64 {
        self.totals[Self::kind_index(kind)].1
    }

    /// Mean duration for a kind, if any events were seen.
    pub fn mean_secs(&self, kind: CallKind) -> Option<f64> {
        let (n, _, sum, _) = self.totals[Self::kind_index(kind)];
        (n > 0).then(|| sum / n as f64)
    }

    /// Longest event for a kind.
    pub fn max_secs(&self, kind: CallKind) -> f64 {
        self.totals[Self::kind_index(kind)].3
    }

    /// Histogram (bin centers, counts) for a kind.
    pub fn histogram(&self, kind: CallKind) -> Vec<(f64, u64)> {
        let k = Self::kind_index(kind);
        (0..self.bins)
            .map(|i| (self.bin_center(i), self.counts[k][i]))
            .collect()
    }

    /// Approximate quantile for a kind from the binned counts, or `None`
    /// if no events. `q` in `[0,1]`.
    pub fn quantile(&self, kind: CallKind, q: f64) -> Option<f64> {
        let k = Self::kind_index(kind);
        let total: u64 = self.counts[k].iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for i in 0..self.bins {
            acc += self.counts[k][i];
            if acc >= target {
                return Some(self.bin_center(i));
            }
        }
        Some(self.bin_center(self.bins - 1))
    }

    /// Merge another profile (same geometry) into this one.
    ///
    /// Panics if geometries differ — merging across ranks requires the
    /// collectors to agree on binning, as a real IPM reduction would.
    pub fn merge(&mut self, other: &OnlineProfile) {
        assert!(
            self.t_min == other.t_min && self.t_max == other.t_max && self.bins == other.bins,
            "merging profiles with different bin geometry"
        );
        for k in 0..self.counts.len() {
            for b in 0..self.bins {
                self.counts[k][b] += other.counts[k][b];
            }
            self.totals[k].0 += other.totals[k].0;
            self.totals[k].1 += other.totals[k].1;
            self.totals[k].2 += other.totals[k].2;
            self.totals[k].3 = self.totals[k].3.max(other.totals[k].3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(call: CallKind, bytes: u64, secs: f64) -> Record {
        Record {
            rank: 0,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: 0,
            end_ns: (secs * 1e9) as u64,
            phase: 0,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut p = OnlineProfile::default();
        p.record(&rec(CallKind::Write, 100, 1.0));
        p.record(&rec(CallKind::Write, 200, 3.0));
        p.record(&rec(CallKind::Read, 50, 0.5));
        assert_eq!(p.count(CallKind::Write), 2);
        assert_eq!(p.bytes(CallKind::Write), 300);
        assert_eq!(p.mean_secs(CallKind::Write), Some(2.0));
        assert_eq!(p.max_secs(CallKind::Write), 3.0);
        assert_eq!(p.count(CallKind::Read), 1);
        assert_eq!(p.count(CallKind::Barrier), 0);
        assert!(p.mean_secs(CallKind::Barrier).is_none());
    }

    #[test]
    fn binning_is_monotone_and_clamped() {
        let p = OnlineProfile::new(1e-3, 1e2, 32);
        assert_eq!(p.bin_of(1e-9), 0);
        assert_eq!(p.bin_of(1e9), 31);
        let mut last = 0;
        for i in 0..100 {
            let t = 1e-3 * (1e5f64).powf(i as f64 / 99.0);
            let b = p.bin_of(t);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn bin_center_round_trips() {
        let p = OnlineProfile::new(1e-3, 1e2, 32);
        for i in 0..32 {
            assert_eq!(p.bin_of(p.bin_center(i)), i, "bin {i}");
        }
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut p = OnlineProfile::default();
        for i in 1..=100 {
            p.record(&rec(CallKind::Read, 1, i as f64 * 0.1));
        }
        let q50 = p.quantile(CallKind::Read, 0.5).unwrap();
        // True median 5.05 s; log bins are coarse, allow 2x.
        assert!(q50 > 2.5 && q50 < 10.0, "{q50}");
        let q100 = p.quantile(CallKind::Read, 1.0).unwrap();
        assert!(q100 >= q50);
        assert!(p.quantile(CallKind::Write, 0.5).is_none());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = OnlineProfile::default();
        let mut b = OnlineProfile::default();
        let mut combined = OnlineProfile::default();
        for i in 0..50 {
            let r = rec(CallKind::Write, i, 0.01 * (i + 1) as f64);
            if i % 2 == 0 {
                a.record(&r);
            } else {
                b.record(&r);
            }
            combined.record(&r);
        }
        a.merge(&b);
        assert_eq!(a.count(CallKind::Write), combined.count(CallKind::Write));
        assert_eq!(a.bytes(CallKind::Write), combined.bytes(CallKind::Write));
        assert_eq!(a.histogram(CallKind::Write), combined.histogram(CallKind::Write));
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = OnlineProfile::new(1e-3, 1e2, 32);
        let b = OnlineProfile::new(1e-3, 1e2, 64);
        a.merge(&b);
    }
}
