//! Record sinks — the streaming counterpart of an in-memory [`Trace`].
//!
//! A [`RecordSink`] consumes trace records as they are produced (by the
//! simulated MPI runtime or by a JSONL reader) without requiring the
//! whole event stream to be buffered. The in-memory [`Trace`], the
//! fixed-memory [`OnlineProfile`], and the binary-format encoder
//! [`crate::ptb::PtbWriter`] are all sinks; `pio-ingest` adds a
//! concurrent sharded pipeline behind the same trait.

use crate::profile::OnlineProfile;
use crate::record::Record;
use crate::trace::Trace;

/// A consumer of a record stream.
///
/// Implementations must accept records in the order the producer emits
/// them; nothing else is guaranteed (in particular, records from
/// different ranks interleave arbitrarily within a phase).
pub trait RecordSink {
    /// Consume one record.
    fn push(&mut self, r: &Record);

    /// Consume a block of records — semantically identical to calling
    /// [`Self::push`] once per record, in order (the default does
    /// exactly that). Decoders that already hold a decoded block hand
    /// it over in one call so batch-aware sinks (the ingest pipeline,
    /// the fleet transport, the analysis sketches) can amortize
    /// dispatch, routing, and bin classification across the block.
    /// Implementations must produce bit-identical state to the
    /// per-record loop for any block partitioning of the same stream.
    fn push_block(&mut self, block: &[Record]) {
        for r in block {
            self.push(r);
        }
    }

    /// A barrier-phase boundary: every rank has finished `phase`. Online
    /// analyses use this to close per-phase windows; buffering sinks may
    /// ignore it.
    fn phase_end(&mut self, _phase: u32) {}

    /// The stream is complete; flush any buffered state.
    fn finish(&mut self) {}
}

impl RecordSink for Trace {
    fn push(&mut self, r: &Record) {
        Trace::push(self, r.clone());
    }

    fn push_block(&mut self, block: &[Record]) {
        self.records.extend_from_slice(block);
    }
}

impl RecordSink for OnlineProfile {
    fn push(&mut self, r: &Record) {
        self.record(r);
    }
}

/// The null sink: discards everything (capture disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl RecordSink for NullSink {
    fn push(&mut self, _r: &Record) {}

    fn push_block(&mut self, _block: &[Record]) {}
}

/// Duplicate a stream into two sinks (e.g. keep the full trace while
/// streaming into an online pipeline).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: RecordSink, B: RecordSink> RecordSink for Tee<A, B> {
    fn push(&mut self, r: &Record) {
        self.0.push(r);
        self.1.push(r);
    }

    fn push_block(&mut self, block: &[Record]) {
        self.0.push_block(block);
        self.1.push_block(block);
    }

    fn phase_end(&mut self, phase: u32) {
        self.0.phase_end(phase);
        self.1.phase_end(phase);
    }

    fn finish(&mut self) {
        self.0.finish();
        self.1.finish();
    }
}

/// Split one stream across several sinks by a per-record routing key —
/// the demultiplexer for multi-tenant streams (e.g. one merged capture
/// stream fanned back out to per-job consumers, or per-rank-range
/// splitting of a shared stream). `route` maps a record to a sink index
/// (clamped into range); phase boundaries and end-of-stream are
/// broadcast to every sink, since they are stream-wide events.
pub struct Demux<S, F> {
    sinks: Vec<S>,
    route: F,
}

impl<S: RecordSink, F: FnMut(&Record) -> usize> Demux<S, F> {
    /// A demux over `sinks` (must be non-empty) routed by `route`.
    pub fn new(sinks: Vec<S>, route: F) -> Self {
        assert!(!sinks.is_empty(), "demux needs at least one sink");
        Demux { sinks, route }
    }

    /// The routed sinks, back (e.g. to collect per-tenant results).
    pub fn into_sinks(self) -> Vec<S> {
        self.sinks
    }

    /// Routed sink count.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Always false: construction requires at least one sink.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl<S: RecordSink, F: FnMut(&Record) -> usize> RecordSink for Demux<S, F> {
    fn push(&mut self, r: &Record) {
        let i = (self.route)(r).min(self.sinks.len() - 1);
        self.sinks[i].push(r);
    }

    fn push_block(&mut self, block: &[Record]) {
        // Forward maximal same-route runs as sub-blocks; per-sink
        // record order is unchanged, so this is identical to routing
        // record by record.
        let mut start = 0;
        while start < block.len() {
            let route = (self.route)(&block[start]).min(self.sinks.len() - 1);
            let mut end = start + 1;
            while end < block.len() && (self.route)(&block[end]).min(self.sinks.len() - 1) == route
            {
                end += 1;
            }
            self.sinks[route].push_block(&block[start..end]);
            start = end;
        }
    }

    fn phase_end(&mut self, phase: u32) {
        for s in &mut self.sinks {
            s.phase_end(phase);
        }
    }

    fn finish(&mut self) {
        for s in &mut self.sinks {
            s.finish();
        }
    }
}

impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn push(&mut self, r: &Record) {
        (**self).push(r);
    }

    fn push_block(&mut self, block: &[Record]) {
        (**self).push_block(block);
    }

    fn phase_end(&mut self, phase: u32) {
        (**self).phase_end(phase);
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

impl<S: RecordSink + ?Sized> RecordSink for Box<S> {
    fn push(&mut self, r: &Record) {
        (**self).push(r);
    }

    fn push_block(&mut self, block: &[Record]) {
        (**self).push_block(block);
    }

    fn phase_end(&mut self, phase: u32) {
        (**self).phase_end(phase);
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CallKind;
    use crate::trace::TraceMeta;

    fn rec(i: u32) -> Record {
        Record {
            rank: i,
            call: CallKind::Write,
            fd: 3,
            offset: 0,
            bytes: 8,
            start_ns: 0,
            end_ns: 1_000_000,
            phase: 0,
        }
    }

    #[test]
    fn trace_and_profile_are_sinks() {
        let mut trace = Trace::new(TraceMeta {
            experiment: "sink".into(),
            platform: "test".into(),
            ranks: 4,
            seed: 0,
        });
        let mut profile = OnlineProfile::default();
        {
            let mut tee = Tee(&mut trace, &mut profile);
            for i in 0..4 {
                tee.push(&rec(i));
            }
            tee.phase_end(0);
            tee.finish();
        }
        assert_eq!(trace.records.len(), 4);
        assert_eq!(profile.count(CallKind::Write), 4);
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.push(&rec(0));
        sink.finish();
    }

    #[test]
    fn demux_routes_records_and_broadcasts_boundaries() {
        let meta = |name: &str| TraceMeta {
            experiment: name.into(),
            platform: "test".into(),
            ranks: 8,
            seed: 0,
        };
        let sinks = vec![Trace::new(meta("a")), Trace::new(meta("b"))];
        let mut demux = Demux::new(sinks, |r: &Record| (r.rank / 4) as usize);
        for i in 0..8 {
            demux.push(&rec(i));
        }
        demux.phase_end(0);
        demux.finish();
        let traces = demux.into_sinks();
        assert_eq!(traces[0].records.len(), 4);
        assert_eq!(traces[1].records.len(), 4);
        assert!(traces[0].records.iter().all(|r| r.rank < 4));
        assert!(traces[1].records.iter().all(|r| r.rank >= 4));
    }

    #[test]
    fn push_block_matches_per_record_push_through_demux_and_tee() {
        let meta = |name: &str| TraceMeta {
            experiment: name.into(),
            platform: "test".into(),
            ranks: 8,
            seed: 0,
        };
        let block: Vec<Record> = (0..16).map(|i| rec(i % 8)).collect();
        let route = |r: &Record| (r.rank / 4) as usize;
        let mut blocked = Demux::new(vec![Trace::new(meta("a")), Trace::new(meta("b"))], route);
        let mut recorded = Demux::new(vec![Trace::new(meta("a")), Trace::new(meta("b"))], route);
        blocked.push_block(&block);
        for r in &block {
            recorded.push(r);
        }
        let (b, r) = (blocked.into_sinks(), recorded.into_sinks());
        assert_eq!(b[0].records, r[0].records);
        assert_eq!(b[1].records, r[1].records);

        let mut ta = Trace::new(meta("tee"));
        let mut tb = Trace::new(meta("tee"));
        Tee(&mut ta, &mut tb).push_block(&block);
        assert_eq!(ta.records, block);
        assert_eq!(tb.records, block);
    }

    #[test]
    fn demux_clamps_out_of_range_routes() {
        let mut demux = Demux::new(
            vec![Trace::new(TraceMeta {
                experiment: "only".into(),
                platform: "test".into(),
                ranks: 4,
                seed: 0,
            })],
            |r: &Record| r.rank as usize * 100,
        );
        for i in 0..4 {
            demux.push(&rec(i));
        }
        assert_eq!(demux.len(), 1);
        assert_eq!(demux.into_sinks()[0].records.len(), 4);
    }
}
