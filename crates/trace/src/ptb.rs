//! `ptb` — the compact binary trace format (Portable Trace Blocks).
//!
//! JSONL is the interchange format; `ptb` is the fast path. Like
//! Darshan's move from text logs to a compact self-describing binary
//! format, the motivation is ingest throughput: a JSONL record costs a
//! parse of ~110 bytes of text, a `ptb` record is a fixed-width
//! 45-byte little-endian frame that decodes with a handful of loads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header    := magic "PTB1" | meta_len u32 | meta JSON (meta_len bytes) | crc32(meta) u32
//! block     := count u32 (> 0) | count * frame (45 bytes each) | crc32(frames) u32
//! terminator:= 0 u32 | total_records u64 | crc32(total_records bytes) u32
//! frame     := rank u32 | fd i32 | offset u64 | bytes u64 | start_ns u64
//!              | end_ns u64 | phase u32 | call u8
//! ```
//!
//! The fourth magic byte is the format version; readers reject unknown
//! versions. Every payload is CRC-checked (CRC-32/ISO-HDLC, the zlib
//! polynomial), and the terminator carries the total record count so a
//! truncated file — even one truncated exactly at a block boundary — is
//! detected rather than silently read short. The frame is 45 bytes, not
//! the 33 of the paper's six-field IPM tuple, because [`Record`] also
//! carries `offset` and `phase`; round-tripping every field is part of
//! the format's contract (see `tests/trace_formats.rs`).
//!
//! [`PtbBlockReader`] is the streaming decoder: it reuses one byte
//! buffer and one record buffer across blocks, so reading an
//! arbitrarily large trace allocates a bounded amount once.

use crate::record::{CallKind, Record};
use crate::sink::RecordSink;
use crate::trace::{Trace, TraceMeta};
use std::io::{self, Read, Write};

/// Magic prefix; the fourth byte (`b'1'`) is the format version.
pub const PTB_MAGIC: [u8; 4] = *b"PTB1";

/// Encoded size of one record frame.
pub const FRAME_BYTES: usize = 45;

/// Records per block written by [`write_ptb`] / [`PtbWriter::new`].
pub const DEFAULT_BLOCK_RECORDS: usize = 1024;

/// Upper bound a reader accepts for one block's record count — a
/// corrupt count field must not become a multi-gigabyte allocation.
const MAX_BLOCK_RECORDS: u32 = 1 << 22;

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial), slice-by-8 table-driven:
/// eight const-built tables let the loop fold 8 input bytes per step
/// with independent lookups instead of an 8-step serial byte chain —
/// the checksum is on the block-decode hot path for both ptb and ptb2.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLES: [[u32; 256]; 8] = {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
                i += 1;
            }
            t += 1;
        }
        tables
    };
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Wire code of a call kind: its index in [`CallKind::ALL`].
pub(crate) fn call_code(k: CallKind) -> u8 {
    k as u8
}

/// Inverse of [`call_code`]; corrupt codes are data errors, not panics.
pub(crate) fn call_from_code(code: u8) -> io::Result<CallKind> {
    CallKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| bad_data(format!("ptb: invalid call code {code}")))
}

pub(crate) fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write the shared ptb-family header: `magic | meta_len u32 | meta JSON
/// | crc32(meta) u32`. Both `ptb` (v1) and [`crate::ptb2`] use this
/// layout; only the magic differs.
pub(crate) fn write_header<W: Write>(
    w: &mut W,
    magic: &[u8; 4],
    meta: &TraceMeta,
) -> io::Result<()> {
    let meta_json = serde_json::to_string(meta)?;
    let meta_bytes = meta_json.as_bytes();
    w.write_all(magic)?;
    w.write_all(&(meta_bytes.len() as u32).to_le_bytes())?;
    w.write_all(meta_bytes)?;
    w.write_all(&crc32(meta_bytes).to_le_bytes())?;
    Ok(())
}

/// Read and validate the shared ptb-family header written by
/// [`write_header`]. `fmt` names the format in error messages ("ptb" /
/// "ptb2"). Returns the metadata and the number of header bytes
/// consumed (the byte offset the first block starts at).
pub(crate) fn read_header<R: Read>(
    r: &mut R,
    magic: &[u8; 4],
    fmt: &str,
) -> io::Result<(TraceMeta, u64)> {
    let mut got = [0u8; 4];
    read_exact_ctx(r, &mut got, &format!("{fmt} header"))?;
    if got[..3] != magic[..3] {
        return Err(bad_data(format!("{fmt}: bad magic (not a {fmt} file)")));
    }
    if got[3] != magic[3] {
        return Err(bad_data(format!(
            "{fmt}: unsupported format version {:?} (this reader speaks {:?})",
            got[3] as char, magic[3] as char
        )));
    }
    let mut len = [0u8; 4];
    read_exact_ctx(r, &mut len, &format!("{fmt} header"))?;
    let meta_len = u32::from_le_bytes(len);
    if meta_len > 1 << 20 {
        return Err(bad_data(format!(
            "{fmt}: implausible meta length {meta_len}"
        )));
    }
    let mut meta_bytes = vec![0u8; meta_len as usize];
    read_exact_ctx(r, &mut meta_bytes, &format!("{fmt} header"))?;
    let mut crc = [0u8; 4];
    read_exact_ctx(r, &mut crc, &format!("{fmt} header"))?;
    if crc32(&meta_bytes) != u32::from_le_bytes(crc) {
        return Err(bad_data(format!("{fmt}: header CRC mismatch")));
    }
    let meta_json = std::str::from_utf8(&meta_bytes)
        .map_err(|_| bad_data(format!("{fmt}: header meta is not UTF-8")))?;
    let meta: TraceMeta = serde_json::from_str(meta_json)?;
    Ok((meta, 12 + meta_len as u64 + 4))
}

/// Append one 45-byte frame to `out`.
fn encode_record(r: &Record, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.rank.to_le_bytes());
    out.extend_from_slice(&r.fd.to_le_bytes());
    out.extend_from_slice(&r.offset.to_le_bytes());
    out.extend_from_slice(&r.bytes.to_le_bytes());
    out.extend_from_slice(&r.start_ns.to_le_bytes());
    out.extend_from_slice(&r.end_ns.to_le_bytes());
    out.extend_from_slice(&r.phase.to_le_bytes());
    out.push(call_code(r.call));
}

/// Decode one frame (`frame.len()` must be [`FRAME_BYTES`]).
fn decode_record(frame: &[u8]) -> io::Result<Record> {
    let u32_at = |i: usize| u32::from_le_bytes(frame[i..i + 4].try_into().unwrap());
    let u64_at = |i: usize| u64::from_le_bytes(frame[i..i + 8].try_into().unwrap());
    Ok(Record {
        rank: u32_at(0),
        fd: i32::from_le_bytes(frame[4..8].try_into().unwrap()),
        offset: u64_at(8),
        bytes: u64_at(16),
        start_ns: u64_at(24),
        end_ns: u64_at(32),
        phase: u32_at(40),
        call: call_from_code(frame[44])?,
    })
}

/// A streaming `ptb` encoder that is also a [`RecordSink`], so a
/// simulation run can capture straight to the binary format without
/// ever buffering a [`Trace`].
///
/// Records accumulate into a block buffer and are framed out every
/// `block_records`; [`PtbWriter::finish`] flushes the tail block and the
/// terminator. Because [`RecordSink`] methods cannot return errors, the
/// sink path stashes the first I/O error instead ([`PtbWriter::error`]);
/// the direct [`PtbWriter::push_record`] path returns it.
pub struct PtbWriter<W: Write> {
    w: W,
    block: Vec<u8>,
    block_records: usize,
    in_block: u32,
    total: u64,
    finished: bool,
    error: Option<io::Error>,
}

impl<W: Write> PtbWriter<W> {
    /// Write the header (magic, CRC-checked `meta` JSON) and return the
    /// encoder, using [`DEFAULT_BLOCK_RECORDS`] per block.
    pub fn new(w: W, meta: &TraceMeta) -> io::Result<Self> {
        Self::with_block_records(w, meta, DEFAULT_BLOCK_RECORDS)
    }

    /// [`PtbWriter::new`] with an explicit block size (clamped to 1).
    pub fn with_block_records(
        mut w: W,
        meta: &TraceMeta,
        block_records: usize,
    ) -> io::Result<Self> {
        write_header(&mut w, &PTB_MAGIC, meta)?;
        let block_records = block_records.max(1);
        Ok(PtbWriter {
            w,
            block: Vec::with_capacity(block_records * FRAME_BYTES),
            block_records,
            in_block: 0,
            total: 0,
            finished: false,
            error: None,
        })
    }

    /// Append one record, flushing a full block to the writer.
    pub fn push_record(&mut self, r: &Record) -> io::Result<()> {
        encode_record(r, &mut self.block);
        self.in_block += 1;
        self.total += 1;
        if self.in_block as usize >= self.block_records {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.in_block == 0 {
            return Ok(());
        }
        self.w.write_all(&self.in_block.to_le_bytes())?;
        self.w.write_all(&self.block)?;
        self.w.write_all(&crc32(&self.block).to_le_bytes())?;
        self.block.clear();
        self.in_block = 0;
        Ok(())
    }

    /// Flush the tail block and write the terminator. Idempotent.
    pub fn finish_mut(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.flush_block()?;
        self.w.write_all(&0u32.to_le_bytes())?;
        let total = self.total.to_le_bytes();
        self.w.write_all(&total)?;
        self.w.write_all(&crc32(&total).to_le_bytes())?;
        self.w.flush()?;
        self.finished = true;
        Ok(())
    }

    /// Finish and return the inner writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.finish_mut()?;
        Ok(self.w)
    }

    /// The first I/O error hit on the [`RecordSink`] path, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }

    fn stash(&mut self, res: io::Result<()>) {
        if let (Err(e), None) = (res, &self.error) {
            self.error = Some(e);
        }
    }
}

impl<W: Write> RecordSink for PtbWriter<W> {
    fn push(&mut self, r: &Record) {
        if self.error.is_none() {
            let res = self.push_record(r);
            self.stash(res);
        } else {
            // Still count, so a later error report is not misread as a
            // short trace.
            self.total += 1;
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            let res = self.finish_mut();
            self.stash(res);
        }
    }
}

/// A streaming `ptb` decoder: yields one block of records at a time out
/// of buffers reused across calls — no per-record allocation.
pub struct PtbBlockReader<R: Read> {
    r: R,
    meta: TraceMeta,
    bytes: Vec<u8>,
    records: Vec<Record>,
    read: u64,
    /// Data blocks decoded so far (the index of the *next* block).
    block: u64,
    /// Bytes consumed from the start of the stream — reported in
    /// corruption/truncation errors so a corrupt trace names where.
    offset: u64,
    done: bool,
}

impl<R: Read> PtbBlockReader<R> {
    /// Read and validate the header.
    pub fn new(mut r: R) -> io::Result<Self> {
        let (meta, header_bytes) = read_header(&mut r, &PTB_MAGIC, "ptb")?;
        Ok(PtbBlockReader {
            r,
            meta,
            bytes: Vec::new(),
            records: Vec::new(),
            read: 0,
            block: 0,
            offset: header_bytes,
            done: false,
        })
    }

    /// The trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    /// Data blocks decoded so far.
    pub fn blocks_read(&self) -> u64 {
        self.block
    }

    /// Decode the next block into an internal buffer; `Ok(None)` after
    /// a valid terminator. Truncation and corruption are I/O errors
    /// naming the failing block index and its byte offset in the file.
    pub fn next_block(&mut self) -> io::Result<Option<&[Record]>> {
        if self.done {
            return Ok(None);
        }
        let at = self.offset;
        let blk = self.block;
        let mut word = [0u8; 4];
        read_exact_ctx(
            &mut self.r,
            &mut word,
            &format!("ptb block {blk} header (byte offset {at})"),
        )?;
        let count = u32::from_le_bytes(word);
        if count == 0 {
            // Terminator: CRC-checked total record count.
            let what = format!("ptb terminator (byte offset {at})");
            let mut total = [0u8; 8];
            read_exact_ctx(&mut self.r, &mut total, &what)?;
            let mut crc = [0u8; 4];
            read_exact_ctx(&mut self.r, &mut crc, &what)?;
            if crc32(&total) != u32::from_le_bytes(crc) {
                return Err(bad_data(format!(
                    "ptb: terminator CRC mismatch (byte offset {at})"
                )));
            }
            let expected = u64::from_le_bytes(total);
            if expected != self.read {
                return Err(bad_data(format!(
                    "ptb: terminator expects {expected} records, read {}",
                    self.read
                )));
            }
            self.done = true;
            return Ok(None);
        }
        if count > MAX_BLOCK_RECORDS {
            return Err(bad_data(format!(
                "ptb: implausible count {count} in block {blk} (byte offset {at})"
            )));
        }
        let payload = count as usize * FRAME_BYTES;
        self.bytes.resize(payload, 0);
        read_exact_ctx(
            &mut self.r,
            &mut self.bytes,
            &format!("ptb block {blk} payload (block starts at byte offset {at})"),
        )?;
        let mut crc = [0u8; 4];
        read_exact_ctx(
            &mut self.r,
            &mut crc,
            &format!("ptb block {blk} CRC (block starts at byte offset {at})"),
        )?;
        if crc32(&self.bytes) != u32::from_le_bytes(crc) {
            return Err(bad_data(format!(
                "ptb: CRC mismatch in block {blk} (block starts at byte offset {at})"
            )));
        }
        self.records.clear();
        self.records.reserve(count as usize);
        for frame in self.bytes.chunks_exact(FRAME_BYTES) {
            self.records.push(decode_record(frame)?);
        }
        self.read += count as u64;
        self.block += 1;
        self.offset += 4 + payload as u64 + 4;
        Ok(Some(&self.records))
    }
}

/// `read_exact` with a truncation message naming what was being read.
pub(crate) fn read_exact_ctx<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated file while reading {what}"),
            )
        } else {
            e
        }
    })
}

/// Write a whole trace as `ptb`.
pub fn write_ptb<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    let mut enc = PtbWriter::new(w, &trace.meta)?;
    for r in &trace.records {
        enc.push_record(r)?;
    }
    enc.finish_mut()
}

/// Read a whole trace previously written by [`write_ptb`].
pub fn read_ptb<R: Read>(r: R) -> io::Result<Trace> {
    let mut dec = PtbBlockReader::new(r)?;
    let mut trace = Trace::new(dec.meta().clone());
    while let Some(block) = dec.next_block()? {
        trace.records.extend_from_slice(block);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "ptb".into(),
            platform: "test".into(),
            ranks: 8,
            seed: 42,
        });
        for i in 0..n {
            t.push(Record {
                rank: (i % 8) as u32,
                call: CallKind::ALL[(i % 12) as usize],
                fd: (i % 5) as i32 - 1,
                offset: i << 16,
                bytes: 4096 + i,
                start_ns: i * 1_000,
                end_ns: i * 1_000 + 500 + i,
                phase: (i / 100) as u32,
            });
        }
        t
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_preserves_everything() {
        for n in [0u64, 1, 255, 1024, 3000] {
            let t = sample(n);
            let mut buf = Vec::new();
            write_ptb(&t, &mut buf).unwrap();
            let back = read_ptb(std::io::Cursor::new(&buf)).unwrap();
            assert_eq!(back.meta, t.meta, "n={n}");
            assert_eq!(back.records, t.records, "n={n}");
        }
    }

    #[test]
    fn call_codes_cover_every_kind() {
        for (i, k) in CallKind::ALL.iter().enumerate() {
            assert_eq!(call_code(*k) as usize, i);
            assert_eq!(call_from_code(i as u8).unwrap(), *k);
        }
        assert!(call_from_code(12).is_err());
    }

    #[test]
    fn sink_capture_equals_batch_write() {
        let t = sample(700);
        let mut batch = Vec::new();
        write_ptb(&t, &mut batch).unwrap();
        let mut sink = PtbWriter::new(Vec::new(), &t.meta).unwrap();
        for r in &t.records {
            RecordSink::push(&mut sink, r);
        }
        RecordSink::finish(&mut sink);
        assert!(sink.error().is_none());
        assert_eq!(sink.records_written(), 700);
        assert_eq!(sink.into_inner().unwrap(), batch);
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let t = sample(300);
        let mut buf = Vec::new();
        write_ptb(&t, &mut buf).unwrap();
        // Chop at several depths: header, mid-block, at a block
        // boundary (terminator missing), mid-terminator.
        for cut in [2, 6, 40, buf.len() - 1, buf.len() - 10] {
            let err = read_ptb(std::io::Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut={cut}: {err}");
            assert!(err.to_string().contains("truncated"), "cut={cut}: {err}");
        }
        // Truncating exactly after the last block (dropping the whole
        // terminator) must also fail — record count unverifiable.
        let end_of_blocks = buf.len() - 16;
        assert!(read_ptb(std::io::Cursor::new(&buf[..end_of_blocks])).is_err());
    }

    #[test]
    fn corruption_is_rejected_by_crc() {
        let t = sample(300);
        let mut clean = Vec::new();
        write_ptb(&t, &mut clean).unwrap();
        // Flip one bit in the meta, a record payload, and the terminator.
        for pos in [9usize, clean.len() / 2, clean.len() - 6] {
            let mut buf = clean.clone();
            buf[pos] ^= 0x40;
            let err = read_ptb(std::io::Cursor::new(&buf)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "pos={pos}: {err}");
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let t = sample(10);
        let mut buf = Vec::new();
        write_ptb(&t, &mut buf).unwrap();
        buf[3] = b'9';
        let err = read_ptb(std::io::Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        buf[0] = b'X';
        let err = read_ptb(std::io::Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn block_reader_streams_and_counts() {
        let t = sample(2500);
        let mut buf = Vec::new();
        write_ptb(&t, &mut buf).unwrap();
        let mut dec = PtbBlockReader::new(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(dec.meta(), &t.meta);
        let mut seen = Vec::new();
        let mut blocks = 0;
        while let Some(block) = dec.next_block().unwrap() {
            assert!(block.len() <= DEFAULT_BLOCK_RECORDS);
            seen.extend_from_slice(block);
            blocks += 1;
        }
        assert_eq!(blocks, 3); // 1024 + 1024 + 452
        assert_eq!(dec.records_read(), 2500);
        assert_eq!(seen, t.records);
        // Exhausted readers stay exhausted.
        assert!(dec.next_block().unwrap().is_none());
    }
}
