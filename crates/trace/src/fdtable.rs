//! The open-file-descriptor lookup table.
//!
//! IPM-I/O keeps "a look-up table of open file descriptors \[that\] allows
//! IPM-I/O to associate events interacting with the same file". The same
//! structure serves the simulator: each rank owns one table mapping its
//! descriptors to file identities and cursor positions.

use std::collections::HashMap;

/// Identity of a file within a run (the simulator's file namespace).
pub type FileId = u32;

/// State tracked per open descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFile {
    /// Which file this descriptor refers to.
    pub file: FileId,
    /// Current cursor position (advanced by read/write, set by seek).
    pub position: u64,
    /// Path label for reports.
    pub path: String,
}

/// Per-rank descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    next_fd: i32,
    open: HashMap<i32, OpenFile>,
    opened_total: u64,
}

impl FdTable {
    /// An empty table. Descriptors start at 3 (0–2 are "taken" by stdio,
    /// matching POSIX numbering in real traces).
    pub fn new() -> Self {
        FdTable {
            next_fd: 3,
            open: HashMap::new(),
            opened_total: 0,
        }
    }

    /// Open `file`, returning the new descriptor.
    pub fn open(&mut self, file: FileId, path: impl Into<String>) -> i32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open.insert(
            fd,
            OpenFile {
                file,
                position: 0,
                path: path.into(),
            },
        );
        self.opened_total += 1;
        fd
    }

    /// Close `fd`; returns the entry if it was open.
    pub fn close(&mut self, fd: i32) -> Option<OpenFile> {
        self.open.remove(&fd)
    }

    /// Look up an open descriptor.
    pub fn get(&self, fd: i32) -> Option<&OpenFile> {
        self.open.get(&fd)
    }

    /// Mutable lookup (cursor updates).
    pub fn get_mut(&mut self, fd: i32) -> Option<&mut OpenFile> {
        self.open.get_mut(&fd)
    }

    /// Set the cursor for `fd`; returns false if not open.
    pub fn seek(&mut self, fd: i32, position: u64) -> bool {
        match self.open.get_mut(&fd) {
            Some(f) => {
                f.position = position;
                true
            }
            None => false,
        }
    }

    /// Advance the cursor after a transfer of `bytes`; returns the offset
    /// the transfer started at, or `None` if `fd` is not open.
    pub fn advance(&mut self, fd: i32, bytes: u64) -> Option<u64> {
        let f = self.open.get_mut(&fd)?;
        let at = f.position;
        f.position += bytes;
        Some(at)
    }

    /// Number of currently open descriptors.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Total descriptors ever opened.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_assigns_increasing_fds_from_3() {
        let mut t = FdTable::new();
        let a = t.open(0, "a");
        let b = t.open(1, "b");
        assert_eq!((a, b), (3, 4));
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn cursor_tracks_sequential_io() {
        let mut t = FdTable::new();
        let fd = t.open(7, "matrix");
        assert_eq!(t.advance(fd, 100), Some(0));
        assert_eq!(t.advance(fd, 50), Some(100));
        assert_eq!(t.get(fd).unwrap().position, 150);
        assert!(t.seek(fd, 1 << 20));
        assert_eq!(t.advance(fd, 8), Some(1 << 20));
    }

    #[test]
    fn close_removes_entry_and_fds_are_not_reused() {
        let mut t = FdTable::new();
        let fd = t.open(0, "x");
        assert!(t.close(fd).is_some());
        assert!(t.close(fd).is_none());
        assert_eq!(t.get(fd), None);
        let fd2 = t.open(0, "x");
        assert_ne!(fd, fd2, "descriptors are unique per run for trace clarity");
        assert_eq!(t.opened_total(), 2);
    }

    #[test]
    fn operations_on_unknown_fd_fail_cleanly() {
        let mut t = FdTable::new();
        assert!(!t.seek(99, 0));
        assert_eq!(t.advance(99, 10), None);
    }
}
