//! IPM-style per-call summary report: counts, bytes, and duration
//! statistics per intercepted call kind — the "profile block" a real IPM
//! run prints at exit.

use crate::record::CallKind;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Per-kind aggregate line of the summary.
#[derive(Debug, Clone, PartialEq)]
pub struct KindSummary {
    /// Call kind.
    pub kind: CallKind,
    /// Event count.
    pub count: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Minimum duration (s).
    pub min_s: f64,
    /// Mean duration (s).
    pub mean_s: f64,
    /// Maximum duration (s).
    pub max_s: f64,
    /// Total time in this call across ranks (s).
    pub total_s: f64,
}

/// Whole-run summary.
#[derive(Debug, Clone)]
pub struct Summary {
    /// One entry per call kind that appears in the trace.
    pub kinds: Vec<KindSummary>,
    /// Run makespan (s).
    pub makespan_s: f64,
    /// Aggregate data rate (MB/s).
    pub rate_mb_s: f64,
    /// Rank count from metadata.
    pub ranks: u32,
}

/// Compute the summary of `trace`.
pub fn summarize(trace: &Trace) -> Summary {
    let mut kinds = Vec::new();
    for &kind in &CallKind::ALL {
        let mut count = 0u64;
        let mut bytes = 0u64;
        let mut min_s = f64::INFINITY;
        let mut max_s = 0f64;
        let mut total_s = 0f64;
        for r in trace.of_kind(kind) {
            count += 1;
            bytes += r.bytes;
            let s = r.secs();
            min_s = min_s.min(s);
            max_s = max_s.max(s);
            total_s += s;
        }
        if count > 0 {
            kinds.push(KindSummary {
                kind,
                count,
                bytes,
                min_s,
                mean_s: total_s / count as f64,
                max_s,
                total_s,
            });
        }
    }
    Summary {
        kinds,
        makespan_s: trace.makespan().as_secs_f64(),
        rate_mb_s: trace.aggregate_rate_mb_s(),
        ranks: trace.meta.ranks,
    }
}

/// Render the summary as a fixed-width text block.
pub fn render(trace: &Trace) -> String {
    let s = summarize(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# IPM-I/O summary: {} on {} ({} ranks, seed {})",
        trace.meta.experiment, trace.meta.platform, s.ranks, trace.meta.seed
    );
    let _ = writeln!(
        out,
        "# makespan {:>10.3} s   aggregate {:>10.1} MB/s",
        s.makespan_s, s.rate_mb_s
    );
    let _ = writeln!(
        out,
        "{:<11} {:>10} {:>16} {:>12} {:>12} {:>12} {:>12}",
        "call", "count", "bytes", "min(s)", "mean(s)", "max(s)", "total(s)"
    );
    for k in &s.kinds {
        let _ = writeln!(
            out,
            "{:<11} {:>10} {:>16} {:>12.6} {:>12.6} {:>12.6} {:>12.3}",
            k.kind.name(),
            k.count,
            k.bytes,
            k.min_s,
            k.mean_s,
            k.max_s,
            k.total_s
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::trace::TraceMeta;

    fn trace() -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "sum".into(),
            platform: "test".into(),
            ranks: 2,
            seed: 0,
        });
        for (rank, secs, bytes) in [(0u32, 1.0f64, 100u64), (1, 3.0, 100)] {
            t.push(Record {
                rank,
                call: CallKind::Write,
                fd: 3,
                offset: 0,
                bytes,
                start_ns: 0,
                end_ns: (secs * 1e9) as u64,
                phase: 0,
            });
        }
        t.push(Record {
            rank: 0,
            call: CallKind::Barrier,
            fd: -1,
            offset: 0,
            bytes: 0,
            start_ns: 1_000_000_000,
            end_ns: 3_000_000_000,
            phase: 0,
        });
        t
    }

    #[test]
    fn summary_stats_per_kind() {
        let s = summarize(&trace());
        assert_eq!(s.kinds.len(), 2); // write + barrier
        let w = s.kinds.iter().find(|k| k.kind == CallKind::Write).unwrap();
        assert_eq!(w.count, 2);
        assert_eq!(w.bytes, 200);
        assert_eq!(w.min_s, 1.0);
        assert_eq!(w.mean_s, 2.0);
        assert_eq!(w.max_s, 3.0);
        assert_eq!(w.total_s, 4.0);
    }

    #[test]
    fn render_contains_key_fields() {
        let text = render(&trace());
        assert!(text.contains("IPM-I/O summary: sum"));
        assert!(text.contains("write"));
        assert!(text.contains("barrier"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&Trace::default());
        assert!(s.kinds.is_empty());
        assert_eq!(s.makespan_s, 0.0);
    }
}
