//! Barrier-phase segmentation.
//!
//! HPC I/O "happens in synchronous phases" — the trace diagrams of the
//! paper show vertically banded intervals separated by barriers, and the
//! order-statistics argument applies *per phase*: the task that arrives
//! last at the barrier defines that phase's performance. This module
//! summarizes a trace phase-by-phase.

use crate::record::CallKind;
use crate::trace::Trace;
use pio_des::{SimSpan, SimTime};

/// Aggregate view of one barrier phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Phase index.
    pub phase: u32,
    /// Earliest record start in the phase.
    pub start: SimTime,
    /// Latest record end in the phase (excluding barrier waits).
    pub end: SimTime,
    /// Number of I/O records.
    pub io_ops: u64,
    /// Bytes read (data + metadata).
    pub bytes_read: u64,
    /// Bytes written (data + metadata).
    pub bytes_written: u64,
    /// Sum of per-op I/O time across ranks.
    pub io_time_total: SimSpan,
    /// The longest single I/O op — the order-statistic that bounds the phase.
    pub slowest_op: SimSpan,
    /// Total barrier-wait time across ranks (the "white space").
    pub barrier_wait_total: SimSpan,
}

impl PhaseSummary {
    /// Phase wall duration.
    pub fn duration(&self) -> SimSpan {
        self.end.since(self.start)
    }

    /// Aggregate phase data rate in MB/s.
    pub fn rate_mb_s(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / 1e6 / secs
    }
}

/// Summarize every phase of `trace` (indices without records are skipped).
pub fn phase_summaries(trace: &Trace) -> Vec<PhaseSummary> {
    let n = trace.phase_count();
    let mut out = Vec::new();
    for p in 0..n {
        let mut s = PhaseSummary {
            phase: p,
            start: SimTime::MAX,
            end: SimTime::ZERO,
            io_ops: 0,
            bytes_read: 0,
            bytes_written: 0,
            io_time_total: SimSpan::ZERO,
            slowest_op: SimSpan::ZERO,
            barrier_wait_total: SimSpan::ZERO,
        };
        let mut any = false;
        for r in trace.in_phase(p) {
            any = true;
            s.start = s.start.min(r.start());
            if r.call == CallKind::Barrier {
                s.barrier_wait_total += r.duration();
                continue;
            }
            s.end = s.end.max(r.end());
            if r.call.is_io() {
                s.io_ops += 1;
                s.io_time_total += r.duration();
                if r.duration() > s.slowest_op {
                    s.slowest_op = r.duration();
                }
                if r.call.is_read() {
                    s.bytes_read += r.bytes;
                } else {
                    s.bytes_written += r.bytes;
                }
            }
        }
        if any {
            if s.end < s.start {
                s.end = s.start; // phase with only barriers
            }
            out.push(s);
        }
    }
    out
}

/// The fraction of total rank-time spent waiting at barriers — a direct
/// measure of how much the slowest performers cost (paper §III).
pub fn barrier_wait_fraction(trace: &Trace) -> f64 {
    let wait: f64 = trace.of_kind(CallKind::Barrier).map(|r| r.secs()).sum();
    let busy: f64 = trace
        .records
        .iter()
        .filter(|r| r.call != CallKind::Barrier)
        .map(|r| r.secs())
        .sum();
    let total = wait + busy;
    if total <= 0.0 {
        0.0
    } else {
        wait / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::trace::TraceMeta;

    fn rec(rank: u32, call: CallKind, bytes: u64, start: u64, end: u64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: start,
            end_ns: end,
            phase,
        }
    }

    fn two_phase_trace() -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        // Phase 0: two writes, one barrier wait.
        t.push(rec(0, CallKind::Write, 100, 0, 1_000_000_000, 0));
        t.push(rec(1, CallKind::Write, 100, 0, 3_000_000_000, 0));
        t.push(rec(
            0,
            CallKind::Barrier,
            0,
            1_000_000_000,
            3_000_000_000,
            0,
        ));
        // Phase 1: reads.
        t.push(rec(0, CallKind::Read, 50, 3_000_000_000, 4_000_000_000, 1));
        t.push(rec(1, CallKind::Read, 50, 3_000_000_000, 3_500_000_000, 1));
        t
    }

    #[test]
    fn summaries_cover_phases() {
        let t = two_phase_trace();
        let ps = phase_summaries(&t);
        assert_eq!(ps.len(), 2);
        let p0 = &ps[0];
        assert_eq!(p0.io_ops, 2);
        assert_eq!(p0.bytes_written, 200);
        assert_eq!(p0.bytes_read, 0);
        assert_eq!(p0.slowest_op, SimSpan::from_secs(3));
        assert_eq!(p0.barrier_wait_total, SimSpan::from_secs(2));
        assert_eq!(p0.duration(), SimSpan::from_secs(3));
        let p1 = &ps[1];
        assert_eq!(p1.bytes_read, 100);
        assert_eq!(p1.duration(), SimSpan::from_secs(1));
    }

    #[test]
    fn phase_rate() {
        let t = two_phase_trace();
        let ps = phase_summaries(&t);
        // Phase 0: 200 bytes over 3 s.
        assert!((ps[0].rate_mb_s() - 200.0 / 1e6 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn wait_fraction() {
        let t = two_phase_trace();
        // Busy: 1+3+1+0.5 = 5.5 s; wait: 2 s.
        let f = barrier_wait_fraction(&t);
        assert!((f - 2.0 / 7.5).abs() < 1e-12, "{f}");
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let t = Trace::default();
        assert!(phase_summaries(&t).is_empty());
        assert_eq!(barrier_wait_fraction(&t), 0.0);
    }

    #[test]
    fn phase_with_only_barrier_is_degenerate_but_present() {
        let mut t = Trace::new(TraceMeta::default());
        t.push(rec(0, CallKind::Barrier, 0, 0, 1_000_000_000, 0));
        let ps = phase_summaries(&t);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].io_ops, 0);
        assert_eq!(ps[0].duration(), SimSpan::ZERO);
    }
}
