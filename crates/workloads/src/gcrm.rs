//! GCRM — the Global Cloud Resolving Model I/O kernel (paper §V).
//!
//! 10,240 tasks write six variables of 1.6 MB records to one shared
//! H5Part file: "three writes of a single 1.6 MB record, each followed by
//! a barrier, then three writes of six 1.6 MB records, followed by
//! another barrier". Four configurations reproduce the paper's
//! optimization ladder:
//!
//! 1. [`GcrmStage::Baseline`] — every task writes its own records,
//!    unaligned, metadata committed per dataset on rank 0 (310 s).
//! 2. [`GcrmStage::CollectiveBuffering`] — data funnels through a small
//!    set of aggregators (80 in the paper; 190 s).
//! 3. [`GcrmStage::Aligned`] — plus records padded to 1 MiB boundaries
//!    (150 s).
//! 4. [`GcrmStage::MetadataAggregated`] — plus metadata deferred to close
//!    and written in 1 MiB chunks (75 s).

use pio_h5::{Aggregation, DatasetSpec, H5Config, H5Layout, H5PartWriter, MetadataPolicy};
use pio_mpi::program::{FileSpec, Job, Program};

/// Which optimization stage to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcrmStage {
    /// All tasks write directly, unaligned, per-operation metadata.
    Baseline,
    /// Data aggregated to `aggregators` I/O tasks; still unaligned.
    CollectiveBuffering {
        /// Number of I/O tasks.
        aggregators: u32,
    },
    /// Collective buffering + records aligned to `alignment` bytes.
    Aligned {
        /// Number of I/O tasks.
        aggregators: u32,
        /// Record alignment (1 MiB in the paper).
        alignment: u64,
    },
    /// Aligned + metadata deferred to close, aggregated into 1 MiB writes.
    MetadataAggregated {
        /// Number of I/O tasks.
        aggregators: u32,
        /// Record alignment.
        alignment: u64,
    },
}

/// GCRM kernel parameters.
#[derive(Debug, Clone)]
pub struct GcrmConfig {
    /// MPI task count (paper: 10,240).
    pub tasks: u32,
    /// Record size (paper: 1.6 MB).
    pub record_bytes: u64,
    /// Single-record variables (paper: 3).
    pub single_record_vars: u32,
    /// Multi-record variables (paper: 3).
    pub multi_record_vars: u32,
    /// Records per rank in the multi-record variables (paper: 6).
    pub records_per_multi_var: u32,
    /// The optimization stage.
    pub stage: GcrmStage,
    /// Middleware metadata settings.
    pub h5: H5Config,
    /// Header/metadata region size.
    pub header_bytes: u64,
}

impl Default for GcrmConfig {
    fn default() -> Self {
        GcrmConfig {
            tasks: 10_240,
            record_bytes: (16 << 20) / 10, // 1.6 MiB
            single_record_vars: 3,
            multi_record_vars: 3,
            records_per_multi_var: 6,
            stage: GcrmStage::Baseline,
            h5: H5Config::default(),
            header_bytes: 8 << 20,
        }
    }
}

impl GcrmConfig {
    /// The paper's baseline (Figure 6(a–c)).
    pub fn paper_baseline() -> Self {
        Self::default()
    }

    /// The paper's stage for a figure row: 0 = baseline, 1 = collective
    /// buffering (80), 2 = +alignment, 3 = +metadata aggregation.
    pub fn paper_stage(stage: u32) -> Self {
        let stage = match stage {
            0 => GcrmStage::Baseline,
            1 => GcrmStage::CollectiveBuffering { aggregators: 80 },
            2 => GcrmStage::Aligned {
                aggregators: 80,
                alignment: 1 << 20,
            },
            _ => GcrmStage::MetadataAggregated {
                aggregators: 80,
                alignment: 1 << 20,
            },
        };
        let mut cfg = GcrmConfig {
            stage,
            ..Self::default()
        };
        if matches!(cfg.stage, GcrmStage::MetadataAggregated { .. }) {
            cfg.h5.policy = MetadataPolicy::DeferredAggregated {
                write_bytes: 1 << 20,
            };
        }
        cfg
    }

    /// Scaled-down variant: divides the task count but preserves the
    /// total metadata volume (HDF5 metadata scales with the *full* rank
    /// count; a scaled run must keep the same serialized metadata load or
    /// the stage-3 optimization becomes invisible).
    pub fn scaled(&self, scale: u32) -> Self {
        let mut cfg = self.clone();
        cfg.tasks = (self.tasks / scale).max(8);
        cfg.h5.meta_writes_per_rank =
            self.h5.meta_writes_per_rank * (self.tasks as f64 / cfg.tasks as f64);
        cfg.stage = match self.stage {
            GcrmStage::Baseline => GcrmStage::Baseline,
            GcrmStage::CollectiveBuffering { aggregators } => GcrmStage::CollectiveBuffering {
                aggregators: (aggregators / scale).max(2),
            },
            GcrmStage::Aligned {
                aggregators,
                alignment,
            } => GcrmStage::Aligned {
                aggregators: (aggregators / scale).max(2),
                alignment,
            },
            GcrmStage::MetadataAggregated {
                aggregators,
                alignment,
            } => GcrmStage::MetadataAggregated {
                aggregators: (aggregators / scale).max(2),
                alignment,
            },
        };
        cfg
    }

    /// Variable shapes in file order.
    pub fn datasets(&self) -> Vec<DatasetSpec> {
        let mut v = Vec::new();
        for _ in 0..self.single_record_vars {
            v.push(DatasetSpec {
                records_per_rank: 1,
                record_bytes: self.record_bytes,
            });
        }
        for _ in 0..self.multi_record_vars {
            v.push(DatasetSpec {
                records_per_rank: self.records_per_multi_var,
                record_bytes: self.record_bytes,
            });
        }
        v
    }

    /// Alignment the stage implies.
    pub fn alignment(&self) -> u64 {
        match self.stage {
            GcrmStage::Baseline | GcrmStage::CollectiveBuffering { .. } => 0,
            GcrmStage::Aligned { alignment, .. }
            | GcrmStage::MetadataAggregated { alignment, .. } => alignment,
        }
    }

    /// Aggregation plan the stage implies (`None` for direct writing).
    pub fn aggregation(&self) -> Option<Aggregation> {
        match self.stage {
            GcrmStage::Baseline => None,
            GcrmStage::CollectiveBuffering { aggregators }
            | GcrmStage::Aligned { aggregators, .. }
            | GcrmStage::MetadataAggregated { aggregators, .. } => {
                Some(Aggregation::new(self.tasks, aggregators))
            }
        }
    }

    /// Payload bytes the whole job writes (excluding padding/metadata).
    pub fn total_payload(&self) -> u64 {
        let per_rank: u64 = self
            .datasets()
            .iter()
            .map(|d| d.record_bytes * d.records_per_rank as u64)
            .sum();
        per_rank * self.tasks as u64
    }

    /// Build the layout.
    pub fn layout(&self) -> H5Layout {
        H5Layout::new(
            self.tasks,
            self.datasets(),
            self.alignment(),
            self.header_bytes,
        )
    }

    /// Build the job for the configured stage.
    pub fn job(&self) -> Job {
        let layout = self.layout();
        let n_vars = layout.datasets.len();
        match self.aggregation() {
            None => {
                // Baseline: every rank opens, writes its own records per
                // variable, rank 0 commits metadata, barrier per variable.
                let programs = (0..self.tasks)
                    .map(|rank| {
                        let mut w = H5PartWriter::new(&layout, self.h5, rank, 0);
                        w.open();
                        w.barrier();
                        for var in 0..n_vars {
                            w.write_own_records(var);
                            w.commit_dataset_metadata(var);
                            w.barrier();
                        }
                        w.close();
                        w.finish()
                    })
                    .collect();
                Job {
                    programs,
                    files: vec![FileSpec { shared: true }],
                }
            }
            Some(plan) => {
                // Collective buffering: members ship records to their
                // aggregator; aggregators write everyone's slots.
                let programs = (0..self.tasks)
                    .map(|rank| {
                        if plan.is_aggregator(rank) {
                            let mut w = H5PartWriter::new(&layout, self.h5, rank, 0);
                            w.open();
                            w.barrier();
                            let members = plan.members_of(rank);
                            for var in 0..n_vars {
                                let recs = layout.datasets[var].records_per_rank;
                                for &m in &members {
                                    if m != rank {
                                        w.recv(m);
                                    }
                                    let _ = recs;
                                    w.write_records_for(var, m);
                                }
                                w.commit_dataset_metadata(var);
                                w.barrier();
                            }
                            w.close();
                            w.finish()
                        } else {
                            // Members only ship data and synchronize.
                            let agg = plan.aggregator_of(rank);
                            let mut ops = Vec::new();
                            ops.push(pio_mpi::program::Op::Barrier); // matches open barrier
                            for var in 0..n_vars {
                                let d = layout.datasets[var];
                                ops.push(pio_mpi::program::Op::Send {
                                    to: agg,
                                    bytes: d.record_bytes * d.records_per_rank as u64,
                                });
                                ops.push(pio_mpi::program::Op::Barrier);
                            }
                            Program { ops }
                        }
                    })
                    .collect();
                Job {
                    programs,
                    files: vec![FileSpec { shared: true }],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_fs::FsConfig;
    use pio_mpi::program::Op;
    use pio_mpi::{RunConfig, Runner};

    fn run(job: &Job, cfg: RunConfig) -> pio_mpi::RunReport {
        Runner::new(job, cfg).execute_one().unwrap()
    }
    use pio_trace::CallKind;

    fn small(stage: GcrmStage) -> GcrmConfig {
        GcrmConfig {
            tasks: 16,
            record_bytes: (16 << 20) / 10,
            stage,
            ..GcrmConfig::default()
        }
    }

    #[test]
    fn paper_shapes() {
        let cfg = GcrmConfig::paper_baseline();
        assert_eq!(cfg.tasks, 10_240);
        assert_eq!(cfg.datasets().len(), 6);
        // 3×1 + 3×6 = 21 records of 1.6 MiB per rank = 33.6 MiB.
        assert_eq!(cfg.total_payload(), 10_240 * 21 * ((16 << 20) / 10));
        let s3 = GcrmConfig::paper_stage(3);
        assert!(matches!(
            s3.h5.policy,
            MetadataPolicy::DeferredAggregated { .. }
        ));
        assert_eq!(s3.alignment(), 1 << 20);
    }

    #[test]
    fn baseline_job_validates_and_runs() {
        let cfg = small(GcrmStage::Baseline);
        let job = cfg.job();
        job.validate().unwrap();
        assert_eq!(job.ranks(), 16);
        let res = run(&job, RunConfig::new(FsConfig::tiny_test(), 3, "gcrm-base"));
        // Data payload all written (plus metadata on top).
        assert!(res.stats.bytes_written >= cfg.total_payload());
        res.trace().validate().unwrap();
        // Unaligned shared records must conflict.
        assert!(res.lock_stats.contended > 0, "expected lock conflicts");
        // Metadata on rank 0 only.
        assert!(res
            .trace()
            .of_kind(CallKind::MetaWrite)
            .all(|r| r.rank == 0));
    }

    #[test]
    fn collective_job_moves_data_through_aggregators() {
        let cfg = small(GcrmStage::CollectiveBuffering { aggregators: 4 });
        let job = cfg.job();
        job.validate().unwrap();
        let res = run(&job, RunConfig::new(FsConfig::tiny_test(), 3, "gcrm-cb"));
        // Data-plane writes carry exactly the payload (metadata is
        // accounted separately as MetaWrite).
        assert_eq!(res.stats.bytes_written, cfg.total_payload());
        assert!(res.trace().bytes_of(CallKind::MetaWrite) > 0);
        // Only aggregators write data.
        let writers: std::collections::HashSet<u32> = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.rank)
            .collect();
        assert_eq!(writers.len(), 4);
        // Sends happened from non-aggregators.
        assert!(res.trace().of_kind(CallKind::Send).count() > 0);
    }

    #[test]
    fn aligned_stage_eliminates_conflicts() {
        let unaligned = small(GcrmStage::CollectiveBuffering { aggregators: 4 });
        let aligned = small(GcrmStage::Aligned {
            aggregators: 4,
            alignment: 1 << 20,
        });
        let ru = run(
            &unaligned.job(),
            RunConfig::new(FsConfig::tiny_test(), 5, "gcrm-unaligned"),
        );
        let ra = run(
            &aligned.job(),
            RunConfig::new(FsConfig::tiny_test(), 5, "gcrm-aligned"),
        );
        assert_eq!(
            ra.lock_stats.contended, 0,
            "aligned writes must not conflict"
        );
        let _ = ru; // unaligned CB may conflict only at group boundaries
                    // All aligned write offsets are on MiB boundaries.
        for r in ra.trace().of_kind(CallKind::Write) {
            assert_eq!(r.offset % (1 << 20), 0);
        }
    }

    #[test]
    fn metadata_aggregation_reduces_meta_ops() {
        let mut per_op = small(GcrmStage::Aligned {
            aggregators: 4,
            alignment: 1 << 20,
        });
        per_op.h5.meta_writes_per_rank = 1.0;
        let mut agg = small(GcrmStage::MetadataAggregated {
            aggregators: 4,
            alignment: 1 << 20,
        });
        agg.h5.meta_writes_per_rank = 1.0;
        agg.h5.policy = MetadataPolicy::DeferredAggregated {
            write_bytes: 1 << 20,
        };
        let j1 = per_op.job();
        let j2 = agg.job();
        let count_meta = |j: &pio_mpi::program::Job| {
            j.programs[0]
                .ops
                .iter()
                .filter(|o| matches!(o, Op::MetaWrite { .. }))
                .count()
        };
        // Per-op: 16 tasks × 1.0 per dataset × 6 datasets = 96 small writes.
        assert_eq!(count_meta(&j1), 96);
        // Aggregated: 96 × 2 KB = 192 KB → a single deferred write.
        assert_eq!(count_meta(&j2), 1);
    }

    #[test]
    fn stages_get_progressively_faster_at_small_scale() {
        // The paper's headline: each optimization stage reduces run time.
        // At 16 tasks on the tiny platform the ordering should hold for
        // baseline vs the collective stages.
        let mut times = Vec::new();
        for stage in 0..4u32 {
            let mut cfg = GcrmConfig::paper_stage(stage).scaled(640); // 16 tasks
            cfg.h5.meta_writes_per_rank = 2.0;
            let job = cfg.job();
            let res = run(
                &job,
                RunConfig::new(FsConfig::tiny_test(), 11, format!("gcrm-s{stage}")),
            );
            times.push(res.wall_secs());
        }
        assert!(
            times[3] < times[0],
            "final stage must beat baseline: {times:?}"
        );
        assert!(
            times[3] <= times[2] + 1e-9,
            "metadata aggregation must not slow things: {times:?}"
        );
    }

    #[test]
    fn scaled_keeps_aggregator_ratio_sane() {
        let cfg = GcrmConfig::paper_stage(1).scaled(64);
        assert_eq!(cfg.tasks, 160);
        if let GcrmStage::CollectiveBuffering { aggregators } = cfg.stage {
            assert!(aggregators >= 1 && aggregators < cfg.tasks);
        } else {
            panic!("stage changed");
        }
    }
}
