//! Periodic checkpointing — the I/O pattern the paper's §III names as
//! what HPC I/O mostly is: "large-scale data movement, such as
//! check-pointing the state of the running application".
//!
//! Not one of the paper's three measured workloads, but the natural
//! fourth: compute for a while, dump the full application state, repeat.
//! Supports the two classic layouts (one shared checkpoint file at
//! per-rank offsets vs file-per-process) and an optional restart read,
//! so the ensemble tooling can be exercised on the pattern the paper
//! motivates with.

use pio_des::SimSpan;
use pio_mpi::program::{FileSpec, Job, Op, Program};

/// Checkpoint workload parameters.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// MPI task count.
    pub tasks: u32,
    /// Bytes of state each task dumps per checkpoint.
    pub state_bytes: u64,
    /// Number of checkpoint epochs.
    pub epochs: u32,
    /// Compute time between checkpoints.
    pub compute: SimSpan,
    /// One shared file (per-rank offsets, stripe-aligned) or one file per
    /// process.
    pub file_per_process: bool,
    /// Restart: read the last checkpoint back at the end (failure
    /// recovery path).
    pub restart_read: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            tasks: 256,
            state_bytes: 256 << 20,
            epochs: 4,
            compute: SimSpan::from_secs(30),
            file_per_process: false,
            restart_read: false,
        }
    }
}

impl CheckpointConfig {
    /// Scaled-down variant (divides the task count).
    pub fn scaled(&self, scale: u32) -> Self {
        CheckpointConfig {
            tasks: (self.tasks / scale).max(4),
            ..self.clone()
        }
    }

    /// Stripe-aligned slot for one rank's state in the shared layout.
    pub fn slot_bytes(&self) -> u64 {
        self.state_bytes.div_ceil(1 << 20) * (1 << 20)
    }

    /// Total bytes written across all epochs.
    pub fn total_bytes_written(&self) -> u64 {
        self.tasks as u64 * self.state_bytes * self.epochs as u64
    }

    /// Build the job. Each epoch: compute, dump state, barrier (the
    /// checkpoint must be globally consistent), flush every other epoch
    /// (checkpoint libraries fsync on commit).
    pub fn job(&self) -> Job {
        let programs = (0..self.tasks)
            .map(|t| {
                let (file, base) = if self.file_per_process {
                    (t, 0u64)
                } else {
                    (0u32, t as u64 * self.slot_bytes())
                };
                let mut ops = vec![Op::Open { file }, Op::Barrier];
                for _epoch in 0..self.epochs {
                    if self.compute > SimSpan::ZERO {
                        ops.push(Op::Compute { span: self.compute });
                    }
                    // Checkpoints overwrite in place (double-buffered
                    // schemes alternate; in-place is the simplest commit).
                    ops.push(Op::WriteAt {
                        file,
                        offset: base,
                        bytes: self.state_bytes,
                    });
                    ops.push(Op::Flush { file });
                    ops.push(Op::Barrier);
                }
                if self.restart_read {
                    ops.push(Op::ReadAt {
                        file,
                        offset: base,
                        bytes: self.state_bytes,
                    });
                    ops.push(Op::Barrier);
                }
                ops.push(Op::Close { file });
                Program { ops }
            })
            .collect();
        let files = if self.file_per_process {
            vec![FileSpec { shared: false }; self.tasks as usize]
        } else {
            vec![FileSpec { shared: true }]
        };
        Job { programs, files }
    }

    /// Fraction of wall time a run spent checkpointing (I/O + flush) —
    /// the number a center uses to size its file system ("I/O should
    /// consume less than 5% of run time").
    pub fn io_fraction(trace: &pio_trace::Trace) -> f64 {
        let io: f64 = trace
            .records
            .iter()
            .filter(|r| r.call.is_io() || r.call == pio_trace::CallKind::Flush)
            .map(|r| r.secs())
            .sum();
        let compute: f64 = trace
            .of_kind(pio_trace::CallKind::Compute)
            .map(|r| r.secs())
            .sum();
        let total = io + compute;
        if total <= 0.0 {
            0.0
        } else {
            io / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_fs::FsConfig;
    use pio_mpi::{RunConfig, Runner};

    fn run(job: &Job, cfg: RunConfig) -> pio_mpi::RunReport {
        Runner::new(job, cfg).execute_one().unwrap()
    }
    use pio_trace::CallKind;

    fn small(fpp: bool) -> CheckpointConfig {
        CheckpointConfig {
            tasks: 8,
            state_bytes: 8 << 20,
            epochs: 3,
            compute: SimSpan::from_secs(2),
            file_per_process: fpp,
            restart_read: true,
        }
    }

    #[test]
    fn job_shape_and_conservation() {
        let cfg = small(false);
        let job = cfg.job();
        job.validate().unwrap();
        let res = run(&job, RunConfig::new(FsConfig::tiny_test(), 1, "ckpt"));
        assert_eq!(res.stats.bytes_written, cfg.total_bytes_written());
        assert_eq!(res.stats.bytes_read, 8 * (8 << 20));
        assert_eq!(res.stats.flushes, 8 * 3);
        res.trace().validate().unwrap();
    }

    #[test]
    fn shared_slots_are_aligned_and_exclusive() {
        let cfg = small(false);
        assert_eq!(cfg.slot_bytes() % (1 << 20), 0);
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::tiny_test(), 2, "ckpt2"),
        );
        assert_eq!(
            res.lock_stats.contended, 0,
            "aligned exclusive slots never conflict"
        );
    }

    #[test]
    fn fpp_variant_uses_private_files() {
        let cfg = small(true);
        let job = cfg.job();
        assert_eq!(job.files.len(), 8);
        let res = run(&job, RunConfig::new(FsConfig::tiny_test(), 3, "ckpt3"));
        assert_eq!(res.stats.bytes_written, cfg.total_bytes_written());
    }

    #[test]
    fn io_fraction_reflects_compute_ratio() {
        // Long compute → small I/O fraction; no compute → fraction 1.
        let mut cfg = small(false);
        cfg.compute = SimSpan::from_secs(60);
        cfg.restart_read = false;
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::tiny_test(), 4, "ckpt4"),
        );
        let frac = CheckpointConfig::io_fraction(res.trace());
        assert!(frac > 0.0 && frac < 0.2, "{frac}");
        let mut busy = small(false);
        busy.compute = SimSpan::ZERO;
        let res2 = run(
            &busy.job(),
            RunConfig::new(FsConfig::tiny_test(), 4, "ckpt5"),
        );
        assert_eq!(CheckpointConfig::io_fraction(res2.trace()), 1.0);
    }

    #[test]
    fn flush_makes_epochs_durable() {
        // After each epoch barrier, the OSTs have received everything the
        // epoch wrote (flush-before-barrier semantics).
        let cfg = small(false);
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::tiny_test(), 5, "ckpt6"),
        );
        // Flush records exist in each epoch's phase.
        let flush_phases: std::collections::HashSet<u32> = res
            .trace()
            .of_kind(CallKind::Flush)
            .map(|r| r.phase)
            .collect();
        assert!(flush_phases.len() >= 3);
    }
}
