//! IOR (Interleaved-Or-Random) — the parametrized I/O micro-benchmark.
//!
//! The paper's configuration: "IOR has been configured to run with 1024
//! tasks … Each task writes 512 MB to a unique offset within a shared
//! file, and does so in a single write() call, followed by a barrier.
//! This is then repeated five times." The Figure 2 variants split the
//! 512 MB into k = 2, 4, 8 successive calls "with no barrier until all
//! 512 MB has been written".

use pio_mpi::program::{FileSpec, Job, Op, Program};

/// IOR parameters.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// MPI task count.
    pub tasks: u32,
    /// Per-task block written per repetition (bytes).
    pub block_bytes: u64,
    /// Number of write() calls the block is split into (the paper's k).
    pub segments: u32,
    /// Repetitions (barriered phases).
    pub repetitions: u32,
    /// Read the block back after writing (IOR's `-r`; off in the paper's
    /// runs but part of the benchmark).
    pub read_back: bool,
    /// IOR's `-F` (filePerProc): each task writes its own file at offset
    /// 0 instead of a unique offset of one shared file. The paper's runs
    /// use a shared file; file-per-process is the classic comparison
    /// point (no shared-file locking, more metadata load).
    pub file_per_process: bool,
}

impl Default for IorConfig {
    fn default() -> Self {
        IorConfig {
            tasks: 1024,
            block_bytes: 512 << 20,
            segments: 1,
            repetitions: 5,
            read_back: false,
            file_per_process: false,
        }
    }
}

impl IorConfig {
    /// The paper's Figure 1 experiment.
    pub fn paper_fig1() -> Self {
        Self::default()
    }

    /// The paper's Figure 2 experiments (k = 1, 2, 4, 8; single phase of
    /// 512 MB with no intermediate barriers).
    pub fn paper_fig2(k: u32) -> Self {
        IorConfig {
            segments: k,
            repetitions: 1,
            ..Self::default()
        }
    }

    /// A scaled-down variant: `scale` divides the task count (per-task
    /// block unchanged, so per-node behaviour matches the full run when
    /// paired with `FsConfig::scaled`).
    pub fn scaled(&self, scale: u32) -> Self {
        IorConfig {
            tasks: (self.tasks / scale).max(4),
            ..self.clone()
        }
    }

    /// Per-segment transfer size.
    pub fn transfer_bytes(&self) -> u64 {
        self.block_bytes / self.segments as u64
    }

    /// Total bytes the job writes.
    pub fn total_bytes(&self) -> u64 {
        self.tasks as u64 * self.block_bytes * self.repetitions as u64
    }

    /// Build the job.
    pub fn job(&self) -> Job {
        assert!(self.segments >= 1 && self.block_bytes.is_multiple_of(self.segments as u64));
        let xfer = self.transfer_bytes();
        let programs = (0..self.tasks)
            .map(|t| {
                let (file, base) = if self.file_per_process {
                    (t, 0u64)
                } else {
                    (0u32, t as u64 * self.block_bytes)
                };
                let mut ops = vec![Op::Open { file }, Op::Barrier];
                for _rep in 0..self.repetitions {
                    for s in 0..self.segments {
                        ops.push(Op::WriteAt {
                            file,
                            offset: base + s as u64 * xfer,
                            bytes: xfer,
                        });
                    }
                    ops.push(Op::Barrier);
                    if self.read_back {
                        for s in 0..self.segments {
                            ops.push(Op::ReadAt {
                                file,
                                offset: base + s as u64 * xfer,
                                bytes: xfer,
                            });
                        }
                        ops.push(Op::Barrier);
                    }
                }
                ops.push(Op::Flush { file });
                ops.push(Op::Close { file });
                Program { ops }
            })
            .collect();
        let files = if self.file_per_process {
            vec![FileSpec { shared: false }; self.tasks as usize]
        } else {
            vec![FileSpec { shared: true }]
        };
        Job { programs, files }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_fs::FsConfig;
    use pio_mpi::{RunConfig, Runner};

    fn run(job: &Job, cfg: RunConfig) -> pio_mpi::RunReport {
        Runner::new(job, cfg).execute_one().unwrap()
    }
    use pio_trace::CallKind;

    const MB: u64 = 1 << 20;

    #[test]
    fn job_shape_matches_parameters() {
        let cfg = IorConfig {
            tasks: 8,
            block_bytes: 8 * MB,
            segments: 4,
            repetitions: 3,
            read_back: false,
            file_per_process: false,
        };
        let job = cfg.job();
        job.validate().unwrap();
        assert_eq!(job.ranks(), 8);
        assert_eq!(job.total_bytes_written(), cfg.total_bytes());
        assert_eq!(cfg.transfer_bytes(), 2 * MB);
        // Barriers: 1 after open + 1 per repetition.
        assert_eq!(job.programs[0].barriers(), 4);
    }

    #[test]
    fn offsets_are_unique_and_disjoint() {
        let cfg = IorConfig {
            tasks: 4,
            block_bytes: 4 * MB,
            segments: 2,
            repetitions: 1,
            read_back: false,
            file_per_process: false,
        };
        let job = cfg.job();
        let mut extents = Vec::new();
        for p in &job.programs {
            for op in &p.ops {
                if let Op::WriteAt { offset, bytes, .. } = op {
                    extents.push((*offset, offset + bytes));
                }
            }
        }
        extents.sort_unstable();
        for w in extents.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping writes {w:?}");
        }
    }

    #[test]
    fn repetitions_rewrite_the_same_block() {
        let cfg = IorConfig {
            tasks: 2,
            block_bytes: 2 * MB,
            segments: 1,
            repetitions: 5,
            read_back: false,
            file_per_process: false,
        };
        let job = cfg.job();
        let offsets: Vec<u64> = job.programs[1]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::WriteAt { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets, vec![2 * MB; 5]);
    }

    #[test]
    fn read_back_adds_reads() {
        let cfg = IorConfig {
            tasks: 2,
            block_bytes: 2 * MB,
            segments: 2,
            repetitions: 1,
            read_back: true,
            file_per_process: false,
        };
        let job = cfg.job();
        assert_eq!(job.total_bytes_read(), job.total_bytes_written());
        job.validate().unwrap();
    }

    #[test]
    fn runs_end_to_end_on_tiny_platform() {
        let cfg = IorConfig {
            tasks: 8,
            block_bytes: 4 * MB,
            segments: 1,
            repetitions: 2,
            read_back: false,
            file_per_process: false,
        };
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::tiny_test(), 1, "ior-test"),
        );
        assert_eq!(res.stats.bytes_written, cfg.total_bytes());
        assert_eq!(res.trace().of_kind(CallKind::Write).count(), 16);
        res.trace().validate().unwrap();
        // Aligned unique offsets on a shared file: no lock conflicts.
        assert_eq!(res.lock_stats.contended, 0);
    }

    #[test]
    fn more_segments_same_bytes() {
        for k in [1u32, 2, 4, 8] {
            let cfg = IorConfig {
                tasks: 4,
                block_bytes: 8 * MB,
                segments: k,
                repetitions: 1,
                read_back: false,
                file_per_process: false,
            };
            let res = run(
                &cfg.job(),
                RunConfig::new(FsConfig::tiny_test(), k as u64, "ior-k"),
            );
            assert_eq!(res.stats.bytes_written, 4 * 8 * MB);
            assert_eq!(
                res.trace().of_kind(CallKind::Write).count(),
                (4 * k) as usize
            );
        }
    }

    #[test]
    fn paper_presets() {
        let f1 = IorConfig::paper_fig1();
        assert_eq!(f1.tasks, 1024);
        assert_eq!(f1.block_bytes, 512 << 20);
        assert_eq!(f1.repetitions, 5);
        let f2 = IorConfig::paper_fig2(8);
        assert_eq!(f2.segments, 8);
        assert_eq!(f2.repetitions, 1);
        assert_eq!(f2.transfer_bytes(), 64 << 20);
        let s = f1.scaled(8);
        assert_eq!(s.tasks, 128);
        assert_eq!(s.block_bytes, 512 << 20);
    }

    #[test]
    fn file_per_process_builds_private_files() {
        let cfg = IorConfig {
            tasks: 4,
            block_bytes: 2 * MB,
            segments: 1,
            repetitions: 1,
            read_back: false,
            file_per_process: true,
        };
        let job = cfg.job();
        job.validate().unwrap();
        assert_eq!(job.files.len(), 4);
        assert!(job.files.iter().all(|f| !f.shared));
        // Every task writes at offset 0 of its own file.
        for (t, p) in job.programs.iter().enumerate() {
            let w = p
                .ops
                .iter()
                .find_map(|o| match o {
                    Op::WriteAt { file, offset, .. } => Some((*file, *offset)),
                    _ => None,
                })
                .unwrap();
            assert_eq!(w, (t as u32, 0));
        }
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::tiny_test(), 2, "ior-fpp"),
        );
        assert_eq!(res.stats.bytes_written, cfg.total_bytes());
        assert_eq!(res.lock_stats.contended, 0, "private files cannot conflict");
    }

    #[test]
    fn fpp_and_shared_move_the_same_bytes() {
        let mk = |fpp| IorConfig {
            tasks: 8,
            block_bytes: 4 * MB,
            segments: 2,
            repetitions: 1,
            read_back: false,
            file_per_process: fpp,
        };
        let a = run(
            &mk(false).job(),
            RunConfig::new(FsConfig::tiny_test(), 3, "shared"),
        );
        let b = run(
            &mk(true).job(),
            RunConfig::new(FsConfig::tiny_test(), 3, "fpp"),
        );
        assert_eq!(a.stats.bytes_written, b.stats.bytes_written);
    }

    #[test]
    #[should_panic]
    fn indivisible_block_rejected() {
        IorConfig {
            tasks: 2,
            block_bytes: 3 * MB,
            segments: 5,
            repetitions: 1,
            read_back: false,
            file_per_process: false,
        }
        .job();
    }
}
