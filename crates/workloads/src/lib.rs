//! # pio-workloads — the paper's workloads as program generators
//!
//! * [`ior`] — the Interleaved-Or-Random benchmark: N tasks each writing
//!   a block to a unique offset of a shared file in `k` transfers,
//!   barriered and repeated (Figures 1 and 2).
//! * [`madbench`] — the MADbench out-of-core CMB solver's I/O kernel:
//!   8 matrix writes, 8 × (seek, read, seek, write), 8 reads of ~300 MB
//!   matrices in 1 MB-aligned slots of a shared file (Figures 4 and 5).
//! * [`gcrm`] — the GCRM/H5Part I/O kernel: 10,240 tasks writing 1.6 MB
//!   records of six variables to a shared HDF5-like file, in four
//!   configurations: baseline, collective buffering, 1 MiB alignment,
//!   and aggregated metadata (Figure 6).
//! * [`presets`] — the paper's exact experiment parameterizations plus
//!   scaled-down variants for tests.
//! * [`checkpoint`] — the generic periodic-checkpoint pattern §III
//!   motivates with (not measured in the paper; provided as the natural
//!   fourth workload for the ensemble tooling).

pub mod checkpoint;
pub mod gcrm;
pub mod ior;
pub mod madbench;
pub mod presets;

pub use checkpoint::CheckpointConfig;
pub use gcrm::{GcrmConfig, GcrmStage};
pub use ior::IorConfig;
pub use madbench::MadbenchConfig;
