//! MADbench — the out-of-core CMB analysis I/O kernel (paper §IV).
//!
//! "An out-of-core solver that has three phases": write 8 matrices;
//! read each back, multiply, write the result (seek, read, seek, write);
//! read the results and accumulate a trace. Per task the matrices live
//! sequentially in an exclusive region of a shared file, each aligned to
//! a 1 MB boundary — producing "a small gap between the end of each I/O
//! region and the next", the stride that trips Franklin's read-ahead.
//! Computation and communication are "effectively turned off" as in the
//! paper's experiments (a configurable compute stub is provided).

use pio_des::SimSpan;
use pio_mpi::program::{FileSpec, Job, Op, Program};

/// MADbench parameters.
#[derive(Debug, Clone)]
pub struct MadbenchConfig {
    /// MPI task count (paper: 256).
    pub tasks: u32,
    /// Matrix bytes per task (paper: ~300 MB; deliberately NOT an
    /// alignment multiple so the aligned slots leave a gap).
    pub matrix_bytes: u64,
    /// Matrices per task (paper: 8).
    pub n_matrices: u32,
    /// Alignment of each matrix slot (paper: 1 MB).
    pub alignment: u64,
    /// Compute time between I/O ops (paper: off).
    pub compute: SimSpan,
}

impl Default for MadbenchConfig {
    fn default() -> Self {
        MadbenchConfig {
            tasks: 256,
            // 300 MB + 256 KiB: leaves a 0.75 MiB gap per 1 MiB-aligned slot.
            matrix_bytes: (300 << 20) + (256 << 10),
            n_matrices: 8,
            alignment: 1 << 20,
            compute: SimSpan::ZERO,
        }
    }
}

impl MadbenchConfig {
    /// The paper's 256-task experiment.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Scaled-down variant: divides the task count only, keeping the
    /// per-task matrices (and hence cache pressure) at paper size.
    pub fn scaled(&self, scale: u32) -> Self {
        MadbenchConfig {
            tasks: (self.tasks / scale).max(4),
            ..self.clone()
        }
    }

    /// Aligned slot size of one matrix.
    pub fn slot_bytes(&self) -> u64 {
        if self.alignment <= 1 {
            self.matrix_bytes
        } else {
            self.matrix_bytes.div_ceil(self.alignment) * self.alignment
        }
    }

    /// Gap between the end of a matrix and the next slot — the stride
    /// remainder the read-ahead engine keys on.
    pub fn gap_bytes(&self) -> u64 {
        self.slot_bytes() - self.matrix_bytes
    }

    /// Base offset of matrix `m` for `task`.
    pub fn matrix_offset(&self, task: u32, m: u32) -> u64 {
        debug_assert!(task < self.tasks && m < self.n_matrices);
        let region = self.slot_bytes() * self.n_matrices as u64;
        task as u64 * region + m as u64 * self.slot_bytes()
    }

    /// Total bytes written by the job (phases 1 and 2).
    pub fn total_bytes_written(&self) -> u64 {
        self.tasks as u64 * self.matrix_bytes * self.n_matrices as u64 * 2
    }

    /// Total bytes read by the job (phases 2 and 3).
    pub fn total_bytes_read(&self) -> u64 {
        self.total_bytes_written()
    }

    /// Build the job: `8×W; 8×(seek, R, seek, W); 8×R`. The write phase
    /// and the final read phase are barriered per matrix (the vertical
    /// bands of Figure 4(a)); the middle phase free-runs per task with a
    /// single barrier at its end — which is what lets one task's writes
    /// overlap another's reads and keep "the client-side system buffers
    /// … full" (paper §IV-C).
    pub fn job(&self) -> Job {
        let programs = (0..self.tasks)
            .map(|t| {
                let mut ops = vec![Op::Open { file: 0 }, Op::Barrier];
                let compute = |ops: &mut Vec<Op>| {
                    if self.compute > SimSpan::ZERO {
                        ops.push(Op::Compute { span: self.compute });
                    }
                };
                // Phase 1: write the matrices.
                for m in 0..self.n_matrices {
                    compute(&mut ops);
                    ops.push(Op::Seek {
                        file: 0,
                        offset: self.matrix_offset(t, m),
                    });
                    ops.push(Op::Write {
                        file: 0,
                        bytes: self.matrix_bytes,
                    });
                    ops.push(Op::Barrier);
                }
                // Phase 2: read, "multiply", write back in place —
                // free-running, one barrier at the end.
                for m in 0..self.n_matrices {
                    compute(&mut ops);
                    ops.push(Op::Seek {
                        file: 0,
                        offset: self.matrix_offset(t, m),
                    });
                    ops.push(Op::Read {
                        file: 0,
                        bytes: self.matrix_bytes,
                    });
                    compute(&mut ops);
                    ops.push(Op::Seek {
                        file: 0,
                        offset: self.matrix_offset(t, m),
                    });
                    ops.push(Op::Write {
                        file: 0,
                        bytes: self.matrix_bytes,
                    });
                }
                ops.push(Op::Barrier);
                // Phase 3: read the results.
                for m in 0..self.n_matrices {
                    compute(&mut ops);
                    ops.push(Op::Seek {
                        file: 0,
                        offset: self.matrix_offset(t, m),
                    });
                    ops.push(Op::Read {
                        file: 0,
                        bytes: self.matrix_bytes,
                    });
                    ops.push(Op::Barrier);
                }
                ops.push(Op::Flush { file: 0 });
                ops.push(Op::Close { file: 0 });
                Program { ops }
            })
            .collect();
        Job {
            programs,
            files: vec![FileSpec { shared: true }],
        }
    }

    /// The barrier phase containing the whole free-running middle
    /// section (phase 0 = open barrier; 1..=n the write iterations).
    pub fn middle_phase(&self) -> u32 {
        self.n_matrices + 1
    }

    /// Middle-phase read durations grouped by read index (1-based):
    /// element `m-1` holds every rank's `m`-th middle read — the per-read
    /// ensembles of Figure 5(a).
    pub fn middle_reads_by_index(&self, trace: &pio_trace::Trace) -> Vec<Vec<f64>> {
        let phase = self.middle_phase();
        let mut per_rank: std::collections::HashMap<u32, Vec<(u64, f64)>> =
            std::collections::HashMap::new();
        for r in trace.in_phase(phase) {
            if r.call == pio_trace::CallKind::Read {
                per_rank
                    .entry(r.rank)
                    .or_default()
                    .push((r.start_ns, r.secs()));
            }
        }
        let mut out = vec![Vec::new(); self.n_matrices as usize];
        for (_, mut reads) in per_rank {
            reads.sort_unstable_by_key(|&(t, _)| t);
            for (m, (_, secs)) in reads.into_iter().enumerate() {
                if m < out.len() {
                    out[m].push(secs);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_fs::FsConfig;
    use pio_mpi::{RunConfig, Runner};

    fn run(job: &Job, cfg: RunConfig) -> pio_mpi::RunReport {
        Runner::new(job, cfg).execute_one().unwrap()
    }
    use pio_trace::CallKind;

    #[test]
    fn geometry_produces_the_stride_gap() {
        let cfg = MadbenchConfig::paper();
        assert_eq!(cfg.slot_bytes(), 301 << 20);
        assert_eq!(cfg.gap_bytes(), (1 << 20) - (256 << 10));
        // Slots are aligned and regions disjoint across tasks.
        assert_eq!(cfg.matrix_offset(0, 1), 301 << 20);
        assert_eq!(cfg.matrix_offset(1, 0), 8 * (301 << 20));
        assert_eq!(cfg.matrix_offset(0, 1) % cfg.alignment, 0);
    }

    #[test]
    fn job_has_the_paper_op_pattern() {
        let cfg = MadbenchConfig {
            tasks: 4,
            matrix_bytes: (4 << 20) + (256 << 10),
            n_matrices: 8,
            alignment: 1 << 20,
            compute: SimSpan::ZERO,
        };
        let job = cfg.job();
        job.validate().unwrap();
        let p = &job.programs[0];
        let writes = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Write { .. }))
            .count();
        let reads = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Read { .. }))
            .count();
        let seeks = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Seek { .. }))
            .count();
        assert_eq!(writes, 16); // 8 + 8
        assert_eq!(reads, 16); // 8 + 8
        assert_eq!(seeks, 32);
        assert_eq!(p.barriers(), 1 + 8 + 1 + 8);
        assert_eq!(job.total_bytes_written(), cfg.total_bytes_written());
    }

    #[test]
    fn runs_end_to_end_small() {
        let cfg = MadbenchConfig {
            tasks: 4,
            matrix_bytes: (2 << 20) + (256 << 10),
            n_matrices: 3,
            alignment: 1 << 20,
            compute: SimSpan::ZERO,
        };
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::tiny_test(), 1, "madbench-test"),
        );
        assert_eq!(res.stats.bytes_written, cfg.total_bytes_written());
        assert_eq!(res.stats.bytes_read, cfg.total_bytes_read());
        res.trace().validate().unwrap();
        // No lock conflicts: regions are exclusive and gaps isolate slots.
        assert_eq!(res.lock_stats.contended, 0);
    }

    #[test]
    fn buggy_platform_degrades_reads_and_patch_fixes_them() {
        // Small but sufficient: 6 matrices so strided detection (3rd
        // appearance) has room to bite; matrices big enough to stay on
        // the buffered path (mostly full stripes) and to pressure the
        // cache.
        let cfg = MadbenchConfig {
            tasks: 8,
            matrix_bytes: (8 << 20) + (256 << 10),
            n_matrices: 6,
            alignment: 1 << 20,
            compute: SimSpan::ZERO,
        };
        let mut buggy = FsConfig::tiny_test();
        buggy.readahead.strided_detection = true;
        buggy.cache_bytes = 16 << 20;
        buggy.pressure_frac = 0.3;
        let mut patched = buggy.clone();
        patched.readahead.strided_detection = false;

        let rb = run(&cfg.job(), RunConfig::new(buggy, 7, "mb-buggy"));
        let rp = run(&cfg.job(), RunConfig::new(patched, 7, "mb-patched"));
        assert!(rb.stats.degraded_reads > 0, "bug must fire");
        assert_eq!(rp.stats.degraded_reads, 0, "patch must not");
        assert!(
            rb.wall_secs() > rp.wall_secs(),
            "buggy {} vs patched {}",
            rb.wall_secs(),
            rp.wall_secs()
        );
        // Degraded reads show up as a slow tail on read durations.
        let buggy_max = rb
            .trace()
            .durations_of(CallKind::Read)
            .into_iter()
            .fold(0.0f64, f64::max);
        let patched_max = rp
            .trace()
            .durations_of(CallKind::Read)
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(
            buggy_max > 2.0 * patched_max,
            "{buggy_max} vs {patched_max}"
        );
    }

    #[test]
    fn middle_phase_indexing_and_grouping() {
        let cfg = MadbenchConfig {
            tasks: 4,
            matrix_bytes: (2 << 20) + (256 << 10),
            n_matrices: 3,
            alignment: 1 << 20,
            compute: SimSpan::ZERO,
        };
        assert_eq!(cfg.middle_phase(), 4);
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::tiny_test(), 2, "mb-group"),
        );
        let groups = cfg.middle_reads_by_index(res.trace());
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.len(), 4, "each rank contributes one read per index");
        }
    }

    #[test]
    fn compute_stub_inserts_compute_ops() {
        let cfg = MadbenchConfig {
            tasks: 4,
            matrix_bytes: (2 << 20) + (256 << 10),
            n_matrices: 2,
            alignment: 1 << 20,
            compute: SimSpan::from_millis(10),
        };
        let job = cfg.job();
        let computes = job.programs[0]
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Compute { .. }))
            .count();
        assert_eq!(computes, 2 + 2 * 2 + 2);
    }

    #[test]
    fn scaled_preserves_structure() {
        let s = MadbenchConfig::paper().scaled(16);
        assert_eq!(s.tasks, 16);
        assert_eq!(s.n_matrices, 8);
        assert_eq!(s.matrix_bytes, MadbenchConfig::paper().matrix_bytes);
        assert!(s.gap_bytes() > 0, "scaling must preserve the stride gap");
    }
}
