//! The paper's experiments as one-call presets: workload + platform +
//! label, exactly as the evaluation section parameterizes them, plus
//! scaled variants usable in tests and quick demos.

use crate::gcrm::GcrmConfig;
use crate::ior::IorConfig;
use crate::madbench::MadbenchConfig;
use pio_fs::FsConfig;
use pio_mpi::program::Job;
use pio_mpi::RunConfig;

/// A fully specified experiment: job + run configuration.
pub struct Experiment {
    /// Identifier (figure reference).
    pub id: &'static str,
    /// The workload.
    pub job: Job,
    /// Platform and seed.
    pub run: RunConfig,
}

/// Figure 1: IOR, 1024 tasks × 512 MB × 5 phases on Franklin.
/// `scratch2` selects the second file system (same hardware, new seed) —
/// the reproducibility comparison of Figure 1(c).
pub fn fig1_ior(seed: u64, scratch2: bool, scale: u32) -> Experiment {
    let cfg = IorConfig::paper_fig1().scaled(scale);
    let fs = if scratch2 {
        FsConfig::franklin_scratch2()
    } else {
        FsConfig::franklin()
    }
    .scaled(scale);
    Experiment {
        id: "fig1",
        job: cfg.job(),
        run: RunConfig::new(fs, seed, format!("ior-512m-k1-x{scale}")),
    }
}

/// Figure 2: IOR with the 512 MB split into k calls, one phase.
pub fn fig2_ior(k: u32, seed: u64, scale: u32) -> Experiment {
    let cfg = IorConfig::paper_fig2(k).scaled(scale);
    Experiment {
        id: "fig2",
        job: cfg.job(),
        run: RunConfig::new(
            FsConfig::franklin().scaled(scale),
            seed,
            format!("ior-512m-k{k}-x{scale}"),
        ),
    }
}

/// Figures 4–5: MADbench at 256 tasks on a platform preset
/// (`franklin`, `franklin-patched`, or `jaguar`).
pub fn fig4_madbench(platform: FsConfig, seed: u64, scale: u32) -> Experiment {
    let cfg = MadbenchConfig::paper().scaled(scale);
    let name = platform.name.clone();
    Experiment {
        id: "fig4",
        job: cfg.job(),
        run: RunConfig::new(
            platform.scaled(scale),
            seed,
            format!("madbench-256-{name}-x{scale}"),
        ),
    }
}

/// Figure 6: GCRM at 10,240 tasks, optimization `stage` (0..=3).
pub fn fig6_gcrm(stage: u32, seed: u64, scale: u32) -> Experiment {
    let cfg = GcrmConfig::paper_stage(stage).scaled(scale);
    Experiment {
        id: "fig6",
        job: cfg.job(),
        run: RunConfig::new(
            FsConfig::franklin().scaled(scale),
            seed,
            format!("gcrm-stage{stage}-x{scale}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_mpi::Runner;

    #[test]
    fn all_presets_validate() {
        for exp in [
            fig1_ior(1, false, 64),
            fig1_ior(2, true, 64),
            fig2_ior(4, 1, 64),
            fig4_madbench(FsConfig::franklin(), 1, 32),
            fig4_madbench(FsConfig::jaguar(), 1, 32),
            fig6_gcrm(0, 1, 640),
            fig6_gcrm(3, 1, 640),
        ] {
            exp.job
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", exp.run.experiment));
        }
    }

    #[test]
    fn scaled_fig1_runs() {
        let exp = fig1_ior(9, false, 128);
        let res = Runner::new(&exp.job, exp.run.clone())
            .execute_one()
            .unwrap();
        assert!(res.wall_secs() > 0.0);
        assert!(res.trace().meta.platform.starts_with("franklin"));
        assert!(res.trace().meta.experiment.contains("k1"));
    }

    #[test]
    fn scratch2_differs_only_in_label_and_seed_space() {
        let a = fig1_ior(1, false, 128);
        let b = fig1_ior(2, true, 128);
        assert_eq!(a.run.fs.n_osts, b.run.fs.n_osts);
        assert_ne!(a.run.fs.name, b.run.fs.name);
    }
}
