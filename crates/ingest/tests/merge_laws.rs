//! Property-based merge laws for the mergeable sketches: `merge(a, b)`
//! must equal batch accumulation over the concatenated streams, and the
//! shard-level merge must be commutative and associative. These laws are
//! what make concurrent sharded ingestion exact — any snapshot equals
//! the sequential single-accumulator run over the union of the inputs.

use pio_des::hist::LogHistogram;
use pio_ingest::shard::ShardStats;
use pio_ingest::{HeavyHitters, OnlineMoments, QuantileSketch};
use pio_trace::{CallKind, Record};
use proptest::prelude::*;

/// Positive durations spanning the default sketch geometry, including
/// out-of-range values that exercise bucket clamping.
fn arb_durations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-7f64..5e3, 0..200)
}

fn hist_of(xs: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new(1e-6, 1e3, 96);
    for &x in xs {
        h.add_clamped(x);
    }
    h
}

fn sketch_of(xs: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new(1e-6, 1e3, 96);
    for &x in xs {
        s.add(x);
    }
    s
}

fn moments_of(xs: &[f64]) -> OnlineMoments {
    let mut m = OnlineMoments::new();
    for &x in xs {
        m.record(x);
    }
    m
}

fn stats_of(records: &[Record]) -> ShardStats {
    let mut s = ShardStats::new(1e-6, 1e3, 96);
    for r in records {
        s.accumulate(r);
    }
    s
}

/// Records with varied durations/sizes; rank and phase do not matter for
/// the per-shard laws.
fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    let rec = (1u64..10_000_000, 0u64..1 << 24).prop_map(|(dur_us, bytes)| Record {
        rank: 0,
        call: CallKind::Read,
        fd: 3,
        offset: 0,
        bytes,
        start_ns: 0,
        end_ns: dur_us * 1000,
        phase: 0,
    });
    proptest::collection::vec(rec, 0..120)
}

fn assert_stats_eq(a: &ShardStats, b: &ShardStats) {
    assert_eq!(a.hist.counts(), b.hist.counts());
    assert_eq!(a.sketch.count(), b.sketch.count());
    assert!((a.sketch.sum() - b.sketch.sum()).abs() <= 1e-6 * a.sketch.sum().abs().max(1.0));
    assert_eq!(a.moments.count(), b.moments.count());
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.bytes, b.bytes);
    assert!((a.secs - b.secs).abs() <= 1e-6 * a.secs.abs().max(1.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram merge is exactly the histogram of the concatenation.
    #[test]
    fn histogram_merge_is_concatenation(a in arb_durations(), b in arb_durations()) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let union: Vec<f64> = a.iter().chain(&b).cloned().collect();
        prop_assert_eq!(merged.counts(), hist_of(&union).counts());
    }

    /// Histogram merge is commutative.
    #[test]
    fn histogram_merge_commutes(a in arb_durations(), b in arb_durations()) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab.counts(), ba.counts());
    }

    /// Sketch merge: counts/min/max exact, per-bucket sums to float
    /// tolerance, so every quantile estimate matches the batch sketch.
    #[test]
    fn sketch_merge_is_concatenation(a in arb_durations(), b in arb_durations()) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let union: Vec<f64> = a.iter().chain(&b).cloned().collect();
        let batch = sketch_of(&union);
        prop_assert_eq!(merged.count(), batch.count());
        prop_assert_eq!(merged.min(), batch.min());
        prop_assert_eq!(merged.max(), batch.max());
        prop_assert!((merged.sum() - batch.sum()).abs() <= 1e-6 * batch.sum().abs().max(1.0));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            match (merged.quantile(q), batch.quantile(q)) {
                (Some(m), Some(bq)) => prop_assert!((m - bq).abs() <= 1e-9 * bq.abs().max(1.0)),
                (m, bq) => prop_assert_eq!(m, bq),
            }
        }
    }

    /// Sketch merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn sketch_merge_associates(
        a in arb_durations(),
        b in arb_durations(),
        c in arb_durations(),
    ) {
        let mut left = sketch_of(&a);
        left.merge(&sketch_of(&b));
        left.merge(&sketch_of(&c));
        let mut bc = sketch_of(&b);
        bc.merge(&sketch_of(&c));
        let mut right = sketch_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-6 * right.sum().abs().max(1.0));
    }

    /// Moments merge (Chan/Terriberry) matches streaming the union.
    #[test]
    fn moments_merge_is_concatenation(a in arb_durations(), b in arb_durations()) {
        let mut merged = moments_of(&a);
        merged.merge(&moments_of(&b));
        let union: Vec<f64> = a.iter().chain(&b).cloned().collect();
        let batch = moments_of(&union);
        prop_assert_eq!(merged.count(), batch.count());
        if let (Some(m), Some(bm)) = (merged.mean(), batch.mean()) {
            prop_assert!((m - bm).abs() <= 1e-9 * bm.abs().max(1.0));
        }
        if let (Some(v), Some(bv)) = (merged.variance(), batch.variance()) {
            prop_assert!((v - bv).abs() <= 1e-6 * bv.abs().max(1.0));
        }
    }

    /// ShardStats merge is commutative and equals batch accumulation.
    #[test]
    fn shard_merge_commutes_and_matches_batch(a in arb_records(), b in arb_records()) {
        let mut ab = stats_of(&a);
        ab.merge(&stats_of(&b));
        let mut ba = stats_of(&b);
        ba.merge(&stats_of(&a));
        assert_stats_eq(&ab, &ba);
        let union: Vec<Record> = a.iter().chain(&b).cloned().collect();
        assert_stats_eq(&ab, &stats_of(&union));
    }

    /// ShardStats merge is associative.
    #[test]
    fn shard_merge_associates(a in arb_records(), b in arb_records(), c in arb_records()) {
        let mut left = stats_of(&a);
        left.merge(&stats_of(&b));
        left.merge(&stats_of(&c));
        let mut bc = stats_of(&b);
        bc.merge(&stats_of(&c));
        let mut right = stats_of(&a);
        right.merge(&bc);
        assert_stats_eq(&left, &right);
    }

    /// Heavy-hitter merge preserves the exact totals and never loses a
    /// key that dominates the stream.
    #[test]
    fn heavy_hitter_merge_keeps_totals_and_dominant_key(
        a in proptest::collection::vec((0u32..32, 1u64..100), 0..80),
        b in proptest::collection::vec((0u32..32, 1u64..100), 0..80),
    ) {
        let fill = |pairs: &[(u32, u64)]| {
            let mut h = HeavyHitters::new(8);
            for &(k, w) in pairs {
                h.add(k, w as f64);
            }
            h
        };
        let mut merged = fill(&a);
        merged.merge(&fill(&b));
        let union: Vec<(u32, u64)> = a.iter().chain(&b).cloned().collect();
        let exact_total: u64 = union.iter().map(|&(_, w)| w).sum();
        prop_assert!((merged.total_weight() - exact_total as f64).abs() < 1e-6);
        prop_assert_eq!(merged.total_ops(), union.len() as u64);
        // A key holding the strict majority of the weight must surface.
        let mut by_key = std::collections::HashMap::new();
        for &(k, w) in &union {
            *by_key.entry(k).or_insert(0u64) += w;
        }
        if let Some((&top, &w)) = by_key.iter().max_by_key(|&(_, &w)| w) {
            if w * 2 > exact_total {
                prop_assert!(
                    merged.top().iter().any(|h| h.key == top),
                    "majority key {} missing from top()", top
                );
            }
        }
    }
}
