//! Property tests pinning the columnar analysis plane to the
//! record-at-a-time reference: for any record stream, any block
//! partition, and any on-disk codec, the batched path must produce a
//! bit-identical `EnsembleSnapshot` and identical findings. These are
//! the equivalence proofs that let the hot path change representation
//! without changing a single verdict.

use std::io::Cursor;

use pio_ingest::{DiagnoserConfig, SnapshotBuilder, SnapshotConfig, StreamDiagnoser};
use pio_trace::{codec_for, CallKind, Record, RecordSink, Trace, TraceFormat, TraceMeta};
use proptest::prelude::*;

/// Arbitrary records across every call kind, with durations spanning the
/// sketch geometry (including out-of-range values that hit the clamped
/// buckets), small-write byte counts, and rolling phase stamps.
fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    let rec = (
        0u32..24,
        0usize..CallKind::ALL.len(),
        0u64..1 << 30,
        0u64..1 << 24,
        1u64..20_000_000_000,
        0u32..4,
    )
        .prop_map(|(rank, call, offset, bytes, dur_ns, phase)| Record {
            rank,
            call: CallKind::ALL[call],
            fd: 3,
            offset,
            bytes,
            start_ns: offset.wrapping_mul(7) % 1_000_000_000,
            end_ns: offset.wrapping_mul(7) % 1_000_000_000 + dur_ns,
            phase,
        });
    proptest::collection::vec(rec, 0..900)
}

/// A partition of `n` records into blocks: cut points drawn as a block
/// size per segment, so tiny and huge blocks both occur.
fn partition(sizes: &[usize], records: &[Record]) -> Vec<Vec<Record>> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut s = 0;
    while i < records.len() {
        let take = sizes[s % sizes.len()].max(1).min(records.len() - i);
        out.push(records[i..i + take].to_vec());
        i += take;
        s += 1;
    }
    out
}

fn diagnoser() -> StreamDiagnoser {
    // A small window so the property streams actually trigger mid-block
    // window evaluations, not just end-of-stream ones.
    StreamDiagnoser::new(DiagnoserConfig {
        window: 64,
        ..DiagnoserConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `StreamDiagnoser::push_block` over any partition is observationally
    /// identical to per-record `push`: same findings (bit-identical
    /// severities), same record count, under mid-stream phase ends.
    #[test]
    fn diagnoser_block_path_matches_record_path(
        records in arb_records(),
        sizes in proptest::collection::vec(1usize..300, 1..6),
    ) {
        let mut reference = diagnoser();
        for r in &records {
            reference.push(r);
        }
        reference.phase_end(0);
        reference.phase_end(1);
        reference.finish();

        let mut block = diagnoser();
        for chunk in partition(&sizes, &records) {
            block.push_block(&chunk);
        }
        block.phase_end(0);
        block.phase_end(1);
        block.finish();

        prop_assert_eq!(block.findings(), reference.findings());
        prop_assert_eq!(block.records(), reference.records());
    }

    /// `SnapshotBuilder::accumulate_block` over any partition yields a
    /// bit-identical `EnsembleSnapshot` (PartialEq on f64 state) to
    /// per-record `accumulate`.
    #[test]
    fn builder_block_path_matches_record_path(
        records in arb_records(),
        sizes in proptest::collection::vec(1usize..300, 1..6),
    ) {
        let mut reference = SnapshotBuilder::new(SnapshotConfig::default());
        for r in &records {
            reference.accumulate(r);
        }

        let mut block = SnapshotBuilder::new(SnapshotConfig::default());
        for chunk in partition(&sizes, &records) {
            block.accumulate_block(&chunk);
        }

        prop_assert_eq!(block.into_snapshot(0), reference.into_snapshot(0));
    }
}

/// A full analysis sink (diagnoser + builder) whose block path is the
/// production one; [`PerRecord`] wraps it to force the trait-default
/// record-at-a-time loop for the reference side.
struct Analysis {
    diag: StreamDiagnoser,
    builder: SnapshotBuilder,
}

impl Analysis {
    fn new() -> Self {
        Analysis {
            diag: diagnoser(),
            builder: SnapshotBuilder::new(SnapshotConfig::default()),
        }
    }
}

impl RecordSink for Analysis {
    fn push(&mut self, r: &Record) {
        self.diag.push(r);
        self.builder.accumulate(r);
    }
    fn push_block(&mut self, block: &[Record]) {
        self.diag.push_block(block);
        self.builder.accumulate_block(block);
    }
    fn phase_end(&mut self, phase: u32) {
        self.diag.phase_end(phase);
    }
    fn finish(&mut self) {
        self.diag.finish();
    }
}

/// Forwards everything per record; never exposes a block, so the inner
/// sink only ever sees the reference path regardless of what the codec
/// delivers.
struct PerRecord<S>(S);

impl<S: RecordSink> RecordSink for PerRecord<S> {
    fn push(&mut self, r: &Record) {
        self.0.push(r);
    }
    fn phase_end(&mut self, phase: u32) {
        self.0.phase_end(phase);
    }
    fn finish(&mut self) {
        self.0.finish();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming the same encoded trace through every codec produces
    /// identical analysis whether the codec's blocks flow into the
    /// batched kernels or are unrolled record by record — and the
    /// verdicts agree across all three encodings.
    #[test]
    fn codec_streams_are_block_record_equivalent(records in arb_records()) {
        let mut trace = Trace::new(TraceMeta {
            experiment: "block-equivalence".into(),
            platform: "proptest".into(),
            ranks: 24,
            seed: 7,
        });
        for r in &records {
            trace.push(r.clone());
        }

        let mut snapshots = Vec::new();
        for format in TraceFormat::ALL {
            let codec = codec_for(format);
            let mut bytes = Vec::new();
            codec.write(&trace, &mut bytes).expect("encode");

            let mut batched = Analysis::new();
            let (_, n) = codec
                .stream(&mut Cursor::new(&bytes), &mut batched)
                .expect("stream batched");
            prop_assert_eq!(n as usize, records.len());

            let mut unrolled = PerRecord(Analysis::new());
            codec
                .stream(&mut Cursor::new(&bytes), &mut unrolled)
                .expect("stream unrolled");

            prop_assert_eq!(
                batched.diag.findings(),
                unrolled.0.diag.findings(),
                "findings diverge under {}",
                codec.name()
            );
            let a = batched.builder.into_snapshot(0);
            let b = unrolled.0.builder.into_snapshot(0);
            prop_assert_eq!(&a, &b, "snapshot diverges under {}", codec.name());
            snapshots.push(a);
        }
        for s in &snapshots[1..] {
            prop_assert_eq!(s, &snapshots[0], "snapshot diverges across codecs");
        }
    }
}
