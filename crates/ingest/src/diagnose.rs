//! Online diagnosis: the paper's detectors, incrementally, mid-run.
//!
//! [`StreamDiagnoser`] is a [`RecordSink`] that watches the record stream
//! as it is produced and raises the same findings as
//! `pio_core::diagnosis::diagnose_with` — through the *same* verdict
//! functions, fed sketch estimates instead of exact order statistics:
//!
//! * **Right shoulder** and **harmonic modes** are evaluated over a
//!   tumbling window of recent records, so a pathology that develops
//!   mid-run (Franklin's read-ahead bug) is flagged long before the job
//!   ends.
//! * **Progressive deterioration** closes a per-phase quantile sketch at
//!   every barrier boundary ([`RecordSink::phase_end`]) and re-tests the
//!   median ladder.
//! * **Serialized metadata rank** keeps a weighted heavy-hitter sketch
//!   by rank and re-tests at each barrier.
//!
//! Memory is O(window bins + active phases × bins + heavy-hitter k):
//! constant in the number of records.

use crate::sketch::{HeavyHitters, QuantileSketch};
use pio_core::attribution::{
    attribute_data_tail_windowed, attribute_meta_tail, tail_bin_table, Attribution,
    DataTailEvidence, TailEvent, TailProfile, WindowedProfile,
};
use pio_core::diagnosis::{
    deterioration_verdict, harmonic_verdict, metadata_shoulder_verdict, rank_tail_verdict,
    serialized_meta_verdict, shoulder_verdict, Finding, Thresholds,
};
use pio_core::modes::find_modes_on_grid;
use pio_des::hist::{BinTable, LogBins, LogHistogram};
use pio_trace::{CallKind, Record, RecordSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Number of call classes; per-kind state is direct-indexed by
/// `call as usize` instead of hashed.
const KINDS: usize = CallKind::ALL.len();

/// Ceiling on the retained slowest-event reservoir (per call class):
/// enough to establish burst periodicity and front structure, bounded
/// however long the run is. Past the cap only the slowest events are
/// kept — which are the tail by definition.
const TAIL_STARTS_CAP: usize = 4096;

/// Online-diagnoser tuning knobs.
#[derive(Debug, Clone)]
pub struct DiagnoserConfig {
    /// Detector thresholds (shared with the batch path).
    pub thresholds: Thresholds,
    /// Tumbling-window length in records, per watched call class.
    pub window: usize,
    /// Call classes watched for windowed distributional pathologies.
    pub watch: Vec<CallKind>,
    /// Duration geometry: lower bound, seconds.
    pub hist_lo: f64,
    /// Duration geometry: upper bound, seconds.
    pub hist_hi: f64,
    /// Duration geometry: bucket count.
    pub hist_bins: usize,
    /// Heavy-hitter sketch capacity.
    pub hitter_capacity: usize,
}

impl Default for DiagnoserConfig {
    fn default() -> Self {
        DiagnoserConfig {
            thresholds: Thresholds::default(),
            window: 2048,
            watch: vec![
                CallKind::Write,
                CallKind::Read,
                CallKind::MetaRead,
                CallKind::MetaWrite,
            ],
            hist_lo: 1e-6,
            hist_hi: 1e3,
            hist_bins: 96,
            hitter_capacity: 16,
        }
    }
}

/// A finding plus when the stream first produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFinding {
    /// The diagnosis.
    pub finding: Finding,
    /// Records ingested when it first fired.
    pub after_records: u64,
    /// Barrier phase in effect when it first fired.
    pub phase: u32,
}

/// Windowed per-kind state for the distributional detectors.
struct KindWindow {
    hist: LogHistogram,
    sketch: QuantileSketch,
}

impl KindWindow {
    fn new(cfg: &DiagnoserConfig) -> Self {
        KindWindow {
            hist: LogHistogram::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins),
            sketch: QuantileSketch::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins),
        }
    }

    fn add(&mut self, secs: f64) {
        self.hist.add_clamped(secs);
        self.sketch.add(secs);
    }

    /// Pre-classified add: `bin` came from a [`BinTable`] over this
    /// window's geometry. Bit-identical to [`Self::add`].
    #[inline]
    fn add_at(&mut self, secs: f64, bin: usize) {
        self.hist.add_clamped_at(bin);
        self.sketch.add_at(secs, bin);
    }

    fn count(&self) -> u64 {
        self.sketch.count()
    }
}

/// Cumulative per-kind tail state for attribution: unlike the tumbling
/// windows, these never reset — a verdict needs the whole run's evidence.
struct KindTail {
    /// Cumulative duration sketch (supplies the provisional median).
    cum: QuantileSketch,
    /// Cumulative fine-grained duration histogram (quantized-level test).
    hist: LogHistogram,
    /// Per-rank / per-stripe-residue decomposition.
    profile: TailProfile,
    /// Per-window slices of the same evidence — a fault that clears
    /// mid-run is localized to the windows it was live in.
    windows: WindowedProfile,
    /// Bounded reservoir of the slowest events seen so far, keyed by
    /// `(secs bit pattern, start_ns, rank)` in a min-heap. The tail cut
    /// is applied at *attribution* time against the current median, so
    /// the start-time evidence (periodicity, synchronized fronts) covers
    /// the whole run — including events that arrived before any
    /// provisional median existed. Non-negative f64 bit patterns order
    /// like the floats themselves.
    slow: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl KindTail {
    fn new(cfg: &DiagnoserConfig) -> Self {
        KindTail {
            cum: QuantileSketch::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins),
            hist: LogHistogram::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins),
            profile: TailProfile::new(cfg.thresholds.stripe_bytes),
            windows: WindowedProfile::new(
                cfg.thresholds.attr_window_s,
                cfg.thresholds.attr_max_windows,
                cfg.thresholds.stripe_bytes,
                cfg.hist_bins,
            ),
            slow: BinaryHeap::new(),
        }
    }

    /// Rank-tagged tail events beyond the given cut, from the reservoir.
    fn tail_events(&self, cut: f64) -> Vec<TailEvent> {
        self.slow
            .iter()
            .filter(|Reverse((bits, _, _))| f64::from_bits(*bits) > cut)
            .map(|Reverse((bits, ns, rank))| TailEvent {
                start_ns: *ns,
                rank: *rank,
                secs: f64::from_bits(*bits),
            })
            .collect()
    }
}

/// Cumulative small-write size-class tracker (metadata-storm detection).
struct SmallWriteState {
    ops: u64,
    secs: f64,
    write_secs: f64,
    per_rank: HeavyHitters,
    first_ns: u64,
    last_ns: u64,
}

impl SmallWriteState {
    fn new(hitter_capacity: usize) -> Self {
        SmallWriteState {
            ops: 0,
            secs: 0.0,
            write_secs: 0.0,
            per_rank: HeavyHitters::new(hitter_capacity),
            first_ns: u64::MAX,
            last_ns: 0,
        }
    }
}

/// Streaming, constant-memory implementation of the paper's detectors.
///
/// Per-kind state (windows, cumulative tails, per-phase sketches) is
/// stored in `CallKind`-indexed arrays rather than hash maps, and the
/// block ingestion path ([`RecordSink::push_block`]) classifies each
/// duration once against a precomputed [`BinTable`] shared by every
/// same-geometry accumulator. Both changes are representation-only: the
/// record-at-a-time [`RecordSink::push`] path keeps the original
/// log-domain arithmetic and stays the reference implementation.
pub struct StreamDiagnoser {
    cfg: DiagnoserConfig,
    /// Bit-exact bin classifier for the configured duration geometry.
    table: BinTable,
    /// The configured geometry is the tail geometry at exactly double
    /// resolution (same range, 2× bins), so a tail bin is the configured
    /// bin halved: `floor(f·2n)/2 = floor(f·n)` exactly, range checks and
    /// edge clamps included. Saves the second table lookup per record.
    tail_nested: bool,
    /// The configured geometry's range equals the window slots' fine
    /// range (slot bins are `cfg.hist_bins` by construction), so the
    /// block path reuses the per-record cfg-geometry bin for the slot
    /// fine histogram instead of reclassifying.
    slot_fine_direct: bool,
    /// `watch_mask[call as usize]` ⟺ `cfg.watch.contains(call)`.
    watch_mask: [bool; KINDS],
    windows: Vec<Option<KindWindow>>,
    phase_sketches: Vec<Vec<(u32, QuantileSketch)>>,
    phase_medians: Vec<Vec<(u32, f64)>>,
    hitters: HeavyHitters,
    tails: Vec<Option<KindTail>>,
    small: SmallWriteState,
    meta_secs: f64,
    io_secs: f64,
    ranks: u32,
    records: u64,
    current_phase: u32,
    findings: Vec<TimedFinding>,
    seen: HashSet<(u8, Option<CallKind>, Option<Attribution>)>,
    /// Scratch buffer for grouped heavy-hitter runs (reused per block).
    run_buf: Vec<f64>,
}

impl StreamDiagnoser {
    /// A diagnoser with the given configuration.
    pub fn new(cfg: DiagnoserConfig) -> Self {
        let hitters = HeavyHitters::new(cfg.hitter_capacity);
        let small = SmallWriteState::new(cfg.hitter_capacity);
        let table = BinTable::new(LogBins::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins));
        let mut watch_mask = [false; KINDS];
        for k in &cfg.watch {
            watch_mask[*k as usize] = true;
        }
        let tg = tail_bin_table().geometry();
        let tail_nested =
            cfg.hist_lo == tg.lo() && cfg.hist_hi == tg.hi() && cfg.hist_bins == 2 * tg.bins();
        let slot_fine_direct = cfg.hist_lo == tg.lo() && cfg.hist_hi == tg.hi();
        StreamDiagnoser {
            cfg,
            table,
            tail_nested,
            slot_fine_direct,
            watch_mask,
            windows: (0..KINDS).map(|_| None).collect(),
            phase_sketches: (0..KINDS).map(|_| Vec::new()).collect(),
            phase_medians: (0..KINDS).map(|_| Vec::new()).collect(),
            hitters,
            tails: (0..KINDS).map(|_| None).collect(),
            small,
            meta_secs: 0.0,
            io_secs: 0.0,
            ranks: 0,
            records: 0,
            current_phase: 0,
            findings: Vec::new(),
            seen: HashSet::new(),
            run_buf: Vec::new(),
        }
    }

    /// A diagnoser with default configuration.
    pub fn with_defaults() -> Self {
        StreamDiagnoser::new(DiagnoserConfig::default())
    }

    /// Every finding raised so far, in the order they first fired.
    pub fn findings(&self) -> &[TimedFinding] {
        &self.findings
    }

    /// Records ingested so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// One dedup key per (finding variant, call class, attribution):
    /// repeated windows re-confirming a known pathology stay one finding,
    /// but a shoulder whose attribution *refines* as evidence accumulates
    /// (unattributed → named class → compound verdict) is raised again —
    /// the refined verdict is new information.
    fn dedup_key(f: &Finding) -> (u8, Option<CallKind>, Option<Attribution>) {
        match f {
            Finding::HarmonicModes { kind, .. } => (0, Some(*kind), None),
            Finding::RightShoulder {
                kind, attribution, ..
            } => (1, Some(*kind), attribution.clone()),
            Finding::ProgressiveDeterioration { kind, .. } => (2, Some(*kind), None),
            Finding::SerializedRank { .. } => (3, None, None),
            Finding::RankCorrelatedTail { kind, .. } => (4, Some(*kind), None),
            Finding::MetadataShoulder { .. } => (5, None, None),
        }
    }

    fn raise(&mut self, f: Finding) {
        if self.seen.insert(Self::dedup_key(&f)) {
            self.findings.push(TimedFinding {
                finding: f,
                after_records: self.records,
                phase: self.current_phase,
            });
        }
    }

    /// Evaluate the distributional detectors over one kind's window.
    fn evaluate_window(&mut self, kind: CallKind) {
        let Some(w) = self.windows[kind as usize].as_ref() else {
            return;
        };
        let n = w.count() as usize;
        let th = self.cfg.thresholds.clone();
        if n < th.min_samples {
            return;
        }
        let mut raised = Vec::new();
        let grid = density_grid(&w.hist);
        let modes = find_modes_on_grid(&grid, th.mode_height_frac);
        if let Some(f) = harmonic_verdict(kind, &modes, &th) {
            raised.push(f);
        }
        if let (Some(median), Some(p99)) = (w.sketch.quantile(0.5), w.sketch.quantile(0.99)) {
            let tail = w.sketch.fraction_above(th.tail_cut(median));
            let attribution = self.attribute(kind);
            if let Some(f) = shoulder_verdict(kind, n, median, p99, tail, attribution, &th) {
                raised.push(f);
            }
        }
        for f in raised {
            self.raise(f);
        }
        self.evaluate_rank_tails();
    }

    /// Attribute `kind`'s tail from the cumulative (whole-run-so-far)
    /// state — whole-run profile, per-window slices, and the rank-tagged
    /// slow-event reservoir; `None` until the evidence supports anything.
    fn attribute(&self, kind: CallKind) -> Option<Attribution> {
        let kt = self.tails[kind as usize].as_ref()?;
        let th = &self.cfg.thresholds;
        if matches!(kind, CallKind::MetaRead | CallKind::MetaWrite) {
            return Some(Attribution::single(attribute_meta_tail(&kt.profile, th)));
        }
        let median = kt.cum.quantile(0.5)?;
        let events = kt.tail_events(th.tail_cut(median));
        let ev = DataTailEvidence {
            profile: &kt.profile,
            hist: &kt.hist,
            windows: Some(&kt.windows),
            events: Some(&events),
        };
        attribute_data_tail_windowed(&ev, median, th)
    }

    /// Re-test the rank-correlated-tail detector over every data class's
    /// cumulative profile.
    fn evaluate_rank_tails(&mut self) {
        let th = self.cfg.thresholds.clone();
        let mut raised = Vec::new();
        // Array order is discriminant order — the same order the map
        // version produced after its sort.
        for kind in CallKind::ALL {
            if matches!(kind, CallKind::MetaRead | CallKind::MetaWrite) {
                continue;
            }
            let Some(kt) = self.tails[kind as usize].as_ref() else {
                continue;
            };
            if (kt.cum.count() as usize) < th.min_samples {
                continue;
            }
            let Some(median) = kt.cum.quantile(0.5) else {
                continue;
            };
            if let Some(f) = rank_tail_verdict(kind, &kt.profile, th.tail_cut(median), &th) {
                raised.push(f);
            }
        }
        for f in raised {
            self.raise(f);
        }
    }

    /// Re-test the small-write metadata-storm detector over cumulative
    /// size-class state.
    fn evaluate_small(&mut self) {
        let f = {
            let th = &self.cfg.thresholds;
            let top = self.small.per_rank.top().first().map(|h| (h.key, h.weight));
            let span = if self.small.last_ns > self.small.first_ns {
                (self.small.last_ns - self.small.first_ns) as f64 / 1e9
            } else {
                0.0
            };
            metadata_shoulder_verdict(
                self.small.ops,
                self.small.secs,
                self.small.write_secs,
                top,
                span,
                th,
            )
        };
        if let Some(f) = f {
            self.raise(f);
        }
    }

    /// Re-test the serialized-metadata detector over cumulative state.
    fn evaluate_serialized(&mut self) {
        let per_rank: Vec<(u32, f64, usize)> = self
            .hitters
            .top()
            .into_iter()
            .map(|h| (h.key, h.weight, h.ops as usize))
            .collect();
        if let Some(f) = serialized_meta_verdict(
            &per_rank,
            self.meta_secs,
            self.ranks,
            self.io_secs,
            &self.cfg.thresholds,
        ) {
            self.raise(f);
        }
    }
}

/// Find or create the sketch for `phase` in one kind's per-phase list.
/// Streams deliver phases mostly in order, so the last entry matches
/// almost always; the fallback scan keeps arbitrary phase interleavings
/// correct. Open phases per kind are few (they close at each barrier),
/// so the scan is short even when it runs.
fn phase_sketch(
    v: &mut Vec<(u32, QuantileSketch)>,
    phase: u32,
    lo: f64,
    hi: f64,
    bins: usize,
) -> &mut QuantileSketch {
    if v.last().is_some_and(|e| e.0 == phase) {
        return &mut v.last_mut().expect("non-empty").1;
    }
    if let Some(i) = v.iter().position(|e| e.0 == phase) {
        return &mut v[i].1;
    }
    v.push((phase, QuantileSketch::new(lo, hi, bins)));
    &mut v.last_mut().expect("just pushed").1
}

/// A smoothed `(duration, density)` grid from a windowed histogram.
fn density_grid(hist: &LogHistogram) -> Vec<(f64, f64)> {
    let total = hist.in_range() as f64;
    if total == 0.0 {
        return Vec::new();
    }
    let raw: Vec<(f64, f64)> = (0..hist.bins())
        .map(|i| {
            let e = hist.bin_edges(i);
            (
                hist.bin_center(i),
                hist.counts()[i] as f64 / (total * (e.right - e.left)),
            )
        })
        .collect();
    (0..raw.len())
        .map(|i| {
            let prev = if i > 0 { raw[i - 1].1 } else { raw[i].1 };
            let next = if i + 1 < raw.len() {
                raw[i + 1].1
            } else {
                raw[i].1
            };
            (raw[i].0, 0.25 * prev + 0.5 * raw[i].1 + 0.25 * next)
        })
        .collect()
}

impl RecordSink for StreamDiagnoser {
    fn push(&mut self, r: &Record) {
        self.records += 1;
        self.ranks = self.ranks.max(r.rank + 1);
        self.current_phase = self.current_phase.max(r.phase);
        let secs = r.secs();
        let k = r.call as usize;
        if matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
            self.hitters.add(r.rank, secs);
            self.meta_secs += secs;
        }
        if r.call.is_io() {
            self.io_secs += secs;
        }
        // Size-class split for the metadata-storm detector.
        if matches!(r.call, CallKind::Write | CallKind::MetaWrite) {
            self.small.write_secs += secs;
            if r.bytes > 0 && r.bytes < self.cfg.thresholds.small_write_bytes {
                self.small.ops += 1;
                self.small.secs += secs;
                self.small.per_rank.add(r.rank, secs);
                self.small.first_ns = self.small.first_ns.min(r.start_ns);
                self.small.last_ns = self.small.last_ns.max(r.end_ns);
            }
        }
        if !self.watch_mask[k] {
            return;
        }
        let (lo, hi, bins) = (self.cfg.hist_lo, self.cfg.hist_hi, self.cfg.hist_bins);
        // Cumulative attribution state. No tail cut is applied here —
        // the slow-event reservoir and the profile both have the cut
        // applied at diagnosis time, so the evidence stays insensitive
        // to the provisional medians seen mid-stream.
        let cfg = &self.cfg;
        let kt = self.tails[k].get_or_insert_with(|| KindTail::new(cfg));
        kt.cum.add(secs);
        kt.hist.add_clamped(secs);
        kt.profile.add(r.rank, r.offset, secs);
        kt.windows.add(r.rank, r.offset, r.start_ns, secs);
        let key = (secs.max(0.0).to_bits(), r.start_ns, r.rank);
        if kt.slow.len() < TAIL_STARTS_CAP {
            kt.slow.push(Reverse(key));
        } else if kt.slow.peek().is_some_and(|Reverse(min)| key > *min) {
            kt.slow.pop();
            kt.slow.push(Reverse(key));
        }
        self.windows[k]
            .get_or_insert_with(|| KindWindow::new(cfg))
            .add(secs);
        phase_sketch(&mut self.phase_sketches[k], r.phase, lo, hi, bins).add(secs);
        if self.windows[k]
            .as_ref()
            .is_some_and(|w| w.count() as usize >= self.cfg.window)
        {
            self.evaluate_window(r.call);
            self.windows[k] = None;
        }
    }

    /// The block hot path: bit-identical to per-record [`Self::push`]
    /// for any partitioning of the stream, but with one [`BinTable`]
    /// classification per watched record feeding every cfg-geometry
    /// accumulator (window histogram + sketch, cumulative histogram +
    /// sketch, phase sketch) and one [`tail_bin_table`] classification
    /// feeding the attribution profile — no `ln` per record — plus
    /// heavy-hitter updates grouped by key run before hashing.
    fn push_block(&mut self, block: &[Record]) {
        // Pass 1 — meta heavy hitters, grouped by rank run over the
        // metadata subsequence. The sketch sees the same per-key weight
        // sequence as per-record pushes, and nothing reads it mid-block
        // (it is only evaluated at phase boundaries), so hoisting it out
        // of the main pass is unobservable.
        let mut run = std::mem::take(&mut self.run_buf);
        let mut i = 0;
        while i < block.len() {
            let r = &block[i];
            i += 1;
            if !matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
                continue;
            }
            run.clear();
            run.push(r.secs());
            let key = r.rank;
            while i < block.len() {
                let n = &block[i];
                if matches!(n.call, CallKind::MetaRead | CallKind::MetaWrite) {
                    if n.rank != key {
                        break;
                    }
                    run.push(n.secs());
                }
                i += 1;
            }
            self.hitters.add_run(key, &run);
        }
        self.run_buf = run;

        // Pass 2 — everything else, in record order. `records` and
        // `current_phase` advance per record so a window that fills
        // mid-block raises its finding with the exact same
        // `after_records` / `phase` stamp as the per-record path.
        let ttable = tail_bin_table();
        for r in block {
            self.records += 1;
            self.ranks = self.ranks.max(r.rank + 1);
            self.current_phase = self.current_phase.max(r.phase);
            let secs = r.secs();
            let k = r.call as usize;
            if matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
                self.meta_secs += secs;
            }
            if r.call.is_io() {
                self.io_secs += secs;
            }
            if matches!(r.call, CallKind::Write | CallKind::MetaWrite) {
                self.small.write_secs += secs;
                if r.bytes > 0 && r.bytes < self.cfg.thresholds.small_write_bytes {
                    self.small.ops += 1;
                    self.small.secs += secs;
                    self.small.per_rank.add(r.rank, secs);
                    self.small.first_ns = self.small.first_ns.min(r.start_ns);
                    self.small.last_ns = self.small.last_ns.max(r.end_ns);
                }
            }
            if !self.watch_mask[k] {
                continue;
            }
            let (lo, hi, bins) = (self.cfg.hist_lo, self.cfg.hist_hi, self.cfg.hist_bins);
            let bin = self.table.index_clamped(secs);
            // `add_binned` debug-asserts this equals the tail-geometry
            // classification, so the halving shortcut is checked against
            // the reference on every debug-build test run.
            let tail_bin = if self.tail_nested {
                bin >> 1
            } else {
                ttable.index_clamped(secs)
            };
            let cfg = &self.cfg;
            let kt = self.tails[k].get_or_insert_with(|| KindTail::new(cfg));
            kt.cum.add_at(secs, bin);
            kt.hist.add_clamped_at(bin);
            kt.profile.add_binned(r.rank, r.offset, secs, tail_bin);
            if self.slot_fine_direct {
                kt.windows
                    .add_binned(r.rank, r.offset, r.start_ns, secs, tail_bin, bin);
            } else {
                kt.windows.add(r.rank, r.offset, r.start_ns, secs);
            }
            // Reservoir fast path: once warm, a single peek-compare
            // rejects sub-threshold events without touching the heap.
            let key = (secs.max(0.0).to_bits(), r.start_ns, r.rank);
            if kt.slow.len() < TAIL_STARTS_CAP {
                kt.slow.push(Reverse(key));
            } else if kt.slow.peek().is_some_and(|Reverse(min)| key > *min) {
                kt.slow.pop();
                kt.slow.push(Reverse(key));
            }
            self.windows[k]
                .get_or_insert_with(|| KindWindow::new(cfg))
                .add_at(secs, bin);
            phase_sketch(&mut self.phase_sketches[k], r.phase, lo, hi, bins).add_at(secs, bin);
            if self.windows[k]
                .as_ref()
                .is_some_and(|w| w.count() as usize >= self.cfg.window)
            {
                self.evaluate_window(r.call);
                self.windows[k] = None;
            }
        }
    }

    fn phase_end(&mut self, phase: u32) {
        self.current_phase = self.current_phase.max(phase);
        let min_n = self.cfg.thresholds.min_samples.min(8);
        let kinds: Vec<CallKind> = self.cfg.watch.clone();
        for kind in kinds {
            // Close every sketch for phases up to the barrier (phases
            // complete in order; anything still open at `phase` is done).
            // Closure order is irrelevant: phase keys are distinct, and
            // the ladder is sorted before the verdict.
            let mut closed: Vec<(u32, f64)> = Vec::new();
            self.phase_sketches[kind as usize].retain(|(p, s)| {
                if *p <= phase {
                    if s.count() as usize >= min_n {
                        if let Some(m) = s.quantile(0.5) {
                            closed.push((*p, m));
                        }
                    }
                    false
                } else {
                    true
                }
            });
            if closed.is_empty() {
                continue;
            }
            let medians = &mut self.phase_medians[kind as usize];
            medians.extend(closed);
            medians.sort_by_key(|&(p, _)| p);
            let medians = medians.clone();
            if let Some(f) = deterioration_verdict(kind, &medians, &self.cfg.thresholds) {
                self.raise(f);
            }
        }
        self.evaluate_serialized();
        self.evaluate_rank_tails();
        self.evaluate_small();
    }

    fn finish(&mut self) {
        // Flush partially filled windows and any never-closed phases.
        let kinds: Vec<CallKind> = self.cfg.watch.clone();
        for kind in &kinds {
            self.evaluate_window(*kind);
        }
        self.phase_end(u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_core::attribution::FaultClass;

    fn rec(rank: u32, call: CallKind, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes: 1 << 20,
            start_ns: 0,
            end_ns: (dur * 1e9) as u64,
            phase,
        }
    }

    #[test]
    fn shoulder_flagged_mid_stream() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 128,
            ..DiagnoserConfig::default()
        });
        // First window: healthy. Second window: the read-ahead pathology
        // appears. The finding must fire before the stream ends.
        for i in 0..128u32 {
            d.push(&rec(i % 16, CallKind::Read, 10.0 + (i % 5) as f64 * 0.1, 0));
        }
        assert!(d.findings().is_empty());
        for i in 0..128u32 {
            let dur = if i % 8 == 0 {
                250.0
            } else {
                10.0 + (i % 5) as f64 * 0.1
            };
            d.push(&rec(i % 16, CallKind::Read, dur, 0));
        }
        let shoulder = d
            .findings()
            .iter()
            .find(|t| {
                matches!(
                    t.finding,
                    Finding::RightShoulder {
                        kind: CallKind::Read,
                        ..
                    }
                )
            })
            .expect("shoulder must fire from the second window");
        assert!(shoulder.after_records <= 256, "{}", shoulder.after_records);
        // Still only one finding after more pathological windows.
        for i in 0..512u32 {
            let dur = if i % 8 == 0 { 250.0 } else { 10.0 };
            d.push(&rec(i % 16, CallKind::Read, dur, 0));
        }
        let shoulders = d
            .findings()
            .iter()
            .filter(|t| matches!(t.finding, Finding::RightShoulder { .. }))
            .count();
        assert_eq!(shoulders, 1);
    }

    #[test]
    fn healthy_stream_stays_clean() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 256,
            ..DiagnoserConfig::default()
        });
        for p in 0..4u32 {
            for i in 0..512u32 {
                d.push(&rec(
                    i % 32,
                    CallKind::Write,
                    5.0 + (i % 7) as f64 * 0.05,
                    p,
                ));
                d.push(&rec(i % 32, CallKind::Read, 2.0 + (i % 5) as f64 * 0.04, p));
            }
            d.phase_end(p);
        }
        d.finish();
        assert!(d.findings().is_empty(), "{:?}", d.findings());
    }

    #[test]
    fn deterioration_flagged_at_barrier() {
        let mut d = StreamDiagnoser::with_defaults();
        for (p, m) in [8.0, 8.1, 11.0, 17.0, 28.0, 45.0].iter().enumerate() {
            for i in 0..64u32 {
                d.push(&rec(
                    i % 16,
                    CallKind::Read,
                    m + (i % 3) as f64 * 0.05,
                    p as u32,
                ));
            }
            d.phase_end(p as u32);
        }
        let t = d
            .findings()
            .iter()
            .find(|t| {
                matches!(
                    t.finding,
                    Finding::ProgressiveDeterioration {
                        kind: CallKind::Read,
                        ..
                    }
                )
            })
            .expect("deterioration fires at a barrier");
        // Fired at a phase_end, not only at finish().
        assert!(t.phase <= 5);
    }

    #[test]
    fn serialized_rank_flagged_from_heavy_hitters() {
        let mut d = StreamDiagnoser::with_defaults();
        for i in 0..500u32 {
            d.push(&rec(0, CallKind::MetaWrite, 0.3, 0));
            d.push(&rec(i % 256, CallKind::Write, 1.0, 0));
        }
        d.phase_end(0);
        assert!(
            d.findings()
                .iter()
                .any(|t| matches!(t.finding, Finding::SerializedRank { rank: 0, .. })),
            "{:?}",
            d.findings()
        );
    }

    #[test]
    fn straggler_named_mid_stream() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 128,
            ..DiagnoserConfig::default()
        });
        // Rank 3 is slow on every operation — the node, not the storage.
        for i in 0..512u32 {
            let rank = i % 16;
            let dur = if rank == 3 { 0.8 } else { 0.02 };
            d.push(&rec(rank, CallKind::Read, dur, 0));
        }
        let t = d
            .findings()
            .iter()
            .find(|t| matches!(t.finding, Finding::RankCorrelatedTail { .. }))
            .expect("rank-correlated tail fires mid-stream");
        assert!(t.after_records < 512, "{}", t.after_records);
        match &t.finding {
            Finding::RankCorrelatedTail { ranks, .. } => assert_eq!(ranks, &vec![3]),
            _ => unreachable!(),
        }
        assert_eq!(
            t.finding.attribution(),
            Some(Attribution::single(FaultClass::StragglerNode))
        );
        // The shoulder refines as evidence accumulates: the first window
        // has too few tail events to attribute, a later one names the
        // fault — the attributed verdict must appear.
        assert!(
            d.findings()
                .iter()
                .filter(|t| matches!(t.finding, Finding::RightShoulder { .. }))
                .any(|t| t
                    .finding
                    .attribution()
                    .is_some_and(|a| a.is(FaultClass::StragglerNode))),
            "{:?}",
            d.findings()
        );
    }

    #[test]
    fn meta_shoulder_attributed_to_mds_stall() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 256,
            ..DiagnoserConfig::default()
        });
        // Meta reads stall 90x on a spread of ranks — the server, not a
        // serialized client.
        for i in 0..512u32 {
            let dur = if i % 10 == 0 { 0.9 } else { 0.01 };
            d.push(&rec(i % 16, CallKind::MetaRead, dur, 0));
        }
        let t = d
            .findings()
            .iter()
            .find(|t| {
                matches!(
                    t.finding,
                    Finding::RightShoulder {
                        kind: CallKind::MetaRead,
                        ..
                    }
                )
            })
            .expect("meta shoulder fires");
        assert_eq!(
            t.finding.attribution(),
            Some(Attribution::single(FaultClass::MdsStall))
        );
    }

    #[test]
    fn metadata_storm_flagged_at_barrier() {
        let mut d = StreamDiagnoser::with_defaults();
        // Rank 0 issues 200 serialized 2KB writes; everyone else writes
        // big blocks.
        for i in 0..200u32 {
            let mut r = rec(0, CallKind::Write, 0.1, 0);
            r.bytes = 2048;
            r.start_ns = (i as f64 * 0.1 * 1e9) as u64;
            r.end_ns = r.start_ns + (0.1 * 1e9) as u64;
            d.push(&r);
        }
        for i in 0..256u32 {
            d.push(&rec(i, CallKind::Write, 0.5, 0));
        }
        d.phase_end(0);
        let t = d
            .findings()
            .iter()
            .find(|t| matches!(t.finding, Finding::MetadataShoulder { .. }))
            .expect("metadata storm fires at the barrier");
        match &t.finding {
            Finding::MetadataShoulder {
                rank, small_ops, ..
            } => {
                assert_eq!(*rank, 0);
                assert_eq!(*small_ops, 200);
            }
            _ => unreachable!(),
        }
        assert_eq!(
            t.finding.attribution(),
            Some(Attribution::single(FaultClass::MetadataStorm))
        );
    }

    /// The block path must raise byte-identical findings at identical
    /// stamps for every partitioning of the same stream — pathological
    /// streams included, so windows fill and verdicts fire mid-block.
    #[test]
    fn push_block_matches_push_for_any_partition() {
        let mk = || {
            StreamDiagnoser::new(DiagnoserConfig {
                window: 128,
                ..DiagnoserConfig::default()
            })
        };
        // A stream that trips several detectors: a shoulder + straggler
        // rank on reads, serialized metadata on rank 0, small writes,
        // phase-to-phase deterioration, and out-of-order phase stamps.
        let mut stream: Vec<Record> = Vec::new();
        for p in 0..4u32 {
            for i in 0..400u32 {
                let rank = i % 16;
                let dur = if rank == 3 {
                    0.9
                } else {
                    0.02 * (p + 1) as f64
                };
                stream.push(rec(rank, CallKind::Read, dur, p));
                if i % 3 == 0 {
                    stream.push(rec(0, CallKind::MetaWrite, 0.25, p));
                    stream.push(rec(0, CallKind::MetaWrite, 0.20, p));
                }
                if i % 5 == 0 {
                    let mut w = rec(rank, CallKind::Write, 0.1, p);
                    w.bytes = 2048;
                    w.start_ns = (i as u64) * 1_000_000;
                    w.end_ns = w.start_ns + 100_000_000;
                    stream.push(w);
                }
                if i % 7 == 0 {
                    // A phase stamp from the past (late arrival).
                    stream.push(rec(rank, CallKind::Read, 0.03, p.saturating_sub(1)));
                }
            }
        }
        let mut reference = mk();
        for r in &stream {
            reference.push(r);
        }
        reference.phase_end(1);
        for r in &stream {
            reference.push(r);
        }
        reference.finish();
        assert!(!reference.findings().is_empty());
        for block in [1usize, 2, 7, 64, 333, stream.len()] {
            let mut d = mk();
            for c in stream.chunks(block) {
                d.push_block(c);
            }
            d.phase_end(1);
            for c in stream.chunks(block) {
                d.push_block(c);
            }
            d.finish();
            assert_eq!(
                d.findings(),
                reference.findings(),
                "block size {block} diverged"
            );
            assert_eq!(d.records(), reference.records());
        }
    }

    #[test]
    fn finish_flushes_partial_windows() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 100_000,
            ..DiagnoserConfig::default()
        });
        for i in 0..120u32 {
            let dur = if i % 8 == 0 { 300.0 } else { 12.0 };
            d.push(&rec(i % 16, CallKind::Read, dur, 0));
        }
        assert!(d.findings().is_empty());
        d.finish();
        assert!(
            d.findings()
                .iter()
                .any(|t| matches!(t.finding, Finding::RightShoulder { .. })),
            "{:?}",
            d.findings()
        );
    }
}
