//! Online diagnosis: the paper's detectors, incrementally, mid-run.
//!
//! [`StreamDiagnoser`] is a [`RecordSink`] that watches the record stream
//! as it is produced and raises the same findings as
//! `pio_core::diagnosis::diagnose_with` — through the *same* verdict
//! functions, fed sketch estimates instead of exact order statistics:
//!
//! * **Right shoulder** and **harmonic modes** are evaluated over a
//!   tumbling window of recent records, so a pathology that develops
//!   mid-run (Franklin's read-ahead bug) is flagged long before the job
//!   ends.
//! * **Progressive deterioration** closes a per-phase quantile sketch at
//!   every barrier boundary ([`RecordSink::phase_end`]) and re-tests the
//!   median ladder.
//! * **Serialized metadata rank** keeps a weighted heavy-hitter sketch
//!   by rank and re-tests at each barrier.
//!
//! Memory is O(window bins + active phases × bins + heavy-hitter k):
//! constant in the number of records.

use crate::sketch::{HeavyHitters, QuantileSketch};
use pio_core::diagnosis::{
    deterioration_verdict, harmonic_verdict, serialized_meta_verdict, shoulder_verdict, Finding,
    Thresholds,
};
use pio_core::modes::find_modes_on_grid;
use pio_des::hist::LogHistogram;
use pio_trace::{CallKind, Record, RecordSink};
use std::collections::{HashMap, HashSet};

/// Online-diagnoser tuning knobs.
#[derive(Debug, Clone)]
pub struct DiagnoserConfig {
    /// Detector thresholds (shared with the batch path).
    pub thresholds: Thresholds,
    /// Tumbling-window length in records, per watched call class.
    pub window: usize,
    /// Call classes watched for windowed distributional pathologies.
    pub watch: Vec<CallKind>,
    /// Duration geometry: lower bound, seconds.
    pub hist_lo: f64,
    /// Duration geometry: upper bound, seconds.
    pub hist_hi: f64,
    /// Duration geometry: bucket count.
    pub hist_bins: usize,
    /// Heavy-hitter sketch capacity.
    pub hitter_capacity: usize,
}

impl Default for DiagnoserConfig {
    fn default() -> Self {
        DiagnoserConfig {
            thresholds: Thresholds::default(),
            window: 2048,
            watch: vec![CallKind::Write, CallKind::Read],
            hist_lo: 1e-6,
            hist_hi: 1e3,
            hist_bins: 96,
            hitter_capacity: 16,
        }
    }
}

/// A finding plus when the stream first produced it.
#[derive(Debug, Clone)]
pub struct TimedFinding {
    /// The diagnosis.
    pub finding: Finding,
    /// Records ingested when it first fired.
    pub after_records: u64,
    /// Barrier phase in effect when it first fired.
    pub phase: u32,
}

/// Windowed per-kind state for the distributional detectors.
struct KindWindow {
    hist: LogHistogram,
    sketch: QuantileSketch,
}

impl KindWindow {
    fn new(cfg: &DiagnoserConfig) -> Self {
        KindWindow {
            hist: LogHistogram::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins),
            sketch: QuantileSketch::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins),
        }
    }

    fn add(&mut self, secs: f64) {
        self.hist.add_clamped(secs);
        self.sketch.add(secs);
    }

    fn count(&self) -> u64 {
        self.sketch.count()
    }
}

/// Streaming, constant-memory implementation of the paper's detectors.
pub struct StreamDiagnoser {
    cfg: DiagnoserConfig,
    windows: HashMap<CallKind, KindWindow>,
    phase_sketches: HashMap<(CallKind, u32), QuantileSketch>,
    phase_medians: HashMap<CallKind, Vec<(u32, f64)>>,
    hitters: HeavyHitters,
    meta_secs: f64,
    io_secs: f64,
    ranks: u32,
    records: u64,
    current_phase: u32,
    findings: Vec<TimedFinding>,
    seen: HashSet<(u8, Option<CallKind>)>,
}

impl StreamDiagnoser {
    /// A diagnoser with the given configuration.
    pub fn new(cfg: DiagnoserConfig) -> Self {
        let hitters = HeavyHitters::new(cfg.hitter_capacity);
        StreamDiagnoser {
            cfg,
            windows: HashMap::new(),
            phase_sketches: HashMap::new(),
            phase_medians: HashMap::new(),
            hitters,
            meta_secs: 0.0,
            io_secs: 0.0,
            ranks: 0,
            records: 0,
            current_phase: 0,
            findings: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// A diagnoser with default configuration.
    pub fn with_defaults() -> Self {
        StreamDiagnoser::new(DiagnoserConfig::default())
    }

    /// Every finding raised so far, in the order they first fired.
    pub fn findings(&self) -> &[TimedFinding] {
        &self.findings
    }

    /// Records ingested so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// One dedup key per (finding variant, call class): repeated windows
    /// re-confirming a known pathology stay one finding.
    fn dedup_key(f: &Finding) -> (u8, Option<CallKind>) {
        match f {
            Finding::HarmonicModes { kind, .. } => (0, Some(*kind)),
            Finding::RightShoulder { kind, .. } => (1, Some(*kind)),
            Finding::ProgressiveDeterioration { kind, .. } => (2, Some(*kind)),
            Finding::SerializedRank { .. } => (3, None),
        }
    }

    fn raise(&mut self, f: Finding) {
        if self.seen.insert(Self::dedup_key(&f)) {
            self.findings.push(TimedFinding {
                finding: f,
                after_records: self.records,
                phase: self.current_phase,
            });
        }
    }

    /// Evaluate the distributional detectors over one kind's window.
    fn evaluate_window(&mut self, kind: CallKind) {
        let Some(w) = self.windows.get(&kind) else {
            return;
        };
        let n = w.count() as usize;
        let th = self.cfg.thresholds.clone();
        if n < th.min_samples {
            return;
        }
        let mut raised = Vec::new();
        let grid = density_grid(&w.hist);
        let modes = find_modes_on_grid(&grid, th.mode_height_frac);
        if let Some(f) = harmonic_verdict(kind, &modes, &th) {
            raised.push(f);
        }
        if let (Some(median), Some(p99)) = (w.sketch.quantile(0.5), w.sketch.quantile(0.99)) {
            let tail = w.sketch.fraction_above(2.0 * median);
            if let Some(f) = shoulder_verdict(kind, n, median, p99, tail, &th) {
                raised.push(f);
            }
        }
        for f in raised {
            self.raise(f);
        }
    }

    /// Re-test the serialized-metadata detector over cumulative state.
    fn evaluate_serialized(&mut self) {
        let per_rank: Vec<(u32, f64, usize)> = self
            .hitters
            .top()
            .into_iter()
            .map(|h| (h.key, h.weight, h.ops as usize))
            .collect();
        if let Some(f) = serialized_meta_verdict(
            &per_rank,
            self.meta_secs,
            self.ranks,
            self.io_secs,
            &self.cfg.thresholds,
        ) {
            self.raise(f);
        }
    }
}

/// A smoothed `(duration, density)` grid from a windowed histogram.
fn density_grid(hist: &LogHistogram) -> Vec<(f64, f64)> {
    let total = hist.in_range() as f64;
    if total == 0.0 {
        return Vec::new();
    }
    let raw: Vec<(f64, f64)> = (0..hist.bins())
        .map(|i| {
            let e = hist.bin_edges(i);
            (
                hist.bin_center(i),
                hist.counts()[i] as f64 / (total * (e.right - e.left)),
            )
        })
        .collect();
    (0..raw.len())
        .map(|i| {
            let prev = if i > 0 { raw[i - 1].1 } else { raw[i].1 };
            let next = if i + 1 < raw.len() {
                raw[i + 1].1
            } else {
                raw[i].1
            };
            (raw[i].0, 0.25 * prev + 0.5 * raw[i].1 + 0.25 * next)
        })
        .collect()
}

impl RecordSink for StreamDiagnoser {
    fn push(&mut self, r: &Record) {
        self.records += 1;
        self.ranks = self.ranks.max(r.rank + 1);
        self.current_phase = self.current_phase.max(r.phase);
        let secs = r.secs();
        if matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
            self.hitters.add(r.rank, secs);
            self.meta_secs += secs;
        }
        if r.call.is_io() {
            self.io_secs += secs;
        }
        if !self.cfg.watch.contains(&r.call) {
            return;
        }
        let (lo, hi, bins) = (self.cfg.hist_lo, self.cfg.hist_hi, self.cfg.hist_bins);
        self.windows
            .entry(r.call)
            .or_insert_with(|| KindWindow::new(&self.cfg))
            .add(secs);
        self.phase_sketches
            .entry((r.call, r.phase))
            .or_insert_with(|| QuantileSketch::new(lo, hi, bins))
            .add(secs);
        if self.windows[&r.call].count() as usize >= self.cfg.window {
            self.evaluate_window(r.call);
            self.windows.remove(&r.call);
        }
    }

    fn phase_end(&mut self, phase: u32) {
        self.current_phase = self.current_phase.max(phase);
        let min_n = self.cfg.thresholds.min_samples.min(8);
        let kinds: Vec<CallKind> = self.cfg.watch.clone();
        for kind in kinds {
            // Close every sketch for phases up to the barrier (phases
            // complete in order; anything still open at `phase` is done).
            let mut closed: Vec<(u32, f64)> = Vec::new();
            let done: Vec<(CallKind, u32)> = self
                .phase_sketches
                .keys()
                .filter(|&&(k, p)| k == kind && p <= phase)
                .cloned()
                .collect();
            for key in done {
                let s = self.phase_sketches.remove(&key).expect("present");
                if s.count() as usize >= min_n {
                    if let Some(m) = s.quantile(0.5) {
                        closed.push((key.1, m));
                    }
                }
            }
            if closed.is_empty() {
                continue;
            }
            let medians = self.phase_medians.entry(kind).or_default();
            medians.extend(closed);
            medians.sort_by_key(|&(p, _)| p);
            let medians = medians.clone();
            if let Some(f) = deterioration_verdict(kind, &medians, &self.cfg.thresholds) {
                self.raise(f);
            }
        }
        self.evaluate_serialized();
    }

    fn finish(&mut self) {
        // Flush partially filled windows and any never-closed phases.
        let kinds: Vec<CallKind> = self.cfg.watch.clone();
        for kind in &kinds {
            self.evaluate_window(*kind);
        }
        self.phase_end(u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, call: CallKind, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes: 1 << 20,
            start_ns: 0,
            end_ns: (dur * 1e9) as u64,
            phase,
        }
    }

    #[test]
    fn shoulder_flagged_mid_stream() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 128,
            ..DiagnoserConfig::default()
        });
        // First window: healthy. Second window: the read-ahead pathology
        // appears. The finding must fire before the stream ends.
        for i in 0..128u32 {
            d.push(&rec(i % 16, CallKind::Read, 10.0 + (i % 5) as f64 * 0.1, 0));
        }
        assert!(d.findings().is_empty());
        for i in 0..128u32 {
            let dur = if i % 8 == 0 {
                250.0
            } else {
                10.0 + (i % 5) as f64 * 0.1
            };
            d.push(&rec(i % 16, CallKind::Read, dur, 0));
        }
        let shoulder = d
            .findings()
            .iter()
            .find(|t| {
                matches!(
                    t.finding,
                    Finding::RightShoulder {
                        kind: CallKind::Read,
                        ..
                    }
                )
            })
            .expect("shoulder must fire from the second window");
        assert!(shoulder.after_records <= 256, "{}", shoulder.after_records);
        // Still only one finding after more pathological windows.
        for i in 0..512u32 {
            let dur = if i % 8 == 0 { 250.0 } else { 10.0 };
            d.push(&rec(i % 16, CallKind::Read, dur, 0));
        }
        let shoulders = d
            .findings()
            .iter()
            .filter(|t| matches!(t.finding, Finding::RightShoulder { .. }))
            .count();
        assert_eq!(shoulders, 1);
    }

    #[test]
    fn healthy_stream_stays_clean() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 256,
            ..DiagnoserConfig::default()
        });
        for p in 0..4u32 {
            for i in 0..512u32 {
                d.push(&rec(
                    i % 32,
                    CallKind::Write,
                    5.0 + (i % 7) as f64 * 0.05,
                    p,
                ));
                d.push(&rec(i % 32, CallKind::Read, 2.0 + (i % 5) as f64 * 0.04, p));
            }
            d.phase_end(p);
        }
        d.finish();
        assert!(d.findings().is_empty(), "{:?}", d.findings());
    }

    #[test]
    fn deterioration_flagged_at_barrier() {
        let mut d = StreamDiagnoser::with_defaults();
        for (p, m) in [8.0, 8.1, 11.0, 17.0, 28.0, 45.0].iter().enumerate() {
            for i in 0..64u32 {
                d.push(&rec(
                    i % 16,
                    CallKind::Read,
                    m + (i % 3) as f64 * 0.05,
                    p as u32,
                ));
            }
            d.phase_end(p as u32);
        }
        let t = d
            .findings()
            .iter()
            .find(|t| {
                matches!(
                    t.finding,
                    Finding::ProgressiveDeterioration {
                        kind: CallKind::Read,
                        ..
                    }
                )
            })
            .expect("deterioration fires at a barrier");
        // Fired at a phase_end, not only at finish().
        assert!(t.phase <= 5);
    }

    #[test]
    fn serialized_rank_flagged_from_heavy_hitters() {
        let mut d = StreamDiagnoser::with_defaults();
        for i in 0..500u32 {
            d.push(&rec(0, CallKind::MetaWrite, 0.3, 0));
            d.push(&rec(i % 256, CallKind::Write, 1.0, 0));
        }
        d.phase_end(0);
        assert!(
            d.findings()
                .iter()
                .any(|t| matches!(t.finding, Finding::SerializedRank { rank: 0, .. })),
            "{:?}",
            d.findings()
        );
    }

    #[test]
    fn finish_flushes_partial_windows() {
        let mut d = StreamDiagnoser::new(DiagnoserConfig {
            window: 100_000,
            ..DiagnoserConfig::default()
        });
        for i in 0..120u32 {
            let dur = if i % 8 == 0 { 300.0 } else { 12.0 };
            d.push(&rec(i % 16, CallKind::Read, dur, 0));
        }
        assert!(d.findings().is_empty());
        d.finish();
        assert!(
            d.findings()
                .iter()
                .any(|t| matches!(t.finding, Finding::RightShoulder { .. })),
            "{:?}",
            d.findings()
        );
    }
}
