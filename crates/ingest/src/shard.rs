//! Per-shard accumulators and the merged ensemble snapshot.
//!
//! A shard is keyed by `(call kind, rank group, barrier phase)` and holds
//! only mergeable sketches, so the whole pipeline's memory is
//! O(shards × bins) regardless of how many events stream through. A
//! [`EnsembleSnapshot`] is the order-independent merge of every shard,
//! plus the global scalars and heavy-hitter sketch the serialized-rank
//! detector needs; it re-runs the paper's detectors through the shared
//! verdict functions in `pio_core::diagnosis`, so a snapshot diagnosis
//! differs from the batch one only in how the summary statistics were
//! estimated (sketches vs exact order statistics).

use crate::sketch::{HeavyHitters, OnlineMoments, QuantileSketch};
use pio_core::attribution::{
    attribute_data_tail_windowed, attribute_meta_tail, tail_bin_table, Attribution,
    DataTailEvidence, TailProfile, MODULI, TAIL_KINDS,
};
use pio_core::diagnosis::{
    deterioration_verdict, harmonic_verdict, metadata_shoulder_verdict, rank_tail_verdict,
    serialized_meta_verdict, shoulder_verdict, Finding, Thresholds,
};
use pio_core::modes::find_modes_on_grid;
use pio_des::hist::{BinTable, LogBins, LogHistogram};
use pio_des::FxHashMap;
use pio_trace::{CallKind, Record};
use std::collections::HashMap;

/// Number of call classes (shard slots are direct-indexed by
/// `call as usize`).
const KINDS: usize = CallKind::ALL.len();

/// "No shard yet" marker in the per-`(kind, group)` direct index.
const NO_SHARD: u32 = u32::MAX;

/// Cumulative small-write size-class aggregate — the snapshot-side state
/// behind the metadata-storm detector. Mergeable and order-independent
/// like every other snapshot component.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallWriteAgg {
    /// Write-direction operations below the small-write cut.
    pub ops: u64,
    /// Seconds spent in the small class.
    pub secs: f64,
    /// Seconds spent in *all* write-direction calls.
    pub write_secs: f64,
    /// Small-class seconds by rank (weighted heavy hitters).
    pub per_rank: HeavyHitters,
    /// Earliest small-class start, nanoseconds.
    pub first_ns: u64,
    /// Latest small-class end, nanoseconds.
    pub last_ns: u64,
}

impl SmallWriteAgg {
    /// An empty aggregate with the given heavy-hitter capacity.
    pub fn new(hitter_capacity: usize) -> Self {
        SmallWriteAgg {
            ops: 0,
            secs: 0.0,
            write_secs: 0.0,
            per_rank: HeavyHitters::new(hitter_capacity),
            first_ns: u64::MAX,
            last_ns: 0,
        }
    }

    /// Accumulate one record (no-op for non-write-direction calls).
    pub fn accumulate(&mut self, r: &Record, small_write_bytes: u64) {
        if !matches!(r.call, CallKind::Write | CallKind::MetaWrite) {
            return;
        }
        let secs = r.secs();
        self.write_secs += secs;
        if r.bytes > 0 && r.bytes < small_write_bytes {
            self.ops += 1;
            self.secs += secs;
            self.per_rank.add(r.rank, secs);
            self.first_ns = self.first_ns.min(r.start_ns);
            self.last_ns = self.last_ns.max(r.end_ns);
        }
    }

    /// Merge another aggregate.
    pub fn merge(&mut self, other: &SmallWriteAgg) {
        self.ops += other.ops;
        self.secs += other.secs;
        self.write_secs += other.write_secs;
        self.per_rank.merge(&other.per_rank);
        self.first_ns = self.first_ns.min(other.first_ns);
        self.last_ns = self.last_ns.max(other.last_ns);
    }

    /// Wall-clock span of the small class, seconds.
    pub fn span_secs(&self) -> f64 {
        if self.last_ns > self.first_ns {
            (self.last_ns - self.first_ns) as f64 / 1e9
        } else {
            0.0
        }
    }

    /// The heaviest small-writer: `(rank, seconds)`.
    pub fn top(&self) -> Option<(u32, f64)> {
        self.per_rank.top().first().map(|h| (h.key, h.weight))
    }
}

/// Which accumulator a record lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardKey {
    /// The intercepted call.
    pub kind: CallKind,
    /// Rank group (`rank % groups`) — coarse spatial resolution.
    pub group: u32,
    /// Barrier-phase index.
    pub phase: u32,
}

/// The mergeable statistics one shard accumulates.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Duration histogram (clamped, capture-style).
    pub hist: LogHistogram,
    /// Duration quantile sketch.
    pub sketch: QuantileSketch,
    /// Duration moments (mean/variance/skew/kurtosis).
    pub moments: OnlineMoments,
    /// Operation count.
    pub ops: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total seconds spent in the call class.
    pub secs: f64,
}

impl ShardStats {
    /// An empty shard over the given duration geometry.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        ShardStats {
            hist: LogHistogram::new(lo, hi, bins),
            sketch: QuantileSketch::new(lo, hi, bins),
            moments: OnlineMoments::new(),
            ops: 0,
            bytes: 0,
            secs: 0.0,
        }
    }

    /// Accumulate one record's duration and size.
    pub fn accumulate(&mut self, r: &Record) {
        let secs = r.secs();
        self.hist.add_clamped(secs);
        self.sketch.add(secs);
        self.moments.record(secs);
        self.ops += 1;
        self.bytes += r.bytes;
        self.secs += secs;
    }

    /// Accumulate one record whose duration bin is already classified
    /// (`bin` from a [`BinTable`] over this shard's geometry): one table
    /// lookup serves the histogram and the sketch. Bit-identical to
    /// [`Self::accumulate`].
    #[inline]
    pub fn accumulate_binned(&mut self, r: &Record, secs: f64, bin: usize) {
        self.hist.add_clamped_at(bin);
        self.sketch.add_at(secs, bin);
        self.moments.record(secs);
        self.ops += 1;
        self.bytes += r.bytes;
        self.secs += secs;
    }

    /// Merge another shard (same geometry); equivalent to having
    /// accumulated both record streams into one shard.
    pub fn merge(&mut self, other: &ShardStats) {
        self.hist.merge(&other.hist);
        self.sketch.merge(&other.sketch);
        self.moments.merge(&other.moments);
        self.ops += other.ops;
        self.bytes += other.bytes;
        self.secs += other.secs;
    }
}

/// Geometry and capacity knobs shared by every snapshot accumulator —
/// the pipeline's workers, a fleet tenant, or a test harness. Two
/// accumulators are mergeable exactly when they share one of these.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Rank groups for shard keys (`rank % rank_groups`).
    pub rank_groups: u32,
    /// Duration geometry: lower bound, seconds.
    pub hist_lo: f64,
    /// Duration geometry: upper bound, seconds.
    pub hist_hi: f64,
    /// Duration geometry: bucket count.
    pub hist_bins: usize,
    /// Heavy-hitter sketch capacity (tracked ranks).
    pub hitter_capacity: usize,
    /// Writes strictly below this byte count feed the small-write
    /// (metadata-storm) aggregate.
    pub small_write_bytes: u64,
    /// Stripe width for the per-target residue decomposition in the
    /// tail profiles.
    pub stripe_bytes: u64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        let th = Thresholds::default();
        SnapshotConfig {
            rank_groups: 8,
            hist_lo: 1e-6,
            hist_hi: 1e3,
            hist_bins: 96,
            hitter_capacity: 16,
            small_write_bytes: th.small_write_bytes,
            stripe_bytes: th.stripe_bytes,
        }
    }
}

/// The sequential snapshot accumulator: one record stream in, an
/// [`EnsembleSnapshot`] out, in `O(shards × bins)` memory. The pipeline's
/// workers each own one; a fleet tenant owns one per job. Builders over
/// the same [`SnapshotConfig`] merge freely through
/// [`EnsembleSnapshot::merge`].
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    cfg: SnapshotConfig,
    /// Bit-exact bin classifier for the configured duration geometry.
    table: BinTable,
    /// The configured geometry is the tail geometry at exactly double
    /// resolution (same range, 2× bins): a tail bin is the configured
    /// bin halved — `floor(f·2n)/2 = floor(f·n)` exactly, range checks
    /// and edge clamps included — saving the second lookup per record.
    tail_nested: bool,
    /// Dense shard storage; order is insertion order (the snapshot
    /// assembly sorts, so storage order is unobservable).
    shards: Vec<(ShardKey, ShardStats)>,
    /// Direct index: slot `(kind as usize) * rank_groups + group` holds
    /// the position of that slot's most-recently-touched phase's shard
    /// (`NO_SHARD` when untouched). Streams revisit the same `(kind,
    /// group)` within a phase run, so the common case is one array read.
    index: Vec<u32>,
    /// Complete key → position fallback for phase changes (fast
    /// non-SipHash hashing; never on the per-record fast path).
    lookup: FxHashMap<ShardKey, u32>,
    hitters: HeavyHitters,
    profiles: Vec<Option<TailProfile>>,
    small: SmallWriteAgg,
    meta_secs: f64,
    io_secs: f64,
    ranks: u32,
    ingested: u64,
    /// Scratch buffer for grouped heavy-hitter runs (reused per block).
    run_buf: Vec<f64>,
}

impl SnapshotBuilder {
    /// An empty builder over `cfg`'s geometry.
    pub fn new(cfg: SnapshotConfig) -> Self {
        let groups = cfg.rank_groups.max(1) as usize;
        SnapshotBuilder {
            hitters: HeavyHitters::new(cfg.hitter_capacity),
            small: SmallWriteAgg::new(cfg.hitter_capacity),
            table: BinTable::new(LogBins::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins)),
            tail_nested: {
                let tg = tail_bin_table().geometry();
                cfg.hist_lo == tg.lo() && cfg.hist_hi == tg.hi() && cfg.hist_bins == 2 * tg.bins()
            },
            shards: Vec::new(),
            index: vec![NO_SHARD; KINDS * groups],
            lookup: FxHashMap::default(),
            profiles: (0..KINDS).map(|_| None).collect(),
            meta_secs: 0.0,
            io_secs: 0.0,
            ranks: 0,
            ingested: 0,
            cfg,
            run_buf: Vec::new(),
        }
    }

    /// Position of the shard for `(kind, group, phase)`, creating it on
    /// first touch. One array read when the slot's cached phase matches;
    /// a hash lookup only on phase change.
    #[inline]
    fn shard_pos(&mut self, kind: CallKind, group: u32, phase: u32) -> usize {
        let groups = self.cfg.rank_groups.max(1) as usize;
        let slot = kind as usize * groups + group as usize;
        let cached = self.index[slot];
        if cached != NO_SHARD && self.shards[cached as usize].0.phase == phase {
            return cached as usize;
        }
        let key = ShardKey { kind, group, phase };
        let pos = match self.lookup.get(&key) {
            Some(&p) => p,
            None => {
                let p = self.shards.len() as u32;
                self.shards.push((
                    key,
                    ShardStats::new(self.cfg.hist_lo, self.cfg.hist_hi, self.cfg.hist_bins),
                ));
                self.lookup.insert(key, p);
                p
            }
        };
        self.index[slot] = pos;
        pos as usize
    }

    /// Accumulate one record into every snapshot component.
    pub fn accumulate(&mut self, r: &Record) {
        let group = r.rank % self.cfg.rank_groups.max(1);
        let pos = self.shard_pos(r.call, group, r.phase);
        self.shards[pos].1.accumulate(r);
        let secs = r.secs();
        if matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
            self.hitters.add(r.rank, secs);
            self.meta_secs += secs;
        }
        if r.call.is_io() {
            self.io_secs += secs;
        }
        if TAIL_KINDS.contains(&r.call) {
            let stripe = self.cfg.stripe_bytes;
            self.profiles[r.call as usize]
                .get_or_insert_with(|| TailProfile::new(stripe))
                .add(r.rank, r.offset, secs);
        }
        self.small.accumulate(r, self.cfg.small_write_bytes);
        self.ranks = self.ranks.max(r.rank + 1);
        self.ingested += 1;
    }

    /// The block hot path: bit-identical to per-record
    /// [`Self::accumulate`] for any partitioning of the stream. One
    /// [`BinTable`] classification per record serves the shard histogram
    /// and quantile sketch, one [`tail_bin_table`] classification serves
    /// the attribution profile (no `ln` per record), and heavy-hitter
    /// updates are grouped by key run before hashing. The hitter sketch
    /// is only *read* between block calls, so hoisting it into its own
    /// pass is unobservable.
    pub fn accumulate_block(&mut self, block: &[Record]) {
        // Pass 1 — meta heavy hitters, grouped by rank run over the
        // metadata subsequence (same per-key weight sequence as
        // per-record adds).
        let mut run = std::mem::take(&mut self.run_buf);
        let mut i = 0;
        while i < block.len() {
            let r = &block[i];
            i += 1;
            if !matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
                continue;
            }
            run.clear();
            run.push(r.secs());
            let key = r.rank;
            while i < block.len() {
                let n = &block[i];
                if matches!(n.call, CallKind::MetaRead | CallKind::MetaWrite) {
                    if n.rank != key {
                        break;
                    }
                    run.push(n.secs());
                }
                i += 1;
            }
            self.hitters.add_run(key, &run);
        }
        self.run_buf = run;

        // Pass 2 — everything else, in record order.
        let ttable = tail_bin_table();
        for r in block {
            let secs = r.secs();
            let group = r.rank % self.cfg.rank_groups.max(1);
            let pos = self.shard_pos(r.call, group, r.phase);
            let bin = self.table.index_clamped(secs);
            self.shards[pos].1.accumulate_binned(r, secs, bin);
            if matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
                self.meta_secs += secs;
            }
            if r.call.is_io() {
                self.io_secs += secs;
            }
            if TAIL_KINDS.contains(&r.call) {
                let stripe = self.cfg.stripe_bytes;
                // `add_binned` debug-asserts the halving shortcut equals
                // the tail-geometry classification.
                let tail_bin = if self.tail_nested {
                    bin >> 1
                } else {
                    ttable.index_clamped(secs)
                };
                self.profiles[r.call as usize]
                    .get_or_insert_with(|| TailProfile::new(stripe))
                    .add_binned(r.rank, r.offset, secs, tail_bin);
            }
            self.small.accumulate(r, self.cfg.small_write_bytes);
            self.ranks = self.ranks.max(r.rank + 1);
            self.ingested += 1;
        }
    }

    /// Records accumulated so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// The geometry this builder accumulates under.
    pub fn config(&self) -> &SnapshotConfig {
        &self.cfg
    }

    /// Rough resident size in bytes — the budget-enforcement currency.
    /// `O(shards)` to compute; bounded by shards × bins, never by the
    /// record count (see the bounded-memory tests).
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|(_, s)| {
                std::mem::size_of::<(ShardKey, ShardStats)>()
                    + s.hist.bins() * std::mem::size_of::<u64>()
                    + s.sketch.geometry().bins()
                        * (std::mem::size_of::<u64>() + std::mem::size_of::<f64>())
            })
            .sum::<usize>()
            + self.hitters.top().len() * std::mem::size_of::<(u32, f64, u64)>()
            + self
                .profiles
                .iter()
                .flatten()
                .map(|p| {
                    let bins = pio_core::attribution::TAIL_HIST_BINS;
                    p.ranks_observed() * (bins + 2) * std::mem::size_of::<u64>()
                        + MODULI.iter().sum::<usize>() * bins * std::mem::size_of::<u64>()
                })
                .sum::<usize>()
    }

    /// The dense shard store as the keyed map [`EnsembleSnapshot`]
    /// assembly expects.
    fn shard_map(shards: Vec<(ShardKey, ShardStats)>) -> HashMap<ShardKey, ShardStats> {
        shards.into_iter().collect()
    }

    /// The kind-indexed profile array as a keyed map.
    fn profile_map(profiles: Vec<Option<TailProfile>>) -> HashMap<CallKind, TailProfile> {
        profiles
            .into_iter()
            .enumerate()
            .filter_map(|(k, p)| p.map(|p| (CallKind::ALL[k], p)))
            .collect()
    }

    /// Snapshot the current state (cloning the shard store); `dropped` is
    /// the caller's shed-record count for this stream.
    pub fn snapshot(&self, dropped: u64) -> EnsembleSnapshot {
        EnsembleSnapshot::assemble(
            vec![Self::shard_map(self.shards.clone())],
            self.hitters.clone(),
            self.meta_secs,
            self.io_secs,
            self.ranks,
            self.ingested,
            dropped,
            vec![Self::profile_map(self.profiles.clone())],
            self.small.clone(),
        )
    }

    /// Consume the builder into its final snapshot without cloning.
    pub fn into_snapshot(self, dropped: u64) -> EnsembleSnapshot {
        EnsembleSnapshot::assemble(
            vec![Self::shard_map(self.shards)],
            self.hitters,
            self.meta_secs,
            self.io_secs,
            self.ranks,
            self.ingested,
            dropped,
            vec![Self::profile_map(self.profiles)],
            self.small,
        )
    }
}

/// The merged, order-independent view of everything ingested so far.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSnapshot {
    /// Every populated shard, sorted for deterministic iteration.
    pub shards: Vec<(ShardKey, ShardStats)>,
    /// Metadata-time heavy hitters by rank.
    pub meta_hitters: HeavyHitters,
    /// Total metadata seconds (exact).
    pub meta_secs: f64,
    /// Total I/O seconds across data + metadata calls (exact).
    pub io_secs: f64,
    /// Number of ranks observed (max rank + 1).
    pub ranks: u32,
    /// Records ingested.
    pub ingested: u64,
    /// Records dropped by the overflow policy.
    pub dropped: u64,
    /// Per-call-class tail profiles for attribution, sorted by kind.
    pub profiles: Vec<(CallKind, TailProfile)>,
    /// Small-write size-class aggregate (metadata-storm detection).
    pub small: SmallWriteAgg,
}

impl EnsembleSnapshot {
    /// Assemble a snapshot from unordered shard maps (deduplicates keys by
    /// merging) plus the global scalars.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        maps: Vec<HashMap<ShardKey, ShardStats>>,
        meta_hitters: HeavyHitters,
        meta_secs: f64,
        io_secs: f64,
        ranks: u32,
        ingested: u64,
        dropped: u64,
        profile_maps: Vec<HashMap<CallKind, TailProfile>>,
        small: SmallWriteAgg,
    ) -> Self {
        let mut merged: HashMap<ShardKey, ShardStats> = HashMap::new();
        for map in maps {
            for (k, s) in map {
                match merged.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&s),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(s);
                    }
                }
            }
        }
        let mut shards: Vec<(ShardKey, ShardStats)> = merged.into_iter().collect();
        shards.sort_by_key(|(k, _)| (k.kind as u8, k.group, k.phase));
        let mut merged_profiles: HashMap<CallKind, TailProfile> = HashMap::new();
        for map in profile_maps {
            for (k, p) in map {
                match merged_profiles.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&p),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        let mut profiles: Vec<(CallKind, TailProfile)> = merged_profiles.into_iter().collect();
        profiles.sort_by_key(|(k, _)| *k as u8);
        EnsembleSnapshot {
            shards,
            meta_hitters,
            meta_secs,
            io_secs,
            ranks,
            ingested,
            dropped,
            profiles,
            small,
        }
    }

    /// An empty snapshot over `cfg`'s capacities — the identity of
    /// [`EnsembleSnapshot::merge`].
    pub fn empty(cfg: &SnapshotConfig) -> Self {
        EnsembleSnapshot::assemble(
            Vec::new(),
            HeavyHitters::new(cfg.hitter_capacity),
            0.0,
            0.0,
            0,
            0,
            0,
            Vec::new(),
            SmallWriteAgg::new(cfg.hitter_capacity),
        )
    }

    /// No records were ingested (a zero-record stream; dropped records
    /// may still have been counted).
    pub fn is_empty(&self) -> bool {
        self.ingested == 0
    }

    /// Merge another snapshot into this one — the fleet roll-up law.
    ///
    /// Equivalent to having accumulated both record streams into one
    /// snapshot: exact fields (histograms, counts, bytes) are
    /// order-independent outright; f64 accumulators merge in call order,
    /// so a roll-up that folds snapshots in a canonical order (e.g.
    /// sorted by job id) is bit-deterministic. Both snapshots must share
    /// one [`SnapshotConfig`] geometry. `ranks` merges as a maximum:
    /// tenants each number their ranks from zero, so the roll-up's rank
    /// count is the widest job, not a sum.
    pub fn merge(&mut self, other: &EnsembleSnapshot) {
        let key = |k: &ShardKey| (k.kind as u8, k.group, k.phase);
        let mut merged = Vec::with_capacity(self.shards.len().max(other.shards.len()));
        let mut a = std::mem::take(&mut self.shards).into_iter().peekable();
        let mut b = other.shards.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some((ka, _)), Some((kb, _))) => match key(ka).cmp(&key(kb)) {
                    std::cmp::Ordering::Less => merged.push(a.next().expect("peeked")),
                    std::cmp::Ordering::Greater => {
                        let (k, s) = b.next().expect("peeked");
                        merged.push((*k, s.clone()));
                    }
                    std::cmp::Ordering::Equal => {
                        let (k, mut s) = a.next().expect("peeked");
                        s.merge(&b.next().expect("peeked").1);
                        merged.push((k, s));
                    }
                },
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => {
                    let (k, s) = b.next().expect("peeked");
                    merged.push((*k, s.clone()));
                }
                (None, None) => break,
            }
        }
        self.shards = merged;
        let mut profiles = std::mem::take(&mut self.profiles);
        for (k, p) in &other.profiles {
            match profiles.iter_mut().find(|(pk, _)| pk == k) {
                Some((_, mine)) => mine.merge(p),
                None => profiles.push((*k, p.clone())),
            }
        }
        profiles.sort_by_key(|(k, _)| *k as u8);
        self.profiles = profiles;
        self.meta_hitters.merge(&other.meta_hitters);
        self.small.merge(&other.small);
        self.meta_secs += other.meta_secs;
        self.io_secs += other.io_secs;
        self.ranks = self.ranks.max(other.ranks);
        self.ingested += other.ingested;
        self.dropped += other.dropped;
    }

    /// The tail profile of one call class, if any records were profiled.
    pub fn profile_of(&self, kind: CallKind) -> Option<&TailProfile> {
        self.profiles
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| p)
    }

    /// Merge every shard of one call class, across groups and phases.
    pub fn kind_stats(&self, kind: CallKind) -> Option<ShardStats> {
        let mut acc: Option<ShardStats> = None;
        for (k, s) in &self.shards {
            if k.kind != kind {
                continue;
            }
            match &mut acc {
                Some(a) => a.merge(s),
                None => acc = Some(s.clone()),
            }
        }
        acc
    }

    /// Per-phase duration medians of one call class (phases with fewer
    /// than `min_n` samples are skipped), in phase order.
    pub fn phase_medians(&self, kind: CallKind, min_n: usize) -> Vec<(u32, f64)> {
        let mut per_phase: HashMap<u32, QuantileSketch> = HashMap::new();
        for (k, s) in &self.shards {
            if k.kind != kind {
                continue;
            }
            match per_phase.entry(k.phase) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&s.sketch),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s.sketch.clone());
                }
            }
        }
        let mut out: Vec<(u32, f64)> = per_phase
            .into_iter()
            .filter(|(_, s)| s.count() as usize >= min_n)
            .filter_map(|(p, s)| s.quantile(0.5).map(|m| (p, m)))
            .collect();
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// Rough resident size of the snapshot in bytes — the bounded-memory
    /// invariant is `O(shards × bins)`, independent of record count.
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|(_, s)| {
                std::mem::size_of::<(ShardKey, ShardStats)>()
                    + s.hist.bins() * std::mem::size_of::<u64>()
                    + s.sketch.geometry().bins()
                        * (std::mem::size_of::<u64>() + std::mem::size_of::<f64>())
            })
            .sum::<usize>()
            + self.meta_hitters.top().len() * std::mem::size_of::<(u32, f64, u64)>()
            + self
                .profiles
                .iter()
                .map(|(_, p)| {
                    // Per-rank cells plus the fixed residue tables — both
                    // bounded by ranks/moduli, never by record count.
                    let bins = pio_core::attribution::TAIL_HIST_BINS;
                    p.ranks_observed() * (bins + 2) * std::mem::size_of::<u64>()
                        + MODULI.iter().sum::<usize>() * bins * std::mem::size_of::<u64>()
                })
                .sum::<usize>()
    }

    /// A smoothed `(duration, density)` grid for mode detection, from the
    /// merged histogram of one call class.
    fn density_grid(hist: &LogHistogram) -> Vec<(f64, f64)> {
        let total = hist.in_range() as f64;
        if total == 0.0 {
            return Vec::new();
        }
        let raw: Vec<(f64, f64)> = (0..hist.bins())
            .map(|i| {
                let e = hist.bin_edges(i);
                (
                    hist.bin_center(i),
                    hist.counts()[i] as f64 / (total * (e.right - e.left)),
                )
            })
            .collect();
        // Light 1-2-1 smoothing: mode finding should not trip over
        // single-bin quantization noise.
        (0..raw.len())
            .map(|i| {
                let prev = if i > 0 { raw[i - 1].1 } else { raw[i].1 };
                let next = if i + 1 < raw.len() {
                    raw[i + 1].1
                } else {
                    raw[i].1
                };
                (raw[i].0, 0.25 * prev + 0.5 * raw[i].1 + 0.25 * next)
            })
            .collect()
    }

    /// Run the incremental detectors over the snapshot — same verdict
    /// functions as the batch `pio_core::diagnosis::diagnose_with`, fed
    /// sketch estimates instead of exact order statistics.
    pub fn diagnose(&self, th: &Thresholds) -> Vec<Finding> {
        let mut findings = Vec::new();
        for kind in [CallKind::Write, CallKind::Read] {
            let Some(stats) = self.kind_stats(kind) else {
                continue;
            };
            let n = stats.sketch.count() as usize;
            if n >= th.min_samples {
                // Harmonic-mode ladder on the merged histogram density.
                let grid = Self::density_grid(&stats.hist);
                let modes = find_modes_on_grid(&grid, th.mode_height_frac);
                if let Some(f) = harmonic_verdict(kind, &modes, th) {
                    findings.push(f);
                }
                // Right shoulder from sketch quantiles, attributed from
                // the tail profile. Arrival times are not retained in the
                // snapshot, so the periodicity (flaky-fabric) test is
                // only available on the `StreamDiagnoser` side.
                if let (Some(median), Some(p99)) =
                    (stats.sketch.quantile(0.5), stats.sketch.quantile(0.99))
                {
                    let tail = stats.sketch.fraction_above(th.tail_cut(median));
                    let attribution = self.profile_of(kind).and_then(|p| {
                        let ev = DataTailEvidence {
                            profile: p,
                            hist: &stats.hist,
                            windows: None,
                            events: None,
                        };
                        attribute_data_tail_windowed(&ev, median, th)
                    });
                    if let Some(f) = shoulder_verdict(kind, n, median, p99, tail, attribution, th) {
                        findings.push(f);
                    }
                    if let Some(p) = self.profile_of(kind) {
                        if let Some(f) = rank_tail_verdict(kind, p, th.tail_cut(median), th) {
                            findings.push(f);
                        }
                    }
                }
            }
            // Progressive per-phase deterioration.
            let medians = self.phase_medians(kind, th.min_samples.min(8));
            if let Some(f) = deterioration_verdict(kind, &medians, th) {
                findings.push(f);
            }
        }
        // Metadata call classes: a shoulder here is a stalling metadata
        // server or a serialized client, split by rank concentration.
        for kind in [CallKind::MetaRead, CallKind::MetaWrite] {
            let Some(stats) = self.kind_stats(kind) else {
                continue;
            };
            let n = stats.sketch.count() as usize;
            if n < th.min_samples {
                continue;
            }
            if let (Some(median), Some(p99)) =
                (stats.sketch.quantile(0.5), stats.sketch.quantile(0.99))
            {
                let tail = stats.sketch.fraction_above(th.tail_cut(median));
                let attribution = self
                    .profile_of(kind)
                    .map(|p| Attribution::single(attribute_meta_tail(p, th)));
                if let Some(f) = shoulder_verdict(kind, n, median, p99, tail, attribution, th) {
                    findings.push(f);
                }
            }
        }
        // Serialized metadata rank from the heavy-hitter sketch.
        let per_rank: Vec<(u32, f64, usize)> = self
            .meta_hitters
            .top()
            .into_iter()
            .map(|h| (h.key, h.weight, h.ops as usize))
            .collect();
        if let Some(f) =
            serialized_meta_verdict(&per_rank, self.meta_secs, self.ranks, self.io_secs, th)
        {
            findings.push(f);
        }
        // Small-write metadata storm from the size-class aggregate.
        if let Some(f) = metadata_shoulder_verdict(
            self.small.ops,
            self.small.secs,
            self.small.write_secs,
            self.small.top(),
            self.small.span_secs(),
            th,
        ) {
            findings.push(f);
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, call: CallKind, bytes: u64, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: 0,
            end_ns: (dur * 1e9) as u64,
            phase,
        }
    }

    fn snapshot_of(records: &[Record], groups: u32) -> EnsembleSnapshot {
        let th = Thresholds::default();
        let mut map: HashMap<ShardKey, ShardStats> = HashMap::new();
        let mut hitters = HeavyHitters::new(8);
        let mut profiles: HashMap<CallKind, TailProfile> = HashMap::new();
        let mut small = SmallWriteAgg::new(8);
        let (mut meta_secs, mut io_secs) = (0.0, 0.0);
        let mut ranks = 0;
        for r in records {
            let key = ShardKey {
                kind: r.call,
                group: r.rank % groups,
                phase: r.phase,
            };
            map.entry(key)
                .or_insert_with(|| ShardStats::new(1e-6, 1e3, 96))
                .accumulate(r);
            if matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
                hitters.add(r.rank, r.secs());
                meta_secs += r.secs();
            }
            if r.call.is_io() {
                io_secs += r.secs();
            }
            if pio_core::attribution::TAIL_KINDS.contains(&r.call) {
                profiles
                    .entry(r.call)
                    .or_insert_with(|| TailProfile::new(th.stripe_bytes))
                    .add(r.rank, r.offset, r.secs());
            }
            small.accumulate(r, th.small_write_bytes);
            ranks = ranks.max(r.rank + 1);
        }
        EnsembleSnapshot::assemble(
            vec![map],
            hitters,
            meta_secs,
            io_secs,
            ranks,
            records.len() as u64,
            0,
            vec![profiles],
            small,
        )
    }

    #[test]
    fn shard_merge_equals_union() {
        let recs: Vec<Record> = (0..200)
            .map(|i| rec(i % 8, CallKind::Read, 1 << 20, 0.01 * (i + 1) as f64, 0))
            .collect();
        let mut a = ShardStats::new(1e-6, 1e3, 96);
        let mut b = a.clone();
        let mut whole = a.clone();
        for (i, r) in recs.iter().enumerate() {
            if i % 2 == 0 {
                a.accumulate(r);
            } else {
                b.accumulate(r);
            }
            whole.accumulate(r);
        }
        a.merge(&b);
        assert_eq!(a.hist, whole.hist);
        assert_eq!(a.sketch.count(), whole.sketch.count());
        assert_eq!(a.ops, whole.ops);
        assert_eq!(a.bytes, whole.bytes);
        assert!((a.secs - whole.secs).abs() < 1e-9);
        assert!((a.moments.mean().unwrap() - whole.moments.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn snapshot_flags_right_shoulder() {
        let mut recs = Vec::new();
        for i in 0..120u32 {
            recs.push(rec(
                i % 16,
                CallKind::Read,
                1 << 20,
                10.0 + (i % 5) as f64 * 0.1,
                0,
            ));
        }
        for (i, d) in [(0u32, 90.0), (1, 200.0), (2, 450.0), (3, 120.0)] {
            recs.push(rec(i, CallKind::Read, 1 << 20, d, 0));
        }
        let snap = snapshot_of(&recs, 4);
        let findings = snap.diagnose(&Thresholds::default());
        assert!(
            findings.iter().any(|f| matches!(
                f,
                Finding::RightShoulder {
                    kind: CallKind::Read,
                    ..
                }
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn healthy_snapshot_is_clean() {
        let recs: Vec<Record> = (0..256u32)
            .map(|i| {
                rec(
                    i % 32,
                    CallKind::Write,
                    1 << 20,
                    5.0 + (i % 7) as f64 * 0.05,
                    i / 64,
                )
            })
            .collect();
        let snap = snapshot_of(&recs, 8);
        let findings = snap.diagnose(&Thresholds::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn snapshot_flags_deterioration_across_phases() {
        let mut recs = Vec::new();
        for (p, m) in [10.0, 10.0, 13.0, 21.0, 36.0, 60.0].iter().enumerate() {
            for i in 0..48u32 {
                recs.push(rec(
                    i % 16,
                    CallKind::Read,
                    1 << 20,
                    m + (i % 3) as f64 * 0.1,
                    p as u32,
                ));
            }
        }
        let snap = snapshot_of(&recs, 4);
        let findings = snap.diagnose(&Thresholds::default());
        assert!(
            findings.iter().any(|f| matches!(
                f,
                Finding::ProgressiveDeterioration {
                    kind: CallKind::Read,
                    ..
                }
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn snapshot_flags_serialized_metadata_rank() {
        let mut recs = Vec::new();
        for i in 0..500 {
            recs.push(rec(0, CallKind::MetaWrite, 2048, 0.3, (i / 250) as u32));
        }
        for i in 0..256u32 {
            recs.push(rec(i, CallKind::Write, 1 << 20, 1.0, 0));
        }
        let snap = snapshot_of(&recs, 8);
        let findings = snap.diagnose(&Thresholds::default());
        match findings
            .iter()
            .find(|f| matches!(f, Finding::SerializedRank { .. }))
        {
            Some(Finding::SerializedRank {
                rank,
                share,
                metadata,
            }) => {
                assert_eq!(*rank, 0);
                assert!(*share > 0.9);
                assert!(*metadata);
            }
            other => panic!("expected serialized rank, got {other:?} in {findings:?}"),
        }
    }

    fn build(records: &[Record]) -> SnapshotBuilder {
        let mut b = SnapshotBuilder::new(SnapshotConfig::default());
        for r in records {
            b.accumulate(r);
        }
        b
    }

    /// Canonical roll-up: fold per-job snapshots in job-id order — the
    /// fleet's merge discipline.
    fn rollup(jobs: &[(u64, EnsembleSnapshot)]) -> EnsembleSnapshot {
        let mut sorted: Vec<&(u64, EnsembleSnapshot)> = jobs.iter().collect();
        sorted.sort_by_key(|(id, _)| *id);
        let mut acc = EnsembleSnapshot::empty(&SnapshotConfig::default());
        for (_, s) in sorted {
            acc.merge(s);
        }
        acc
    }

    #[test]
    fn builder_snapshot_matches_assemble_reference() {
        let recs: Vec<Record> = (0..600u32)
            .map(|i| {
                rec(
                    i % 16,
                    CallKind::ALL[(i % 12) as usize],
                    (i as u64 % 5) << 18,
                    1e-3 * (1 + i % 311) as f64,
                    i / 150,
                )
            })
            .collect();
        let snap = build(&recs).into_snapshot(0);
        assert_eq!(snap.ingested, 600);
        assert_eq!(snap.ranks, 16);
        // The pipeline's workers use the same builder, so sequential
        // accumulation and the concurrent path share one code path now;
        // spot-check a merged kind against a fresh reference builder.
        let reference = build(&recs).snapshot(0);
        assert_eq!(snap, reference);
    }

    /// The block path must produce a byte-identical snapshot for every
    /// partitioning of the same stream — including interleaved phases
    /// (late arrivals) and metadata runs.
    #[test]
    fn accumulate_block_matches_per_record_accumulate() {
        let recs: Vec<Record> = (0..1200u32)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(17);
                let mut r = rec(
                    (x % 24) as u32,
                    CallKind::ALL[(x % 12) as usize],
                    ((x >> 8) % 5) << 11,
                    1e-4 * (1 + (x >> 16) % 40_010) as f64,
                    ((x >> 32) % 4) as u32,
                );
                r.offset = (x >> 3) % (1 << 30);
                r.start_ns = (x >> 5) % 1_000_000_000;
                r.end_ns = r.start_ns + ((x >> 16) % 40_010) * 100_000;
                r
            })
            .collect();
        let reference = build(&recs).into_snapshot(0);
        for block in [1usize, 3, 17, 256, recs.len()] {
            let mut b = SnapshotBuilder::new(SnapshotConfig::default());
            for c in recs.chunks(block) {
                b.accumulate_block(c);
            }
            assert_eq!(b.ingested(), reference.ingested);
            assert_eq!(b.into_snapshot(0), reference, "block size {block} diverged");
        }
        // Mixed per-record and block accumulation also agrees.
        let mut mixed = SnapshotBuilder::new(SnapshotConfig::default());
        let (head, tail) = recs.split_at(311);
        for r in head {
            mixed.accumulate(r);
        }
        mixed.accumulate_block(tail);
        assert_eq!(mixed.into_snapshot(0), reference);
    }

    #[test]
    fn snapshot_merge_equals_union() {
        let recs: Vec<Record> = (0..900u32)
            .map(|i| {
                rec(
                    i % 24,
                    CallKind::ALL[(i % 12) as usize],
                    1 << 18,
                    1e-3 * (1 + i % 97) as f64,
                    i / 300,
                )
            })
            .collect();
        let whole = build(&recs).into_snapshot(0);
        let (a, b) = recs.split_at(411);
        let mut merged = build(a).into_snapshot(0);
        merged.merge(&build(b).into_snapshot(0));
        // Exact components are bit-identical; f64 accumulators agree to
        // rounding (different grouping of the same sums).
        assert_eq!(merged.ingested, whole.ingested);
        assert_eq!(merged.ranks, whole.ranks);
        assert_eq!(merged.shards.len(), whole.shards.len());
        for ((ka, sa), (kb, sb)) in merged.shards.iter().zip(&whole.shards) {
            assert_eq!(ka, kb);
            assert_eq!(sa.hist, sb.hist);
            assert_eq!(sa.ops, sb.ops);
            assert_eq!(sa.bytes, sb.bytes);
            assert!((sa.secs - sb.secs).abs() <= 1e-9 * sb.secs.abs().max(1.0));
        }
        assert!((merged.meta_secs - whole.meta_secs).abs() < 1e-9);
        assert!((merged.io_secs - whole.io_secs).abs() < 1e-9);
        assert_eq!(merged.small.ops, whole.small.ops);
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let recs: Vec<Record> = (0..300u32)
            .map(|i| {
                rec(
                    i % 8,
                    CallKind::Read,
                    1 << 20,
                    0.01 * (1 + i % 40) as f64,
                    0,
                )
            })
            .collect();
        let snap = build(&recs).into_snapshot(3);
        let mut left = EnsembleSnapshot::empty(&SnapshotConfig::default());
        left.merge(&snap);
        assert_eq!(left, snap);
        let mut right = snap.clone();
        right.merge(&EnsembleSnapshot::empty(&SnapshotConfig::default()));
        assert_eq!(right, snap);
        assert!(EnsembleSnapshot::empty(&SnapshotConfig::default()).is_empty());
        assert!(!snap.is_empty());
    }

    mod rollup_props {
        use super::*;
        use proptest::prelude::*;

        /// Deterministic per-job record streams: job `j` gets `len`
        /// records shaped by the generator parameters.
        fn job_records(j: u64, len: usize) -> Vec<Record> {
            (0..len as u64)
                .map(|i| {
                    let x = i
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(j * 97 + 13);
                    rec(
                        (x % 24) as u32,
                        CallKind::ALL[(x % 12) as usize],
                        ((x >> 8) % 5) << 18,
                        1e-4 * (1 + (x >> 16) % 4001) as f64,
                        ((x >> 32) % 4) as u32,
                    )
                })
                .collect()
        }

        /// Fisher–Yates with an inline LCG: a deterministic permutation
        /// of the job list from one u64.
        fn permute<T>(items: &mut [T], mut seed: u64) {
            for i in (1..items.len()).rev() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                items.swap(i, (seed >> 33) as usize % (i + 1));
            }
        }

        proptest! {
            /// Satellite: fleet roll-up merges of per-job snapshots are
            /// order-invariant — the canonical (job-id-sorted) fold is
            /// bit-identical no matter how the snapshots were supplied.
            #[test]
            fn rollup_is_supply_order_invariant(
                n_jobs in 2usize..7,
                lens in proptest::collection::vec(1usize..120, 6),
                perm_seed in 0u64..u64::MAX,
            ) {
                let mut jobs: Vec<(u64, EnsembleSnapshot)> = (0..n_jobs)
                    .map(|j| {
                        let recs = job_records(j as u64, lens[j % lens.len()]);
                        (j as u64, build(&recs).into_snapshot(0))
                    })
                    .collect();
                let canonical = rollup(&jobs);
                permute(&mut jobs, perm_seed);
                prop_assert_eq!(rollup(&jobs), canonical);
            }

            /// Satellite: the roll-up is shard-count-invariant — splitting
            /// one job's stream across any number of sub-accumulators and
            /// merging leaves every exact component identical (and the
            /// f64 accumulators equal to rounding).
            #[test]
            fn rollup_is_shard_count_invariant(
                len in 50usize..400,
                splits in 1usize..6,
            ) {
                let recs = job_records(7, len);
                let whole = build(&recs).into_snapshot(0);
                let chunk = len.div_ceil(splits);
                let mut merged = EnsembleSnapshot::empty(&SnapshotConfig::default());
                for part in recs.chunks(chunk) {
                    merged.merge(&build(part).into_snapshot(0));
                }
                prop_assert_eq!(merged.ingested, whole.ingested);
                prop_assert_eq!(merged.ranks, whole.ranks);
                prop_assert_eq!(merged.shards.len(), whole.shards.len());
                for ((ka, sa), (kb, sb)) in merged.shards.iter().zip(&whole.shards) {
                    prop_assert_eq!(ka, kb);
                    prop_assert_eq!(&sa.hist, &sb.hist);
                    prop_assert_eq!(sa.ops, sb.ops);
                    prop_assert_eq!(sa.bytes, sb.bytes);
                    prop_assert!((sa.secs - sb.secs).abs() <= 1e-9 * sb.secs.abs().max(1.0));
                }
                prop_assert_eq!(merged.small.ops, whole.small.ops);
                prop_assert!((merged.meta_secs - whole.meta_secs).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn snapshot_memory_is_bounded_by_shards_not_records() {
        let few: Vec<Record> = (0..100u32)
            .map(|i| rec(i % 8, CallKind::Read, 1 << 20, 1.0, 0))
            .collect();
        let many: Vec<Record> = (0..50_000u32)
            .map(|i| {
                rec(
                    i % 8,
                    CallKind::Read,
                    1 << 20,
                    1.0 + (i % 100) as f64 * 0.01,
                    0,
                )
            })
            .collect();
        let (a, b) = (snapshot_of(&few, 4), snapshot_of(&many, 4));
        assert_eq!(a.approx_bytes(), b.approx_bytes());
        assert_eq!(b.ingested, 50_000);
    }
}
