//! # pio-ingest — streaming trace ingestion and online ensemble diagnosis
//!
//! The paper closes by proposing that its ensemble methodology move from
//! post-mortem analysis to *online* monitoring: histograms and summary
//! statistics are small and mergeable, so they can be maintained while
//! the job runs and pathologies flagged before it ends. This crate is
//! that pipeline:
//!
//! * [`sketch`] — mergeable building blocks: a log-bucketed
//!   [`sketch::QuantileSketch`], a weighted Space-Saving
//!   [`sketch::HeavyHitters`] sketch, and the shared
//!   [`sketch::OnlineMoments`] / log-histogram from
//!   `pio-des`. Merging two sketches equals accumulating the
//!   concatenated stream, which makes sharding safe.
//! * [`shard`] — per-`(call kind, rank group, phase)` accumulators and
//!   the merged [`shard::EnsembleSnapshot`], whose
//!   memory is O(shards × bins) regardless of event count.
//! * [`pipeline`] — the concurrent bounded-memory
//!   [`pipeline::IngestPipeline`]: producers fan records
//!   over bounded channels (explicit backpressure: block or
//!   drop-and-count) into worker-owned shards.
//! * [`diagnose`] — the [`diagnose::StreamDiagnoser`]:
//!   incremental versions of the `pio-core` detectors over tumbling
//!   windows and barrier boundaries, raising the paper's findings
//!   mid-run through the same verdict functions as the batch path.
//! * [`reader`] — incremental trace reading through the `TraceCodec`
//!   registry (JSONL via the hand-rolled fast parser, binary ptb / ptb2
//!   via the block readers, format sniffed from the file): diagnose an
//!   on-disk trace in constant memory via any
//!   [`RecordSink`](pio_trace::RecordSink), or feed every pipeline
//!   worker concurrently with [`reader::stream_file_parallel`].
//! * [`tenant`] — multi-stream accounting: a per-job
//!   [`tenant::TenantMeter`] enforcing a resident-memory budget with
//!   the pipeline's overflow-policy semantics, for fleet-style services
//!   that ingest many jobs at once (`pio-fleetd`).

pub mod diagnose;
pub mod pipeline;
pub mod reader;
pub mod shard;
pub mod sketch;
pub mod tenant;

pub use diagnose::{DiagnoserConfig, StreamDiagnoser, TimedFinding};
pub use pipeline::{IngestConfig, IngestPipeline, IngestSink, OverflowPolicy};
pub use reader::{
    stream_file, stream_file_parallel, stream_jsonl, stream_ptb, stream_ptb2, stream_ptb_parallel,
};
pub use shard::{EnsembleSnapshot, ShardKey, ShardStats, SnapshotBuilder, SnapshotConfig};
pub use sketch::{HeavyHitters, OnlineMoments, QuantileSketch};
pub use tenant::{Admission, TenantMeter};
