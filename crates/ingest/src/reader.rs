//! Incremental trace reading: one record (JSONL) or one block (ptb /
//! ptb2) in memory at a time.
//!
//! All streaming goes through the [`TraceCodec`] registry in
//! `pio_trace::codec`: each codec decodes incrementally into a
//! [`RecordSink`] without ever materializing a
//! [`Trace`](pio_trace::Trace), so a multi-gigabyte trace can be
//! diagnosed in constant memory. [`stream_file`] sniffs the format from
//! the file's leading bytes so callers need not care;
//! [`stream_jsonl`] / [`stream_ptb`] / [`stream_ptb2`] pin a format for
//! in-memory readers.
//!
//! Barrier boundaries are synthesized from the records' phase indices:
//! when the stream advances from phase `p` to `p+1`, every phase up to
//! `p` is complete and the sink's [`phase_end`](RecordSink::phase_end)
//! fires for it (see `pio_trace::codec::PhaseTracker`).
//!
//! [`stream_file_parallel`] feeds every worker of an [`IngestPipeline`]
//! concurrently from one trace file and still produces a bit-identical
//! snapshot: each reader thread decodes the stream independently and
//! forwards only the records its worker owns (`rank % workers`), so
//! every worker observes exactly the file-order subsequence it would
//! have received from a single sequential producer — same records, same
//! order, same f64 accumulation order.

use crate::pipeline::IngestPipeline;
use pio_trace::codec::{codec_for, sniff_codec, TraceCodec};
use pio_trace::io::TraceFormat;
use pio_trace::{RecordSink, TraceMeta};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Stream a JSONL trace into `sink`. Returns the trace metadata and the
/// number of records streamed. Calls `sink.finish()` at end of stream.
pub fn stream_jsonl<R: BufRead, S: RecordSink>(
    mut reader: R,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    codec_for(TraceFormat::Jsonl).stream(&mut reader, sink)
}

/// Stream a binary ptb (v1) trace into `sink` (same contract as
/// [`stream_jsonl`]: phase boundaries synthesized, `finish()` called).
pub fn stream_ptb<R: Read, S: RecordSink>(
    reader: R,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    codec_for(TraceFormat::Ptb).stream(&mut BufReader::new(reader), sink)
}

/// Stream a columnar ptb2 trace into `sink` (same contract as
/// [`stream_jsonl`]).
pub fn stream_ptb2<R: Read, S: RecordSink>(
    reader: R,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    codec_for(TraceFormat::Ptb2).stream(&mut BufReader::new(reader), sink)
}

/// Stream a trace file into `sink`, sniffing the format from the file's
/// leading bytes (see [`TraceFormat::sniff`]).
pub fn stream_file<S: RecordSink>(
    path: &std::path::Path,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    let codec = sniff_path(path)?;
    let f = std::fs::File::open(path)?;
    codec.stream(&mut BufReader::new(f), sink)
}

/// Sniff a file's codec from its leading bytes.
fn sniff_path(path: &Path) -> std::io::Result<&'static dyn TraceCodec> {
    let mut head = [0u8; 8];
    let mut f = std::fs::File::open(path)?;
    let mut n = 0;
    while n < head.len() {
        let got = f.read(&mut head[n..])?;
        if got == 0 {
            break;
        }
        n += got;
    }
    sniff_codec(&head[..n])
}

/// A sink adapter that forwards only the records one pipeline worker
/// owns (`rank % workers == own`).
struct RankFilter<S> {
    inner: S,
    workers: usize,
    own: usize,
}

impl<S: RecordSink> RecordSink for RankFilter<S> {
    fn push(&mut self, r: &pio_trace::Record) {
        if r.rank as usize % self.workers == self.own {
            self.inner.push(r);
        }
    }

    /// Forward maximal owned runs of a decoded block in one call; the
    /// inner sink sees the same record subsequence as per-record
    /// filtering, without a virtual push per record.
    fn push_block(&mut self, block: &[pio_trace::Record]) {
        let mut start = 0;
        while start < block.len() {
            if block[start].rank as usize % self.workers != self.own {
                start += 1;
                continue;
            }
            let mut end = start + 1;
            while end < block.len() && block[end].rank as usize % self.workers == self.own {
                end += 1;
            }
            self.inner.push_block(&block[start..end]);
            start = end;
        }
    }

    // phase_end is dropped: the pipeline's sink ignores phase marks, and
    // forwarding them from W concurrent readers would duplicate them.
    fn finish(&mut self) {}
}

/// Feed a trace file to every worker of `pipeline` concurrently,
/// whatever its format.
///
/// One reader thread per pipeline worker scans the whole stream (decode
/// is cheap; parsing the file once per worker costs far less than
/// serializing all records through one producer) and pushes only the
/// records its worker owns, preserving file order per worker — so the
/// resulting snapshot is bit-identical to a sequential [`stream_file`]
/// into `pipeline.sink()`. Returns the metadata and the total record
/// count of the file.
///
/// Phase boundaries are not synthesized (the pipeline's sink ignores
/// them); use [`stream_file`] with a composite sink when an online
/// diagnoser also needs the stream.
pub fn stream_file_parallel(
    path: &Path,
    pipeline: &IngestPipeline,
) -> std::io::Result<(TraceMeta, u64)> {
    let codec = sniff_path(path)?;
    let workers = pipeline.workers();
    let mut results: Vec<std::io::Result<(TraceMeta, u64)>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let sink = pipeline.sink();
                s.spawn(move |_| -> std::io::Result<(TraceMeta, u64)> {
                    let f = std::fs::File::open(path)?;
                    let mut filter = RankFilter {
                        inner: sink,
                        workers,
                        own: w,
                    };
                    let out = codec.stream(&mut BufReader::new(f), &mut filter)?;
                    filter.inner.flush();
                    Ok(out)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("trace reader thread panicked"));
        }
    })
    .expect("reader scope");
    // Every thread read the same file; return the first result (or the
    // first error).
    let mut out = None;
    for r in results {
        let v = r?;
        out.get_or_insert(v);
    }
    Ok(out.expect("at least one reader thread"))
}

/// Legacy name for [`stream_file_parallel`], kept for callers that
/// predate format-generic parallel decode.
pub fn stream_ptb_parallel(
    path: &Path,
    pipeline: &IngestPipeline,
) -> std::io::Result<(TraceMeta, u64)> {
    stream_file_parallel(path, pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::IngestConfig;
    use pio_trace::io::write_jsonl;
    use pio_trace::ptb::write_ptb;
    use pio_trace::ptb2::write_ptb2;
    use pio_trace::{CallKind, Record, Trace};

    fn sample(phases: u32, per_phase: u32) -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "stream".into(),
            platform: "test".into(),
            ranks: 8,
            seed: 1,
        });
        for p in 0..phases {
            for i in 0..per_phase {
                t.push(Record {
                    rank: i % 8,
                    call: CallKind::Read,
                    fd: 3,
                    offset: 0,
                    bytes: 4096,
                    start_ns: 0,
                    end_ns: 1_000_000,
                    phase: p,
                });
            }
        }
        t
    }

    /// Sink that logs the event sequence for ordering assertions.
    #[derive(Default)]
    struct EventLog {
        pushes: u64,
        phase_ends: Vec<u32>,
        finished: bool,
    }

    impl RecordSink for EventLog {
        fn push(&mut self, _r: &Record) {
            self.pushes += 1;
        }
        fn phase_end(&mut self, phase: u32) {
            self.phase_ends.push(phase);
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn streaming_matches_batch_read() {
        let t = sample(3, 10);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();

        let mut collected = Trace::new(t.meta.clone());
        let (meta, n) = stream_jsonl(std::io::Cursor::new(&buf), &mut collected).unwrap();
        assert_eq!(meta, t.meta);
        assert_eq!(n, 30);
        assert_eq!(collected.records, t.records);
    }

    #[test]
    fn binary_streaming_matches_jsonl_streaming() {
        let t = sample(3, 10);
        let mut jsonl = Vec::new();
        write_jsonl(&t, &mut jsonl).unwrap();
        let mut ptb = Vec::new();
        write_ptb(&t, &mut ptb).unwrap();
        let mut ptb2 = Vec::new();
        write_ptb2(&t, &mut ptb2).unwrap();

        let mut from_jsonl = EventLog::default();
        let (m1, n1) = stream_jsonl(std::io::Cursor::new(&jsonl), &mut from_jsonl).unwrap();
        let check = |m2: TraceMeta, n2: u64, from_bin: &EventLog| {
            assert_eq!(m1, m2);
            assert_eq!(n1, n2);
            assert_eq!(from_jsonl.pushes, from_bin.pushes);
            assert_eq!(from_jsonl.phase_ends, from_bin.phase_ends);
            assert!(from_bin.finished);
        };
        let mut from_ptb = EventLog::default();
        let (m2, n2) = stream_ptb(std::io::Cursor::new(&ptb), &mut from_ptb).unwrap();
        check(m2, n2, &from_ptb);
        let mut from_ptb2 = EventLog::default();
        let (m2, n2) = stream_ptb2(std::io::Cursor::new(&ptb2), &mut from_ptb2).unwrap();
        check(m2, n2, &from_ptb2);

        let mut collected = Trace::new(t.meta.clone());
        stream_ptb2(std::io::Cursor::new(&ptb2), &mut collected).unwrap();
        assert_eq!(collected.records, t.records);
    }

    #[test]
    fn stream_file_sniffs_every_format() {
        let dir = std::env::temp_dir().join("pio_ingest_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample(2, 6);
        for format in TraceFormat::ALL {
            let p = dir.join(format!("t.{}", format.name()));
            pio_trace::io::save_as(&t, &p, format).unwrap();
            let mut log = EventLog::default();
            let (meta, n) = stream_file(&p, &mut log).unwrap();
            assert_eq!(meta, t.meta, "{p:?}");
            assert_eq!(n, 12, "{p:?}");
            assert_eq!(log.phase_ends, vec![0, 1], "{p:?}");
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn parallel_ingest_is_bit_identical_to_sequential_for_every_format() {
        let dir = std::env::temp_dir().join("pio_ingest_parallel_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Uneven durations so f64 accumulation order matters.
        let mut t = Trace::new(TraceMeta {
            experiment: "par".into(),
            platform: "test".into(),
            ranks: 16,
            seed: 3,
        });
        for i in 0..10_000u64 {
            t.push(Record {
                rank: (i % 16) as u32,
                call: CallKind::ALL[(i % 12) as usize],
                fd: 3,
                offset: i << 12,
                bytes: 4096 + i % 999,
                start_ns: i * 1000,
                end_ns: i * 1000 + 1 + (i * i) % 77_777,
                phase: (i / 2500) as u32,
            });
        }
        let cfg = IngestConfig::default();
        let sequential = {
            let path = dir.join("par.ptb");
            pio_trace::io::save_as(&t, &path, TraceFormat::Ptb).unwrap();
            let pipeline = IngestPipeline::new(cfg.clone());
            let mut sink = pipeline.sink();
            let (_, n) = stream_file(&path, &mut sink).unwrap();
            assert_eq!(n, 10_000);
            drop(sink);
            std::fs::remove_file(&path).ok();
            pipeline.finish()
        };
        for format in TraceFormat::ALL {
            let path = dir.join(format!("par.{}", format.name()));
            pio_trace::io::save_as(&t, &path, format).unwrap();
            let pipeline = IngestPipeline::new(cfg.clone());
            let (meta, n) = stream_file_parallel(&path, &pipeline).unwrap();
            assert_eq!(meta, t.meta);
            assert_eq!(n, 10_000);
            assert_eq!(sequential, pipeline.finish(), "{}", format.name());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn phase_boundaries_are_synthesized_in_order() {
        let t = sample(3, 5);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let mut log = EventLog::default();
        stream_jsonl(std::io::Cursor::new(&buf), &mut log).unwrap();
        assert_eq!(log.pushes, 15);
        assert_eq!(log.phase_ends, vec![0, 1, 2]);
        assert!(log.finished);
    }

    #[test]
    fn empty_stream_is_an_error() {
        let mut log = EventLog::default();
        let err = stream_jsonl(std::io::Cursor::new(Vec::new()), &mut log).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn meta_only_stream_finishes_cleanly() {
        let t = sample(0, 0);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let mut log = EventLog::default();
        let (_, n) = stream_jsonl(std::io::Cursor::new(&buf), &mut log).unwrap();
        assert_eq!(n, 0);
        assert!(log.phase_ends.is_empty());
        assert!(log.finished);
    }
}
