//! Incremental JSONL trace reading: one record in memory at a time.
//!
//! [`stream_jsonl`] consumes the same on-disk format as
//! `pio_trace::io::read_jsonl` (metadata line, then one record per line)
//! but never materializes a [`Trace`](pio_trace::Trace): each record is
//! parsed and handed to a [`RecordSink`], so a multi-gigabyte trace can
//! be diagnosed in constant memory. Barrier boundaries are synthesized
//! from the records' phase indices: when the stream advances from phase
//! `p` to `p+1`, every phase up to `p` is complete and the sink's
//! [`phase_end`](RecordSink::phase_end) fires for it.

use pio_trace::{Record, RecordSink, TraceMeta};
use std::io::BufRead;

/// Stream a JSONL trace into `sink`. Returns the trace metadata and the
/// number of records streamed. Calls `sink.finish()` at end of stream.
pub fn stream_jsonl<R: BufRead, S: RecordSink>(
    reader: R,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    let mut lines = reader.lines();
    let meta: TraceMeta = match lines.next() {
        Some(line) => serde_json::from_str(&line?)?,
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "empty trace stream",
            ))
        }
    };
    let mut count = 0u64;
    let mut phase = 0u32;
    let mut saw_record = false;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: Record = serde_json::from_str(&line)?;
        // The stream completes phases in order; a phase jump means every
        // earlier phase has ended.
        if saw_record && rec.phase > phase {
            for p in phase..rec.phase {
                sink.phase_end(p);
            }
        }
        phase = phase.max(rec.phase);
        saw_record = true;
        sink.push(&rec);
        count += 1;
    }
    if saw_record {
        sink.phase_end(phase);
    }
    sink.finish();
    Ok((meta, count))
}

/// Stream a JSONL trace file into `sink` (see [`stream_jsonl`]).
pub fn stream_file<S: RecordSink>(
    path: &std::path::Path,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    let f = std::fs::File::open(path)?;
    stream_jsonl(std::io::BufReader::new(f), sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::io::write_jsonl;
    use pio_trace::{CallKind, Trace};

    fn sample(phases: u32, per_phase: u32) -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "stream".into(),
            platform: "test".into(),
            ranks: 8,
            seed: 1,
        });
        for p in 0..phases {
            for i in 0..per_phase {
                t.push(Record {
                    rank: i % 8,
                    call: CallKind::Read,
                    fd: 3,
                    offset: 0,
                    bytes: 4096,
                    start_ns: 0,
                    end_ns: 1_000_000,
                    phase: p,
                });
            }
        }
        t
    }

    /// Sink that logs the event sequence for ordering assertions.
    #[derive(Default)]
    struct EventLog {
        pushes: u64,
        phase_ends: Vec<u32>,
        finished: bool,
    }

    impl RecordSink for EventLog {
        fn push(&mut self, _r: &Record) {
            self.pushes += 1;
        }
        fn phase_end(&mut self, phase: u32) {
            self.phase_ends.push(phase);
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn streaming_matches_batch_read() {
        let t = sample(3, 10);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();

        let mut collected = Trace::new(t.meta.clone());
        let (meta, n) = stream_jsonl(std::io::Cursor::new(&buf), &mut collected).unwrap();
        assert_eq!(meta, t.meta);
        assert_eq!(n, 30);
        assert_eq!(collected.records, t.records);
    }

    #[test]
    fn phase_boundaries_are_synthesized_in_order() {
        let t = sample(3, 5);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let mut log = EventLog::default();
        stream_jsonl(std::io::Cursor::new(&buf), &mut log).unwrap();
        assert_eq!(log.pushes, 15);
        assert_eq!(log.phase_ends, vec![0, 1, 2]);
        assert!(log.finished);
    }

    #[test]
    fn empty_stream_is_an_error() {
        let mut log = EventLog::default();
        let err = stream_jsonl(std::io::Cursor::new(Vec::new()), &mut log).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn meta_only_stream_finishes_cleanly() {
        let t = sample(0, 0);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let mut log = EventLog::default();
        let (_, n) = stream_jsonl(std::io::Cursor::new(&buf), &mut log).unwrap();
        assert_eq!(n, 0);
        assert!(log.phase_ends.is_empty());
        assert!(log.finished);
    }
}
