//! Incremental trace reading: one record (JSONL) or one block (ptb) in
//! memory at a time.
//!
//! [`stream_jsonl`] consumes the same on-disk format as
//! `pio_trace::io::read_jsonl` (metadata line, then one record per line)
//! but never materializes a [`Trace`](pio_trace::Trace): each record is
//! parsed — through the hand-rolled scanner in `pio_trace::jsonl`, with
//! `serde_json` as the strict fallback — and handed to a [`RecordSink`],
//! so a multi-gigabyte trace can be diagnosed in constant memory.
//! [`stream_ptb`] is the binary-format equivalent, decoding CRC-checked
//! blocks out of reused buffers; [`stream_file`] sniffs the format from
//! the file's leading bytes so callers need not care.
//!
//! Barrier boundaries are synthesized from the records' phase indices:
//! when the stream advances from phase `p` to `p+1`, every phase up to
//! `p` is complete and the sink's [`phase_end`](RecordSink::phase_end)
//! fires for it.
//!
//! [`stream_ptb_parallel`] feeds every worker of an
//! [`IngestPipeline`] concurrently from one ptb
//! file and still produces a bit-identical snapshot: each reader thread
//! decodes the block stream independently and forwards only the records
//! its worker owns (`rank % workers`), so every worker observes exactly
//! the file-order subsequence it would have received from a single
//! sequential producer — same records, same order, same f64
//! accumulation order.

use crate::pipeline::IngestPipeline;
use pio_trace::io::TraceFormat;
use pio_trace::ptb::PtbBlockReader;
use pio_trace::{Record, RecordSink, TraceMeta};
use std::io::{BufRead, Read};
use std::path::Path;

/// Tracks phase progression and synthesizes `phase_end` events.
struct PhaseTracker {
    phase: u32,
    saw_record: bool,
}

impl PhaseTracker {
    fn new() -> Self {
        PhaseTracker {
            phase: 0,
            saw_record: false,
        }
    }

    fn on_record<S: RecordSink>(&mut self, rec: &Record, sink: &mut S) {
        // The stream completes phases in order; a phase jump means every
        // earlier phase has ended.
        if self.saw_record && rec.phase > self.phase {
            for p in self.phase..rec.phase {
                sink.phase_end(p);
            }
        }
        self.phase = self.phase.max(rec.phase);
        self.saw_record = true;
    }

    fn finish<S: RecordSink>(&mut self, sink: &mut S) {
        if self.saw_record {
            sink.phase_end(self.phase);
        }
        sink.finish();
    }
}

/// Stream a JSONL trace into `sink`. Returns the trace metadata and the
/// number of records streamed. Calls `sink.finish()` at end of stream.
pub fn stream_jsonl<R: BufRead, S: RecordSink>(
    mut reader: R,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    let mut buf = String::new();
    if reader.read_line(&mut buf)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "empty trace stream",
        ));
    }
    let meta: TraceMeta = serde_json::from_str(buf.trim_end())?;
    let mut count = 0u64;
    let mut phases = PhaseTracker::new();
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        let rec = pio_trace::jsonl::parse_record(line)?;
        phases.on_record(&rec, sink);
        sink.push(&rec);
        count += 1;
    }
    phases.finish(sink);
    Ok((meta, count))
}

/// Stream a binary ptb trace into `sink` (same contract as
/// [`stream_jsonl`]: phase boundaries synthesized, `finish()` called).
pub fn stream_ptb<R: Read, S: RecordSink>(
    reader: R,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    let mut dec = PtbBlockReader::new(reader)?;
    let meta = dec.meta().clone();
    let mut phases = PhaseTracker::new();
    while let Some(block) = dec.next_block()? {
        for rec in block {
            phases.on_record(rec, sink);
            sink.push(rec);
        }
    }
    phases.finish(sink);
    Ok((meta, dec.records_read()))
}

/// Stream a trace file into `sink`, sniffing JSONL vs ptb from the
/// file's leading bytes (see [`TraceFormat::sniff`]).
pub fn stream_file<S: RecordSink>(
    path: &std::path::Path,
    sink: &mut S,
) -> std::io::Result<(TraceMeta, u64)> {
    let format = TraceFormat::sniff(path)?;
    let f = std::fs::File::open(path)?;
    let r = std::io::BufReader::new(f);
    match format {
        TraceFormat::Jsonl => stream_jsonl(r, sink),
        TraceFormat::Ptb => stream_ptb(r, sink),
    }
}

/// Feed a ptb trace file to every worker of `pipeline` concurrently.
///
/// One reader thread per pipeline worker scans the whole block stream
/// (frame decoding is cheap; parsing the file once per worker costs far
/// less than serializing all records through one producer) and pushes
/// only the records its worker owns, preserving file order per worker —
/// so the resulting snapshot is bit-identical to a sequential
/// [`stream_file`] into `pipeline.sink()`. Returns the metadata and the
/// total record count of the file.
///
/// Phase boundaries are not synthesized (the pipeline's sink ignores
/// them); use [`stream_ptb`] with a composite sink when an online
/// diagnoser also needs the stream.
pub fn stream_ptb_parallel(
    path: &Path,
    pipeline: &IngestPipeline,
) -> std::io::Result<(TraceMeta, u64)> {
    let workers = pipeline.workers();
    let mut results: Vec<std::io::Result<(TraceMeta, u64)>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mut sink = pipeline.sink();
                s.spawn(move |_| -> std::io::Result<(TraceMeta, u64)> {
                    let f = std::fs::File::open(path)?;
                    let mut dec = PtbBlockReader::new(std::io::BufReader::new(f))?;
                    let meta = dec.meta().clone();
                    while let Some(block) = dec.next_block()? {
                        for rec in block {
                            if rec.rank as usize % workers == w {
                                sink.push(rec);
                            }
                        }
                    }
                    sink.flush();
                    Ok((meta, dec.records_read()))
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("ptb reader thread panicked"));
        }
    })
    .expect("reader scope");
    // Every thread read the same file; return the first result (or the
    // first error).
    let mut out = None;
    for r in results {
        let v = r?;
        out.get_or_insert(v);
    }
    Ok(out.expect("at least one reader thread"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::IngestConfig;
    use pio_trace::io::write_jsonl;
    use pio_trace::ptb::write_ptb;
    use pio_trace::{CallKind, Trace};

    fn sample(phases: u32, per_phase: u32) -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "stream".into(),
            platform: "test".into(),
            ranks: 8,
            seed: 1,
        });
        for p in 0..phases {
            for i in 0..per_phase {
                t.push(Record {
                    rank: i % 8,
                    call: CallKind::Read,
                    fd: 3,
                    offset: 0,
                    bytes: 4096,
                    start_ns: 0,
                    end_ns: 1_000_000,
                    phase: p,
                });
            }
        }
        t
    }

    /// Sink that logs the event sequence for ordering assertions.
    #[derive(Default)]
    struct EventLog {
        pushes: u64,
        phase_ends: Vec<u32>,
        finished: bool,
    }

    impl RecordSink for EventLog {
        fn push(&mut self, _r: &Record) {
            self.pushes += 1;
        }
        fn phase_end(&mut self, phase: u32) {
            self.phase_ends.push(phase);
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn streaming_matches_batch_read() {
        let t = sample(3, 10);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();

        let mut collected = Trace::new(t.meta.clone());
        let (meta, n) = stream_jsonl(std::io::Cursor::new(&buf), &mut collected).unwrap();
        assert_eq!(meta, t.meta);
        assert_eq!(n, 30);
        assert_eq!(collected.records, t.records);
    }

    #[test]
    fn ptb_streaming_matches_jsonl_streaming() {
        let t = sample(3, 10);
        let mut jsonl = Vec::new();
        write_jsonl(&t, &mut jsonl).unwrap();
        let mut ptb = Vec::new();
        write_ptb(&t, &mut ptb).unwrap();

        let mut from_jsonl = EventLog::default();
        let (m1, n1) = stream_jsonl(std::io::Cursor::new(&jsonl), &mut from_jsonl).unwrap();
        let mut from_ptb = EventLog::default();
        let (m2, n2) = stream_ptb(std::io::Cursor::new(&ptb), &mut from_ptb).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(n1, n2);
        assert_eq!(from_jsonl.pushes, from_ptb.pushes);
        assert_eq!(from_jsonl.phase_ends, from_ptb.phase_ends);
        assert!(from_ptb.finished);

        let mut collected = Trace::new(t.meta.clone());
        stream_ptb(std::io::Cursor::new(&ptb), &mut collected).unwrap();
        assert_eq!(collected.records, t.records);
    }

    #[test]
    fn stream_file_sniffs_both_formats() {
        let dir = std::env::temp_dir().join("pio_ingest_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample(2, 6);
        let jsonl_path = dir.join("t.jsonl");
        let ptb_path = dir.join("t.ptb");
        pio_trace::io::save_as(&t, &jsonl_path, TraceFormat::Jsonl).unwrap();
        pio_trace::io::save_as(&t, &ptb_path, TraceFormat::Ptb).unwrap();
        for p in [&jsonl_path, &ptb_path] {
            let mut log = EventLog::default();
            let (meta, n) = stream_file(p, &mut log).unwrap();
            assert_eq!(meta, t.meta, "{p:?}");
            assert_eq!(n, 12, "{p:?}");
            assert_eq!(log.phase_ends, vec![0, 1], "{p:?}");
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn parallel_ptb_ingest_is_bit_identical_to_sequential() {
        let dir = std::env::temp_dir().join("pio_ingest_parallel_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("par.ptb");
        // Uneven durations so f64 accumulation order matters.
        let mut t = Trace::new(TraceMeta {
            experiment: "par".into(),
            platform: "test".into(),
            ranks: 16,
            seed: 3,
        });
        for i in 0..10_000u64 {
            t.push(Record {
                rank: (i % 16) as u32,
                call: CallKind::ALL[(i % 12) as usize],
                fd: 3,
                offset: i << 12,
                bytes: 4096 + i % 999,
                start_ns: i * 1000,
                end_ns: i * 1000 + 1 + (i * i) % 77_777,
                phase: (i / 2500) as u32,
            });
        }
        pio_trace::io::save_as(&t, &path, TraceFormat::Ptb).unwrap();

        let cfg = IngestConfig::default();
        let sequential = {
            let pipeline = IngestPipeline::new(cfg.clone());
            let mut sink = pipeline.sink();
            let (_, n) = stream_file(&path, &mut sink).unwrap();
            assert_eq!(n, 10_000);
            drop(sink);
            pipeline.finish()
        };
        let parallel = {
            let pipeline = IngestPipeline::new(cfg);
            let (meta, n) = stream_ptb_parallel(&path, &pipeline).unwrap();
            assert_eq!(meta, t.meta);
            assert_eq!(n, 10_000);
            pipeline.finish()
        };
        assert_eq!(sequential, parallel);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn phase_boundaries_are_synthesized_in_order() {
        let t = sample(3, 5);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let mut log = EventLog::default();
        stream_jsonl(std::io::Cursor::new(&buf), &mut log).unwrap();
        assert_eq!(log.pushes, 15);
        assert_eq!(log.phase_ends, vec![0, 1, 2]);
        assert!(log.finished);
    }

    #[test]
    fn empty_stream_is_an_error() {
        let mut log = EventLog::default();
        let err = stream_jsonl(std::io::Cursor::new(Vec::new()), &mut log).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn meta_only_stream_finishes_cleanly() {
        let t = sample(0, 0);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let mut log = EventLog::default();
        let (_, n) = stream_jsonl(std::io::Cursor::new(&buf), &mut log).unwrap();
        assert_eq!(n, 0);
        assert!(log.phase_ends.is_empty());
        assert!(log.finished);
    }
}
