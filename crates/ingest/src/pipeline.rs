//! The concurrent bounded-memory ingestion pipeline.
//!
//! Records fan out from any number of producers over bounded channels to
//! worker threads, each of which owns a map of mergeable shard
//! accumulators. Because every accumulator obeys the merge-equals-union
//! law, a snapshot taken at any instant — or the final merge at
//! [`IngestPipeline::finish`] — is exactly the state a single sequential
//! accumulator would have reached over the same records, regardless of
//! how they interleaved across workers.
//!
//! Backpressure is explicit: a full channel either blocks the producer
//! ([`OverflowPolicy::Block`], losslessly coupling capture speed to
//! analysis speed) or sheds the record and counts it
//! ([`OverflowPolicy::DropAndCount`], for capture paths that must never
//! stall the application being traced).

use crate::shard::{EnsembleSnapshot, ShardKey, ShardStats};
use crate::sketch::HeavyHitters;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use pio_trace::{CallKind, Record, RecordSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a producer does when its worker's channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait for the worker to catch up (lossless).
    Block,
    /// Drop the record and increment the dropped counter (non-stalling).
    DropAndCount,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Worker threads (records are routed by `rank % workers`, so one
    /// rank's records stay ordered within a worker).
    pub workers: usize,
    /// Bounded channel capacity per worker.
    pub capacity: usize,
    /// Overflow policy when a channel is full.
    pub policy: OverflowPolicy,
    /// Rank groups for shard keys (`rank % rank_groups`).
    pub rank_groups: u32,
    /// Duration geometry: lower bound, seconds.
    pub hist_lo: f64,
    /// Duration geometry: upper bound, seconds.
    pub hist_hi: f64,
    /// Duration geometry: bucket count.
    pub hist_bins: usize,
    /// Heavy-hitter sketch capacity (tracked ranks).
    pub hitter_capacity: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            workers: 4,
            capacity: 1024,
            policy: OverflowPolicy::Block,
            rank_groups: 8,
            hist_lo: 1e-6,
            hist_hi: 1e3,
            hist_bins: 96,
            hitter_capacity: 16,
        }
    }
}

/// Per-worker accumulator state (shared with the snapshot path).
struct WorkerState {
    shards: HashMap<ShardKey, ShardStats>,
    hitters: HeavyHitters,
    meta_secs: f64,
    io_secs: f64,
    ranks: u32,
    ingested: u64,
}

impl WorkerState {
    fn new(cfg: &IngestConfig) -> Self {
        WorkerState {
            shards: HashMap::new(),
            hitters: HeavyHitters::new(cfg.hitter_capacity),
            meta_secs: 0.0,
            io_secs: 0.0,
            ranks: 0,
            ingested: 0,
        }
    }

    fn accumulate(&mut self, r: &Record, cfg: &IngestConfig) {
        let key = ShardKey {
            kind: r.call,
            group: r.rank % cfg.rank_groups.max(1),
            phase: r.phase,
        };
        self.shards
            .entry(key)
            .or_insert_with(|| ShardStats::new(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins))
            .accumulate(r);
        let secs = r.secs();
        if matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite) {
            self.hitters.add(r.rank, secs);
            self.meta_secs += secs;
        }
        if r.call.is_io() {
            self.io_secs += secs;
        }
        self.ranks = self.ranks.max(r.rank + 1);
        self.ingested += 1;
    }
}

/// How many records a worker drains per lock acquisition.
const WORKER_BATCH: usize = 256;

/// A concurrent sharded ingestion pipeline.
///
/// Create with [`IngestPipeline::new`], hand out producer handles with
/// [`IngestPipeline::sink`], then either poll [`IngestPipeline::snapshot`]
/// mid-run or drop every sink and call [`IngestPipeline::finish`].
pub struct IngestPipeline {
    cfg: IngestConfig,
    senders: Vec<Sender<Record>>,
    states: Vec<Arc<Mutex<WorkerState>>>,
    handles: Vec<JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
}

impl IngestPipeline {
    /// Spawn the worker threads and their bounded channels.
    pub fn new(cfg: IngestConfig) -> Self {
        let workers = cfg.workers.max(1);
        let capacity = cfg.capacity.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut states = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx): (Sender<Record>, Receiver<Record>) = channel::bounded(capacity);
            let state = Arc::new(Mutex::new(WorkerState::new(&cfg)));
            let worker_state = Arc::clone(&state);
            let worker_cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                let mut batch = Vec::with_capacity(WORKER_BATCH);
                while let Ok(first) = rx.recv() {
                    batch.push(first);
                    while batch.len() < WORKER_BATCH {
                        match rx.try_recv() {
                            Ok(r) => batch.push(r),
                            Err(_) => break,
                        }
                    }
                    let mut st = worker_state.lock();
                    for r in &batch {
                        st.accumulate(r, &worker_cfg);
                    }
                    drop(st);
                    batch.clear();
                }
            }));
            senders.push(tx);
            states.push(state);
        }
        IngestPipeline {
            cfg,
            senders,
            states,
            handles,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A producer handle. Cheap to clone; safe to use from any thread.
    pub fn sink(&self) -> IngestSink {
        IngestSink {
            senders: self.senders.clone(),
            policy: self.cfg.policy,
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// Records shed so far under [`OverflowPolicy::DropAndCount`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Merge every worker's current state into a consistent-per-worker
    /// snapshot. Cheap enough to poll mid-run: workers are blocked only
    /// while their own map is cloned.
    pub fn snapshot(&self) -> EnsembleSnapshot {
        let mut maps = Vec::with_capacity(self.states.len());
        let mut hitters = HeavyHitters::new(self.cfg.hitter_capacity);
        let (mut meta_secs, mut io_secs) = (0.0, 0.0);
        let (mut ranks, mut ingested) = (0u32, 0u64);
        for state in &self.states {
            let st = state.lock();
            maps.push(st.shards.clone());
            hitters.merge(&st.hitters);
            meta_secs += st.meta_secs;
            io_secs += st.io_secs;
            ranks = ranks.max(st.ranks);
            ingested += st.ingested;
        }
        EnsembleSnapshot::assemble(
            maps,
            hitters,
            meta_secs,
            io_secs,
            ranks,
            ingested,
            self.dropped(),
        )
    }

    /// Close the pipeline: stop accepting records, drain the channels,
    /// join the workers, and return the final merged snapshot.
    ///
    /// Every [`IngestSink`] must have been dropped first, or the workers
    /// (and this call) wait forever for more records.
    pub fn finish(mut self) -> EnsembleSnapshot {
        self.senders.clear();
        for h in self.handles.drain(..) {
            h.join().expect("ingest worker panicked");
        }
        self.snapshot()
    }
}

/// A cloneable producer handle implementing [`RecordSink`].
#[derive(Clone)]
pub struct IngestSink {
    senders: Vec<Sender<Record>>,
    policy: OverflowPolicy,
    dropped: Arc<AtomicU64>,
}

impl RecordSink for IngestSink {
    fn push(&mut self, r: &Record) {
        let tx = &self.senders[r.rank as usize % self.senders.len()];
        match self.policy {
            OverflowPolicy::Block => {
                // Err only if the worker died; records are then dropped
                // rather than panicking the traced application.
                if tx.send(r.clone()).is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            OverflowPolicy::DropAndCount => {
                if let Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) =
                    tx.try_send(r.clone())
                {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, call: CallKind, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes: 1 << 20,
            start_ns: 0,
            end_ns: (dur * 1e9) as u64,
            phase,
        }
    }

    #[test]
    fn concurrent_ingest_matches_sequential_accumulation() {
        let records: Vec<Record> = (0..4000u32)
            .map(|i| {
                rec(
                    i % 32,
                    CallKind::Read,
                    0.001 * (1 + i % 500) as f64,
                    i / 1000,
                )
            })
            .collect();

        let cfg = IngestConfig::default();
        let pipeline = IngestPipeline::new(cfg.clone());
        // Four producer threads, interleaving arbitrarily.
        crossbeam::thread::scope(|s| {
            for chunk in records.chunks(1000) {
                let mut sink = pipeline.sink();
                s.spawn(move |_| {
                    for r in chunk {
                        sink.push(r);
                    }
                });
            }
        })
        .unwrap();
        let snap = pipeline.finish();

        // Sequential reference over the same records.
        let mut reference = WorkerState::new(&cfg);
        for r in &records {
            reference.accumulate(r, &cfg);
        }

        assert_eq!(snap.ingested, 4000);
        assert_eq!(snap.dropped, 0);
        let merged = snap.kind_stats(CallKind::Read).unwrap();
        let mut ref_merged: Option<ShardStats> = None;
        for s in reference.shards.values() {
            match &mut ref_merged {
                Some(a) => a.merge(s),
                None => ref_merged = Some(s.clone()),
            }
        }
        let ref_merged = ref_merged.unwrap();
        assert_eq!(merged.hist, ref_merged.hist);
        assert_eq!(merged.ops, ref_merged.ops);
        assert_eq!(merged.bytes, ref_merged.bytes);
        // Shard set identical, not just the merged view.
        assert_eq!(snap.shards.len(), reference.shards.len());
        for (k, s) in &snap.shards {
            assert_eq!(s.hist, reference.shards[k].hist, "shard {k:?}");
        }
    }

    #[test]
    fn drop_and_count_sheds_under_backpressure() {
        let cfg = IngestConfig {
            workers: 1,
            capacity: 8,
            policy: OverflowPolicy::DropAndCount,
            ..IngestConfig::default()
        };
        let pipeline = IngestPipeline::new(cfg);
        let mut sink = pipeline.sink();
        // Pin the worker: it can drain at most one batch into its local
        // buffer, then blocks trying to take the state lock we hold.
        let gate = pipeline.states[0].lock();
        for _ in 0..2000 {
            sink.push(&rec(0, CallKind::Write, 0.001, 0));
        }
        assert!(pipeline.dropped() > 0, "expected shed records");
        drop(gate);
        drop(sink);
        let snap = pipeline.finish();
        assert_eq!(snap.ingested + snap.dropped, 2000);
        assert!(snap.dropped >= 2000 - (WORKER_BATCH as u64) - 8 - 1);
    }

    #[test]
    fn block_policy_is_lossless() {
        let cfg = IngestConfig {
            workers: 2,
            capacity: 4,
            policy: OverflowPolicy::Block,
            ..IngestConfig::default()
        };
        let pipeline = IngestPipeline::new(cfg);
        let mut sink = pipeline.sink();
        for i in 0..5000u32 {
            sink.push(&rec(i % 16, CallKind::Write, 0.001, 0));
        }
        drop(sink);
        let snap = pipeline.finish();
        assert_eq!(snap.ingested, 5000);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn mid_run_snapshot_is_a_prefix_state() {
        let pipeline = IngestPipeline::new(IngestConfig::default());
        let mut sink = pipeline.sink();
        for i in 0..1000u32 {
            sink.push(&rec(i % 8, CallKind::Read, 0.01, 0));
        }
        let mid = pipeline.snapshot();
        assert!(mid.ingested <= 1000);
        for i in 0..1000u32 {
            sink.push(&rec(i % 8, CallKind::Read, 0.01, 0));
        }
        drop(sink);
        let fin = pipeline.finish();
        assert_eq!(fin.ingested, 2000);
        assert!(mid.ingested <= fin.ingested);
    }
}
