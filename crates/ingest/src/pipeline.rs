//! The concurrent bounded-memory ingestion pipeline.
//!
//! Records fan out from any number of producers over bounded channels to
//! worker threads, each of which owns a map of mergeable shard
//! accumulators. Because every accumulator obeys the merge-equals-union
//! law, a snapshot taken at any instant — or the final merge at
//! [`IngestPipeline::finish`] — is exactly the state a single sequential
//! accumulator would have reached over the same records, regardless of
//! how they interleaved across workers.
//!
//! Transport is block-batched: each producer accumulates records into a
//! per-worker block of [`IngestConfig::batch`] records and sends whole
//! `Vec<Record>` blocks through the channel, so channel synchronization
//! is paid once per block rather than once per record. Routing is still
//! per record (`rank % workers`), so a single producer delivers each
//! worker the same record sequence whatever the batch size — which is
//! what makes batched and per-record transport produce bit-identical
//! snapshots (see the batch-parity tests).
//!
//! Backpressure is explicit: a full channel either blocks the producer
//! ([`OverflowPolicy::Block`], losslessly coupling capture speed to
//! analysis speed) or sheds the whole block and counts every record in
//! it ([`OverflowPolicy::DropAndCount`], for capture paths that must
//! never stall the application being traced) — drop accounting stays
//! exact at block granularity.

use crate::shard::{EnsembleSnapshot, SnapshotBuilder, SnapshotConfig};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use pio_core::diagnosis::Thresholds;
use pio_trace::{Record, RecordSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a producer does when its worker's channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait for the worker to catch up (lossless).
    Block,
    /// Drop the block and count its records (non-stalling).
    DropAndCount,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Worker threads (records are routed by `rank % workers`, so one
    /// rank's records stay ordered within a worker).
    pub workers: usize,
    /// Bounded channel capacity per worker, in blocks.
    pub capacity: usize,
    /// Records per transport block. `1` degenerates to per-record
    /// sends; the default amortizes channel synchronization ~256×.
    pub batch: usize,
    /// Overflow policy when a channel is full.
    pub policy: OverflowPolicy,
    /// Rank groups for shard keys (`rank % rank_groups`).
    pub rank_groups: u32,
    /// Duration geometry: lower bound, seconds.
    pub hist_lo: f64,
    /// Duration geometry: upper bound, seconds.
    pub hist_hi: f64,
    /// Duration geometry: bucket count.
    pub hist_bins: usize,
    /// Heavy-hitter sketch capacity (tracked ranks).
    pub hitter_capacity: usize,
    /// Writes strictly below this byte count feed the small-write
    /// (metadata-storm) aggregate.
    pub small_write_bytes: u64,
    /// Stripe width for the per-target residue decomposition in the
    /// tail profiles.
    pub stripe_bytes: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        let th = Thresholds::default();
        IngestConfig {
            workers: 4,
            capacity: 64,
            batch: 256,
            policy: OverflowPolicy::Block,
            rank_groups: 8,
            hist_lo: 1e-6,
            hist_hi: 1e3,
            hist_bins: 96,
            hitter_capacity: 16,
            small_write_bytes: th.small_write_bytes,
            stripe_bytes: th.stripe_bytes,
        }
    }
}

impl IngestConfig {
    /// The snapshot-accumulator geometry this pipeline's workers share
    /// (the same geometry a fleet tenant must use to merge with them).
    pub fn snapshot_config(&self) -> SnapshotConfig {
        SnapshotConfig {
            rank_groups: self.rank_groups,
            hist_lo: self.hist_lo,
            hist_hi: self.hist_hi,
            hist_bins: self.hist_bins,
            hitter_capacity: self.hitter_capacity,
            small_write_bytes: self.small_write_bytes,
            stripe_bytes: self.stripe_bytes,
        }
    }
}

/// A concurrent sharded ingestion pipeline.
///
/// Create with [`IngestPipeline::new`], hand out producer handles with
/// [`IngestPipeline::sink`], then either poll [`IngestPipeline::snapshot`]
/// mid-run or drop every sink and call [`IngestPipeline::finish`].
pub struct IngestPipeline {
    cfg: IngestConfig,
    senders: Vec<Sender<Vec<Record>>>,
    states: Vec<Arc<Mutex<SnapshotBuilder>>>,
    handles: Vec<JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
}

impl IngestPipeline {
    /// Spawn the worker threads and their bounded channels.
    pub fn new(cfg: IngestConfig) -> Self {
        let workers = cfg.workers.max(1);
        let capacity = cfg.capacity.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut states = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx): (Sender<Vec<Record>>, Receiver<Vec<Record>>) = channel::bounded(capacity);
            let state = Arc::new(Mutex::new(SnapshotBuilder::new(cfg.snapshot_config())));
            let worker_state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                // One lock acquisition per block: the producer already
                // amortized the channel cost, the lock rides along. The
                // block accumulate path classifies durations against the
                // builder's bin table — bit-identical to per-record
                // accumulation (see the batch-parity tests).
                while let Ok(block) = rx.recv() {
                    worker_state.lock().accumulate_block(&block);
                }
            }));
            senders.push(tx);
            states.push(state);
        }
        IngestPipeline {
            cfg,
            senders,
            states,
            handles,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Worker count (also the rank-routing modulus).
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// A producer handle. Cheap to clone; safe to use from any thread.
    /// Each clone buffers its own pending blocks, flushed on
    /// [`RecordSink::finish`] or drop.
    pub fn sink(&self) -> IngestSink {
        let batch = self.cfg.batch.max(1);
        IngestSink {
            pending: self
                .senders
                .iter()
                .map(|_| Vec::with_capacity(batch))
                .collect(),
            senders: self.senders.clone(),
            batch,
            policy: self.cfg.policy,
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// Records shed so far under [`OverflowPolicy::DropAndCount`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Merge every worker's current state into a consistent-per-worker
    /// snapshot. Cheap enough to poll mid-run: workers are blocked only
    /// while their own state is snapshotted. The merge itself is the
    /// same [`EnsembleSnapshot::merge`] law the fleet roll-up uses,
    /// folded in worker order.
    pub fn snapshot(&self) -> EnsembleSnapshot {
        let mut acc = EnsembleSnapshot::empty(&self.cfg.snapshot_config());
        for state in &self.states {
            let snap = state.lock().snapshot(0);
            acc.merge(&snap);
        }
        acc.dropped = self.dropped();
        acc
    }

    /// Close the pipeline: stop accepting records, drain the channels,
    /// join the workers, and return the final merged snapshot.
    ///
    /// Every [`IngestSink`] must have been dropped first, or the workers
    /// (and this call) wait forever for more records.
    pub fn finish(mut self) -> EnsembleSnapshot {
        self.senders.clear();
        for h in self.handles.drain(..) {
            h.join().expect("ingest worker panicked");
        }
        self.snapshot()
    }
}

/// A cloneable producer handle implementing [`RecordSink`].
///
/// Pushed records accumulate into one pending block per worker; a block
/// is sent when it reaches the configured batch size, when the sink's
/// [`RecordSink::finish`] fires, or when the sink is dropped. Under
/// [`OverflowPolicy::DropAndCount`] an un-sendable block is shed whole
/// and every record in it is counted dropped, so
/// `ingested + dropped == pushed` holds exactly.
pub struct IngestSink {
    senders: Vec<Sender<Vec<Record>>>,
    pending: Vec<Vec<Record>>,
    batch: usize,
    policy: OverflowPolicy,
    dropped: Arc<AtomicU64>,
}

impl Clone for IngestSink {
    /// Clones share the channels and drop counter but buffer their own
    /// pending blocks (un-flushed records are not duplicated).
    fn clone(&self) -> Self {
        IngestSink {
            senders: self.senders.clone(),
            pending: self
                .senders
                .iter()
                .map(|_| Vec::with_capacity(self.batch))
                .collect(),
            batch: self.batch,
            policy: self.policy,
            dropped: Arc::clone(&self.dropped),
        }
    }
}

impl IngestSink {
    fn flush_worker(&mut self, w: usize) {
        if self.pending[w].is_empty() {
            return;
        }
        let block = std::mem::replace(&mut self.pending[w], Vec::with_capacity(self.batch));
        match self.policy {
            OverflowPolicy::Block => {
                // Err only if the worker died; records are then dropped
                // rather than panicking the traced application.
                if let Err(channel::SendError(b)) = self.senders[w].send(block) {
                    self.dropped.fetch_add(b.len() as u64, Ordering::Relaxed);
                }
            }
            OverflowPolicy::DropAndCount => {
                if let Err(TrySendError::Full(b) | TrySendError::Disconnected(b)) =
                    self.senders[w].try_send(block)
                {
                    self.dropped.fetch_add(b.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Send every pending block now, regardless of fill level.
    pub fn flush(&mut self) {
        for w in 0..self.senders.len() {
            self.flush_worker(w);
        }
    }
}

impl RecordSink for IngestSink {
    fn push(&mut self, r: &Record) {
        let w = r.rank as usize % self.senders.len();
        self.pending[w].push(r.clone());
        if self.pending[w].len() >= self.batch {
            self.flush_worker(w);
        }
    }

    /// Route a decoded block into the pending buffers by maximal
    /// same-worker runs. Fill-to-batch chunking sends exactly the blocks
    /// the per-record path would have sent — same boundaries, same
    /// order — so transport stays bit-identical while the copy is a
    /// slice extend instead of a per-record clone.
    fn push_block(&mut self, block: &[Record]) {
        let workers = self.senders.len();
        let mut start = 0;
        while start < block.len() {
            let w = block[start].rank as usize % workers;
            let mut end = start + 1;
            while end < block.len() && block[end].rank as usize % workers == w {
                end += 1;
            }
            let mut run = &block[start..end];
            while !run.is_empty() {
                // Invariant: pending is always below the batch size here
                // (push/flush keep it that way), so room >= 1.
                let room = self.batch - self.pending[w].len();
                let take = room.min(run.len());
                self.pending[w].extend_from_slice(&run[..take]);
                run = &run[take..];
                if self.pending[w].len() >= self.batch {
                    self.flush_worker(w);
                }
            }
            start = end;
        }
    }

    fn finish(&mut self) {
        self.flush();
    }
}

impl Drop for IngestSink {
    /// A sink dropped without `finish()` still delivers its tail.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::CallKind;

    fn rec(rank: u32, call: CallKind, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes: 1 << 20,
            start_ns: 0,
            end_ns: (dur * 1e9) as u64,
            phase,
        }
    }

    #[test]
    fn concurrent_ingest_matches_sequential_accumulation() {
        let records: Vec<Record> = (0..4000u32)
            .map(|i| {
                rec(
                    i % 32,
                    CallKind::Read,
                    0.001 * (1 + i % 500) as f64,
                    i / 1000,
                )
            })
            .collect();

        let cfg = IngestConfig::default();
        let pipeline = IngestPipeline::new(cfg.clone());
        // Four producer threads, interleaving arbitrarily.
        crossbeam::thread::scope(|s| {
            for chunk in records.chunks(1000) {
                let mut sink = pipeline.sink();
                s.spawn(move |_| {
                    for r in chunk {
                        sink.push(r);
                    }
                });
            }
        })
        .unwrap();
        let snap = pipeline.finish();

        // Sequential reference over the same records.
        let mut reference = SnapshotBuilder::new(cfg.snapshot_config());
        for r in &records {
            reference.accumulate(r);
        }
        let ref_snap = reference.into_snapshot(0);

        assert_eq!(snap.ingested, 4000);
        assert_eq!(snap.dropped, 0);
        let merged = snap.kind_stats(CallKind::Read).unwrap();
        let ref_merged = ref_snap.kind_stats(CallKind::Read).unwrap();
        assert_eq!(merged.hist, ref_merged.hist);
        assert_eq!(merged.ops, ref_merged.ops);
        assert_eq!(merged.bytes, ref_merged.bytes);
        // Shard set identical, not just the merged view.
        assert_eq!(snap.shards.len(), ref_snap.shards.len());
        for ((k, s), (rk, rs)) in snap.shards.iter().zip(&ref_snap.shards) {
            assert_eq!(k, rk);
            assert_eq!(s.hist, rs.hist, "shard {k:?}");
        }
    }

    #[test]
    fn batched_transport_is_bit_identical_to_per_record() {
        // A single producer delivers each worker the same sequence
        // whatever the batch size, so the snapshots must be *equal* —
        // f64 accumulators included.
        let records: Vec<Record> = (0..5000u32)
            .map(|i| {
                rec(
                    i % 32,
                    CallKind::ALL[(i % 12) as usize],
                    1e-4 * (1 + i % 997) as f64,
                    i / 1250,
                )
            })
            .collect();
        let snap_of = |batch: usize| {
            let pipeline = IngestPipeline::new(IngestConfig {
                batch,
                ..IngestConfig::default()
            });
            let mut sink = pipeline.sink();
            for r in &records {
                sink.push(r);
            }
            drop(sink);
            pipeline.finish()
        };
        let per_record = snap_of(1);
        let batched = snap_of(256);
        assert_eq!(per_record, batched);
        assert_eq!(batched.ingested, 5000);
    }

    #[test]
    fn drop_counts_identical_at_block_granularity() {
        // Deterministic backpressure: a sink over channels nobody
        // drains. Per-record (batch=1, 512 one-record blocks) and
        // batched (batch=256, 2 blocks) accept exactly 512 records
        // each and shed the rest — identical exact drop counts.
        let drops_of = |batch: usize, capacity: usize| {
            let (tx, _rx) = channel::bounded::<Vec<Record>>(capacity);
            let dropped = Arc::new(AtomicU64::new(0));
            let mut sink = IngestSink {
                senders: vec![tx],
                pending: vec![Vec::with_capacity(batch)],
                batch,
                policy: OverflowPolicy::DropAndCount,
                dropped: Arc::clone(&dropped),
            };
            for _ in 0..2048 {
                sink.push(&rec(0, CallKind::Write, 0.001, 0));
            }
            drop(sink);
            dropped.load(Ordering::Relaxed)
        };
        let per_record = drops_of(1, 512);
        let batched = drops_of(256, 2);
        assert_eq!(per_record, 2048 - 512);
        assert_eq!(batched, per_record);
    }

    #[test]
    fn drop_and_count_sheds_under_backpressure() {
        let cfg = IngestConfig {
            workers: 1,
            capacity: 2,
            batch: 64,
            policy: OverflowPolicy::DropAndCount,
            ..IngestConfig::default()
        };
        let pipeline = IngestPipeline::new(cfg);
        let mut sink = pipeline.sink();
        // Pin the worker: it can take at most one block into its
        // accumulate loop, then blocks on the state lock we hold, so
        // at most capacity+1 blocks (plus the tail flush after the
        // gate lifts) are ever accepted.
        let gate = pipeline.states[0].lock();
        for _ in 0..2000 {
            sink.push(&rec(0, CallKind::Write, 0.001, 0));
        }
        assert!(pipeline.dropped() > 0, "expected shed records");
        drop(gate);
        drop(sink);
        let snap = pipeline.finish();
        assert_eq!(snap.ingested + snap.dropped, 2000);
        assert!(snap.dropped >= 2000 - 4 * 64);
    }

    #[test]
    fn block_policy_is_lossless() {
        let cfg = IngestConfig {
            workers: 2,
            capacity: 4,
            batch: 16,
            policy: OverflowPolicy::Block,
            ..IngestConfig::default()
        };
        let pipeline = IngestPipeline::new(cfg);
        let mut sink = pipeline.sink();
        for i in 0..5000u32 {
            sink.push(&rec(i % 16, CallKind::Write, 0.001, 0));
        }
        drop(sink);
        let snap = pipeline.finish();
        assert_eq!(snap.ingested, 5000);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn mid_run_snapshot_is_a_prefix_state() {
        let pipeline = IngestPipeline::new(IngestConfig::default());
        let mut sink = pipeline.sink();
        for i in 0..1000u32 {
            sink.push(&rec(i % 8, CallKind::Read, 0.01, 0));
        }
        let mid = pipeline.snapshot();
        assert!(mid.ingested <= 1000);
        for i in 0..1000u32 {
            sink.push(&rec(i % 8, CallKind::Read, 0.01, 0));
        }
        drop(sink);
        let fin = pipeline.finish();
        assert_eq!(fin.ingested, 2000);
        assert!(mid.ingested <= fin.ingested);
    }

    #[test]
    fn explicit_flush_makes_pending_records_visible() {
        let pipeline = IngestPipeline::new(IngestConfig {
            workers: 1,
            ..IngestConfig::default()
        });
        let mut sink = pipeline.sink();
        for i in 0..10u32 {
            sink.push(&rec(i, CallKind::Read, 0.01, 0));
        }
        // Fewer than one batch: nothing sent yet; flush forces it out.
        sink.flush();
        // Wait for the worker to drain (bounded spin, then assert).
        for _ in 0..1000 {
            if pipeline.snapshot().ingested == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pipeline.snapshot().ingested, 10);
        drop(sink);
        assert_eq!(pipeline.finish().ingested, 10);
    }
}
