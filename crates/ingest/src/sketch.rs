//! Mergeable streaming sketches.
//!
//! Everything here satisfies the same law as [`pio_des::hist::LogHistogram`]: merging
//! two sketches built from disjoint streams gives the same state (counts
//! exactly, float accumulators up to rounding) as one sketch fed the
//! concatenated stream. That law is what makes sharded ingestion safe —
//! shards can be merged in any order at snapshot time.
//!
//! * [`QuantileSketch`] — log-bucketed quantile estimator. Buckets follow
//!   a [`LogBins`] geometry; each keeps a count *and* a sum so quantiles
//!   are reported at the mean of the in-bucket samples rather than the
//!   geometric bin center, which tightens the estimate considerably for
//!   the concentrated unimodal distributions healthy I/O produces.
//! * [`HeavyHitters`] — weighted Space-Saving top-k over ranks, used to
//!   spot one rank monopolizing metadata time without a per-rank table.
//! * [`OnlineMoments`] (re-exported) — mergeable mean/variance/skew/
//!   kurtosis accumulator from `pio-des`.

use pio_des::hist::{BinTable, LogBins};
pub use pio_des::stats::OnlineMoments;
use std::collections::HashMap;

/// Streaming quantile sketch over log-spaced buckets.
///
/// Out-of-range samples are clamped into the edge buckets (capture-style:
/// nothing is dropped), and the exact global min/max are tracked so the
/// extreme quantiles never report outside the observed range.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    geom: LogBins,
    counts: Vec<u64>,
    sums: Vec<f64>,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// A sketch with `bins` log-spaced buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        let geom = LogBins::new(lo, hi, bins);
        QuantileSketch {
            geom,
            counts: vec![0; bins],
            sums: vec![0.0; bins],
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default geometry for call durations: 1 µs to 1000 s. At 96
    /// buckets over 9 decades each bucket spans a factor of ~1.24, so a
    /// median/p99 ratio is resolved well inside the 4× shoulder threshold.
    pub fn for_durations() -> Self {
        QuantileSketch::new(1e-6, 1e3, 96)
    }

    /// The bucket geometry.
    pub fn geometry(&self) -> LogBins {
        self.geom
    }

    /// Record one sample.
    pub fn add(&mut self, v: f64) {
        let i = self.geom.index_clamped(v);
        self.add_at(v, i);
    }

    /// Record one pre-classified sample. `i` must equal
    /// `self.geometry().index_clamped(v)` — batch paths classify once
    /// against a shared [`BinTable`] and fan the index out to every
    /// collector with this geometry. Bit-identical to [`Self::add`].
    #[inline]
    pub fn add_at(&mut self, v: f64, i: usize) {
        debug_assert_eq!(i, self.geom.index_clamped(v));
        self.counts[i] += 1;
        self.sums[i] += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a slice of samples, classifying against `table` (which
    /// must carry this sketch's geometry). Bit-identical to calling
    /// [`Self::add`] per element, without a `ln` per value.
    #[inline]
    pub fn add_block(&mut self, vs: &[f64], table: &BinTable) {
        debug_assert_eq!(table.geometry(), self.geom);
        for &v in vs {
            self.add_at(v, table.index_clamped(v));
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sums.iter().sum()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.max)
    }

    /// Estimated value of bucket `i`: the mean of its samples, falling
    /// back to the geometric center for empty buckets.
    fn bucket_value(&self, i: usize) -> f64 {
        if self.counts[i] > 0 {
            self.sums[i] / self.counts[i] as f64
        } else {
            self.geom.center(i)
        }
    }

    /// Approximate quantile, `q` in `[0, 1]`, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for i in 0..self.counts.len() {
            acc += self.counts[i];
            if acc >= target {
                return Some(self.bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Estimated fraction of samples above `x` (buckets count wholly by
    /// their in-bucket mean).
    pub fn fraction_above(&self, x: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = (0..self.counts.len())
            .filter(|&i| self.counts[i] > 0 && self.bucket_value(i) > x)
            .map(|i| self.counts[i])
            .sum();
        above as f64 / total as f64
    }

    /// Merge another sketch with the same geometry; equivalent to having
    /// fed both streams into one sketch. Panics if geometries differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.geom == other.geom,
            "merging quantile sketches with different bucket geometry"
        );
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.sums[i] += other.sums[i];
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One tracked key in a [`HeavyHitters`] sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hitter {
    /// The key (an MPI rank).
    pub key: u32,
    /// Accumulated weight (seconds), an overestimate by at most the
    /// weight of the smallest entry ever evicted.
    pub weight: f64,
    /// Accumulated operation count (same overestimate caveat).
    pub ops: u64,
}

/// Weighted Space-Saving heavy-hitter sketch: tracks the top-`k` keys by
/// total weight in O(k) memory. A key whose true weight share exceeds
/// `1/k` of the total is guaranteed to be present; reported weights
/// overestimate by at most the evicted minimum, which is harmless for
/// "one rank owns ≥25% of metadata time" style questions.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitters {
    capacity: usize,
    entries: HashMap<u32, (f64, u64)>,
    total_weight: f64,
    total_ops: u64,
}

impl HeavyHitters {
    /// Track up to `capacity` keys (must be nonzero).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "heavy-hitter capacity must be nonzero");
        HeavyHitters {
            capacity,
            entries: HashMap::new(),
            total_weight: 0.0,
            total_ops: 0,
        }
    }

    /// Record `weight` for `key` (one operation).
    pub fn add(&mut self, key: u32, weight: f64) {
        self.add_many(key, weight, 1);
    }

    /// Record `weight` spread over `ops` operations for `key`.
    pub fn add_many(&mut self, key: u32, weight: f64, ops: u64) {
        self.total_weight += weight;
        self.total_ops += ops;
        if let Some(e) = self.entries.get_mut(&key) {
            e.0 += weight;
            e.1 += ops;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key, (weight, ops));
            return;
        }
        // Space-Saving eviction: the new key absorbs the smallest entry's
        // counters, bounding the underestimate of any true heavy hitter.
        let &evict = self
            .entries
            .iter()
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(k, _)| k)
            .expect("capacity > 0");
        let (w0, n0) = self.entries.remove(&evict).expect("present");
        self.entries.insert(key, (w0 + weight, n0 + ops));
    }

    /// Record a run of single-op weights that all belong to `key` — one
    /// hash lookup for the whole run instead of one per record. The
    /// per-record float adds are preserved in order, so the result is
    /// bit-identical to calling [`Self::add`] once per weight (each
    /// accumulator sees exactly the same add sequence; only the lookup
    /// is hoisted).
    pub fn add_run(&mut self, key: u32, weights: &[f64]) {
        let Some((&first, rest)) = weights.split_first() else {
            return;
        };
        for &w in weights {
            self.total_weight += w;
        }
        self.total_ops += weights.len() as u64;
        let e = match self.entries.get_mut(&key) {
            Some(e) => e,
            None => {
                if self.entries.len() < self.capacity {
                    self.entries.insert(key, (first, 1));
                } else {
                    let &evict = self
                        .entries
                        .iter()
                        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                        .map(|(k, _)| k)
                        .expect("capacity > 0");
                    let (w0, n0) = self.entries.remove(&evict).expect("present");
                    self.entries.insert(key, (w0 + first, n0 + 1));
                }
                let e = self.entries.get_mut(&key).expect("just inserted");
                for &w in rest {
                    e.0 += w;
                    e.1 += 1;
                }
                return;
            }
        };
        for &w in weights {
            e.0 += w;
            e.1 += 1;
        }
    }

    /// Total weight seen (exact).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Total operations seen (exact).
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Tracked keys, heaviest first.
    pub fn top(&self) -> Vec<Hitter> {
        let mut v: Vec<Hitter> = self
            .entries
            .iter()
            .map(|(&key, &(weight, ops))| Hitter { key, weight, ops })
            .collect();
        v.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.key.cmp(&b.key)));
        v
    }

    /// Merge another sketch (capacities may differ; the receiver's is
    /// kept). Totals are exact; per-key weights keep the Space-Saving
    /// overestimate bound of the combined streams.
    pub fn merge(&mut self, other: &HeavyHitters) {
        self.total_weight += other.total_weight;
        self.total_ops += other.total_ops;
        let mut incoming = other.top();
        // Insert heaviest first so the keys that matter survive eviction.
        incoming.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        for h in incoming {
            if let Some(e) = self.entries.get_mut(&h.key) {
                e.0 += h.weight;
                e.1 += h.ops;
            } else if self.entries.len() < self.capacity {
                self.entries.insert(h.key, (h.weight, h.ops));
            } else {
                let &evict = self
                    .entries
                    .iter()
                    .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                    .map(|(k, _)| k)
                    .expect("capacity > 0");
                let (w0, n0) = self.entries[&evict];
                if h.weight > w0 {
                    self.entries.remove(&evict);
                    self.entries.insert(h.key, (w0 + h.weight, n0 + h.ops));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_quantiles_track_exact_order_stats() {
        let mut s = QuantileSketch::for_durations();
        let mut vals: Vec<f64> = (1..=1000).map(|i| 0.001 * i as f64).collect();
        for &v in &vals {
            s.add(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = vals[((q * 1000.0) as usize).min(999)];
            let est = s.quantile(q).unwrap();
            // Log buckets span a 1.24 factor; in-bucket means do better.
            assert!(
                est / exact < 1.3 && exact / est < 1.3,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.count(), 1000);
        assert!((s.min().unwrap() - 0.001).abs() < 1e-12);
        assert!((s.max().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sketch_merge_matches_single_stream() {
        let mut a = QuantileSketch::new(1e-3, 1e2, 48);
        let mut b = a.clone();
        let mut whole = a.clone();
        for i in 1..500 {
            let v = 0.002 * i as f64;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            whole.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.5), whole.quantile(0.5));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    #[should_panic]
    fn sketch_merge_rejects_mismatched_geometry() {
        let mut a = QuantileSketch::new(1e-3, 1e2, 48);
        let b = QuantileSketch::new(1e-3, 1e2, 32);
        a.merge(&b);
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::for_durations();
        assert!(s.quantile(0.5).is_none());
        assert!(s.min().is_none());
        assert_eq!(s.fraction_above(0.0), 0.0);
    }

    #[test]
    fn fraction_above_splits_at_threshold() {
        let mut s = QuantileSketch::new(1e-3, 1e3, 96);
        for _ in 0..90 {
            s.add(1.0);
        }
        for _ in 0..10 {
            s.add(100.0);
        }
        let f = s.fraction_above(10.0);
        assert!((f - 0.10).abs() < 1e-9, "{f}");
    }

    #[test]
    fn heavy_hitter_finds_dominant_rank() {
        let mut hh = HeavyHitters::new(4);
        // Rank 7 owns ~70% of the weight among 64 ranks.
        for round in 0..50 {
            hh.add(7, 1.0);
            hh.add(round % 64, 0.01);
        }
        let top = hh.top();
        assert_eq!(top[0].key, 7);
        assert!(top[0].weight / hh.total_weight() > 0.6);
        assert_eq!(hh.total_ops(), 100);
    }

    #[test]
    fn add_run_is_bit_identical_to_per_record_adds() {
        // Small capacity so eviction fires constantly, including on the
        // first record of a run.
        let mut grouped = HeavyHitters::new(3);
        let mut per_record = HeavyHitters::new(3);
        let runs: Vec<(u32, Vec<f64>)> = (0..200)
            .map(|i| {
                let key = (i * 7) % 11;
                let len = (i % 5) + 1;
                let ws = (0..len).map(|j| 0.013 * (i + j + 1) as f64).collect();
                (key, ws)
            })
            .collect();
        for (key, ws) in &runs {
            grouped.add_run(*key, ws);
            for &w in ws {
                per_record.add(*key, w);
            }
        }
        assert_eq!(grouped, per_record);
        grouped.add_run(42, &[]);
        assert_eq!(grouped, per_record);
    }

    #[test]
    fn heavy_hitter_merge_preserves_dominance() {
        let mut a = HeavyHitters::new(4);
        let mut b = HeavyHitters::new(4);
        for i in 0..100u32 {
            a.add(0, 0.5);
            a.add(i % 32, 0.01);
            b.add(0, 0.5);
            b.add(i % 16, 0.02);
        }
        let (wa, wb) = (a.total_weight(), b.total_weight());
        a.merge(&b);
        assert!((a.total_weight() - (wa + wb)).abs() < 1e-9);
        let top = a.top();
        assert_eq!(top[0].key, 0);
        assert!(top[0].weight >= 100.0);
    }
}
