//! Per-tenant accounting for multi-stream ingest: one job on a shared
//! service gets a resident-memory budget, and the [`TenantMeter`]
//! decides what happens to its record blocks once the tenant's
//! accumulator state reaches that budget.
//!
//! The decision reuses the pipeline's [`OverflowPolicy`] semantics at
//! the memory boundary instead of the channel boundary:
//!
//! * [`OverflowPolicy::DropAndCount`] — blocks arriving while the tenant
//!   is over budget are shed whole and every record in them is counted,
//!   so `ingested + shed == pushed` stays exact and the job keeps its
//!   (budget-truncated) diagnosis.
//! * [`OverflowPolicy::Block`] — a budget breach cannot apply
//!   backpressure retroactively (the memory is already resident), so the
//!   lossless policy escalates: the tenant is **frozen** — finalized
//!   early with whatever evidence fits the budget — and later blocks are
//!   counted against it. A frozen tenant is reported as over-budget
//!   rather than silently lossy.
//!
//! Budget decisions depend only on the tenant's own stream (its state
//! grows deterministically with its records), so admission is
//! reproducible for any worker-pool size or cross-tenant interleaving.

use crate::pipeline::OverflowPolicy;

/// What to do with an arriving block, given the tenant's budget state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under budget: accumulate the block.
    Admit,
    /// Over budget under [`OverflowPolicy::DropAndCount`]: shed the
    /// block (already counted), keep the tenant live.
    Shed,
    /// Over budget under [`OverflowPolicy::Block`]: finalize the tenant
    /// now; this and later blocks are counted, not accumulated.
    Freeze,
}

/// Resident-memory budget meter for one tenant stream.
#[derive(Debug, Clone)]
pub struct TenantMeter {
    budget_bytes: usize,
    policy: OverflowPolicy,
    ingested: u64,
    shed: u64,
    frozen: bool,
}

impl TenantMeter {
    /// A meter enforcing `budget_bytes` of accumulator state under
    /// `policy`. A budget of 0 disables enforcement (unlimited).
    pub fn new(budget_bytes: usize, policy: OverflowPolicy) -> Self {
        TenantMeter {
            budget_bytes,
            policy,
            ingested: 0,
            shed: 0,
            frozen: false,
        }
    }

    /// Decide one arriving block of `records` records, given the
    /// tenant's current resident accumulator size. Counts the block as
    /// ingested or shed accordingly.
    pub fn admit(&mut self, resident_bytes: usize, records: u64) -> Admission {
        let over = self.budget_bytes > 0 && resident_bytes > self.budget_bytes;
        if self.frozen || over {
            self.shed += records;
            return if self.policy == OverflowPolicy::Block || self.frozen {
                self.frozen = true;
                Admission::Freeze
            } else {
                Admission::Shed
            };
        }
        self.ingested += records;
        Admission::Admit
    }

    /// Records accumulated for this tenant.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Records shed (or frozen out) by budget enforcement.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The configured budget in bytes (0 = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The tenant breached its budget under the lossless policy and was
    /// finalized early.
    pub fn frozen(&self) -> bool {
        self.frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_admits_everything() {
        let mut m = TenantMeter::new(0, OverflowPolicy::DropAndCount);
        for _ in 0..100 {
            assert_eq!(m.admit(usize::MAX - 1, 10), Admission::Admit);
        }
        assert_eq!(m.ingested(), 1000);
        assert_eq!(m.shed(), 0);
    }

    #[test]
    fn drop_and_count_sheds_over_budget_exactly() {
        let mut m = TenantMeter::new(1024, OverflowPolicy::DropAndCount);
        assert_eq!(m.admit(512, 7), Admission::Admit);
        assert_eq!(m.admit(2048, 5), Admission::Shed);
        // Shrinking back under budget (e.g. after eviction elsewhere)
        // re-admits: the meter is stateless about *why* memory moved.
        assert_eq!(m.admit(900, 3), Admission::Admit);
        assert_eq!(m.ingested(), 10);
        assert_eq!(m.shed(), 5);
        assert!(!m.frozen());
    }

    #[test]
    fn block_policy_freezes_on_first_breach() {
        let mut m = TenantMeter::new(1024, OverflowPolicy::Block);
        assert_eq!(m.admit(512, 4), Admission::Admit);
        assert_eq!(m.admit(4096, 6), Admission::Freeze);
        // Frozen is sticky even if memory drops.
        assert_eq!(m.admit(10, 2), Admission::Freeze);
        assert_eq!(m.ingested(), 4);
        assert_eq!(m.shed(), 8);
        assert!(m.frozen());
    }
}
