//! Sharded parallel discrete-event execution of a job.
//!
//! The classic engine ([`crate::world`]) runs one global event loop; at
//! 100k ranks that serializes minutes of wall time. This module shards
//! the simulation **by component**: every compute node is its own
//! conservative mini-DES (program stepping, page cache, NIC/ingest
//! service, read-ahead, fault lanes), and the shared server plane
//! (fabric, OSTs, MDS, DLM, extent locks) plus MPI coordination
//! (barriers, send/recv matching) run in a serial coordinator. Execution
//! proceeds in **rounds**:
//!
//! 1. *Node phase* (parallel over worker shards): each node with pending
//!    deliveries applies its inbox and drains its local event heap
//!    strictly below a conservative horizon — the earliest **reply
//!    floor** (issue time plus a deterministic lower bound on the reply
//!    delay) of any request whose reply has not yet arrived. Every
//!    reply lands at or after its floor, so no event a node processes
//!    can be invalidated by a later delivery: each node is a causally
//!    correct DES on its own timeline, running `floor`-deep past its
//!    outstanding requests.
//! 2. *Coordinator* (serial): matches point-to-point messages, releases
//!    barriers, and serves server requests in deterministic
//!    `(time, node, seq)` order through eager completion-time service
//!    centers — but only requests strictly below the round's
//!    **conservative lookahead bound** (LBTS: the minimum over deferred
//!    requests' reply floors, undelivered inbox timestamps, and every
//!    node's next local event). Later requests wait in a pool, so the
//!    shared FIFO centers are reserved in true global time order even
//!    though nodes run ahead of one another across rounds. Replies land
//!    in per-node inboxes for the next round.
//!
//! ## Determinism
//!
//! The shard count is a *worker-thread* count, nothing else. All state
//! and RNG lanes are keyed by stable entity identity
//! ([`pio_des::SimRng::keyed`] on the node id, coordinator, or server
//! plane), node phases share no mutable state, and the coordinator
//! consumes node outputs in node-index order — so the run is
//! bit-identical for any shard count, including `1`, by construction.
//!
//! ## Model fidelity
//!
//! The server plane works at the classic engine's granularity: one
//! fabric + OST RPC per stripe extent, the full [`pio_fs::Ost`] model
//! (stochastic overhead, stream-switch and read/write turnaround
//! penalties, drawn in served order from the server lane), per-extent
//! fault hooks, and LBTS-ordered reservations. Remaining divergences
//! from the classic engine (see DESIGN.md §15): RNG lanes are split by
//! component rather than shared, extents enter the NIC unwindowed at
//! issue time, lock conflicts cost one DLM round per chunk, reads
//! degrade only on submit-time pressure, and degraded-read page costs
//! land as one client-side term at completion. The statistical shape
//! (cache plateaus, discipline modes, stragglers, lock storms, metadata
//! shoulders) is preserved; the attribution corpus and the fault matrix
//! verify that verdicts survive the swap.

use crate::program::{Job, Op};
use crate::runner::{RunConfig, RunError, RunReport};
use crate::world::MpiConfig;
use pio_des::{
    EventQueue, FxHashMap, FxHashSet, MultiServiceCenter, ServiceCenter, SimRng, SimSpan, SimTime,
};
use pio_fault::{FaultPlan, PlanInjector};
use pio_fs::fault::FaultInjector;
use pio_fs::node::Node;
use pio_fs::readahead::{ReadMode, ReadaheadTracker};
use pio_fs::sim::UtilizationReport;
use pio_fs::{Extent, FsConfig, FsStats, LockStats, Ost, StripeLayout};
use pio_trace::{CallKind, FdTable, Record, RecordSink, Trace, TraceMeta};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// RNG lane components (see [`SimRng::keyed`]): one lane per node, one
/// for the coordinator, one for the server plane, plus fault-injector
/// variants — draws depend on identity, never on sharding.
const LANE_NODE: u64 = 0x5348_4E44;
const LANE_COORD: u64 = 0x5348_4352;
const LANE_SERVER: u64 = 0x5348_5356;
const LANE_NODE_FAULT: u64 = 0x5348_4E46;
const LANE_SERVER_FAULT: u64 = 0x5348_5346;

type IoId = u64;

/// How the server plane answers a data request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reply {
    /// One `Done` at the last batch completion (reads, sync writes).
    Done,
    /// One `Drain` per batch as it lands (buffered write-back).
    Drain,
}

/// One stripe RPC of a data I/O, matching the classic engine's per-RPC
/// granularity: NIC completion (fabric arrival), extra OST service
/// demand (RAID partial-stripe read-modify-write), and client-visible
/// extra latency (drop/retry + straggler NIC) — the latter two drawn on
/// the node's lanes at issue time.
#[derive(Debug, Clone, Copy)]
struct Batch {
    ost: u32,
    bytes: u64,
    t_nic: SimTime,
    svc_extra: SimSpan,
    client_extra: SimSpan,
}

/// Extent-lock acquisition for a write chunk: stripes `[s0, s1]` of
/// `file`, with partial-stripe flags at the true I/O boundaries.
#[derive(Debug, Clone, Copy)]
struct LockReq {
    file: u32,
    s0: u64,
    s1: u64,
    lo_partial: bool,
    hi_partial: bool,
}

/// A request from a node shard to the server plane.
#[derive(Debug)]
enum RReqKind {
    /// MDS transaction (open/close/stat).
    Meta { demand: SimSpan },
    /// Synchronous metadata write: MDS then the OST of its offset.
    MetaWrite {
        demand: SimSpan,
        ost: u32,
        stream: u64,
        bytes: u64,
    },
    /// Data transfer: per-extent fabric + OST RPC chains.
    Data {
        is_read: bool,
        stream: u64,
        noise: f64,
        /// Client pipeline window: extent `k` enters the fabric no
        /// earlier than extent `k - window` completed (the classic
        /// engine's in-flight RPC cap, which compounds slow-server
        /// delays across one I/O's extents).
        window: u32,
        batches: Vec<Batch>,
        /// Client-side serialized extra added to the final completion
        /// (degraded-read page fetches).
        io_extra: SimSpan,
        lock: Option<LockReq>,
        reply: Reply,
    },
}

#[derive(Debug)]
struct RReq {
    node: u32,
    io: IoId,
    t: SimTime,
    /// Per-node emission counter: `(t, node, seq)` totally orders the
    /// server plane's work, independent of shard scheduling.
    seq: u64,
    /// Deterministic lower bound on the reply's delay past `t` (pure
    /// bandwidth/demand terms, no queueing). The run loop's lookahead:
    /// no event caused by this request can precede `t + floor`.
    floor: SimSpan,
    kind: RReqKind,
}

/// A point-to-point send completed by a node this round.
#[derive(Debug, Clone, Copy)]
struct MsgSend {
    from: u32,
    to: u32,
    done: SimTime,
    bytes: u64,
}

/// A blocking receive issued by a node this round (global rank).
#[derive(Debug, Clone, Copy)]
struct RecvReq {
    from: u32,
    rank: u32,
    issue: SimTime,
}

/// A reply delivered into a node's inbox for the next round.
#[derive(Debug, Clone, Copy)]
enum Delivery {
    /// Server-side completion of I/O `io`.
    Done { io: IoId, t: SimTime },
    /// One write-back batch of `io` drained `bytes` at `t`.
    Drain { io: IoId, t: SimTime, bytes: u64 },
    /// Rank resumes after a barrier release (or the initial start).
    Resume { r: u32, t: SimTime, phase: u32 },
    /// Blocking receive completed.
    RecvDone { r: u32, t: SimTime, bytes: u64 },
    /// Barrier released: resample the node's service discipline.
    Resample { t: SimTime },
}

impl Delivery {
    /// When this delivery takes effect on its node's timeline.
    fn t(&self) -> SimTime {
        match *self {
            Delivery::Done { t, .. }
            | Delivery::Drain { t, .. }
            | Delivery::Resume { t, .. }
            | Delivery::RecvDone { t, .. }
            | Delivery::Resample { t } => t,
        }
    }
}

/// Per-node delivery queues plus the list of nodes touched this round,
/// so the run loop can drain and re-activate in O(deliveries) instead
/// of scanning every node's (overwhelmingly empty) queue each round.
struct Inboxes {
    v: Vec<Vec<Delivery>>,
    touched: Vec<usize>,
    /// Earliest delivery time pushed since the last drain; read at the
    /// LBTS point (before server replies are pushed) as the round's
    /// undelivered-inbox bound.
    min_t: SimTime,
}

impl Inboxes {
    fn new(n_nodes: usize) -> Self {
        Inboxes {
            v: (0..n_nodes).map(|_| Vec::new()).collect(),
            touched: Vec::new(),
            min_t: SimTime::MAX,
        }
    }

    fn push(&mut self, node: usize, d: Delivery) {
        self.min_t = self.min_t.min(d.t());
        self.touched.push(node);
        self.v[node].push(d);
    }
}

/// Node-local events (per-node heap).
#[derive(Debug, Clone, Copy)]
enum NEv {
    Resume(u32),
    ResumeBarrier(u32, u32),
    ComputeDone(u32),
    AcceptDone(IoId),
    ExtDone(IoId),
    RecvDone(u32, u64),
    Drain(IoId, u64),
    FlushDone(u32),
    Resample,
}

#[derive(Debug, Clone, Copy)]
struct CurOp {
    call: CallKind,
    fd: i32,
    offset: u64,
    bytes: u64,
    open_file: Option<u32>,
}

struct RankSt {
    pc: usize,
    fdt: FdTable,
    op_start: SimTime,
    cur: Option<CurOp>,
    finished: bool,
    phase: u32,
}

/// An in-flight I/O on a node shard.
struct IoSt {
    r: u32,
    file: u32,
    offset: u64,
    len: u64,
    stream: u64,
    noise: f64,
    stretch: f64,
    severity: u32,
    pressure: bool,
    accepted: u64,
    granted_at: SimTime,
    ingest_done: SimTime,
    sync: bool,
    /// Outstanding write-back batches.
    wb_out: u32,
    /// The call already returned to the application.
    returned: bool,
    /// Data I/O (holds a node token; meta ops bypass it).
    is_data: bool,
    is_read: bool,
}

/// Read-only run context shared by all node shards.
struct Env<'a> {
    job: &'a Job,
    fs: &'a FsConfig,
    mpi: &'a MpiConfig,
    layouts: Vec<StripeLayout>,
    shared: Vec<bool>,
}

/// One compute node as a conservative mini-DES.
struct NodeSim {
    id: u32,
    /// First global rank on this node (ranks are contiguous per node).
    rank0: u32,
    ranks: Vec<RankSt>,
    node: Node,
    rng: SimRng,
    injector: Option<PlanInjector>,
    readahead: ReadaheadTracker,
    degraded_streams: FxHashSet<u64>,
    heap: EventQueue<NEv>,
    ios: FxHashMap<IoId, IoSt>,
    next_io: IoId,
    records: Vec<Record>,
    stats: FsStats,
    /// Outstanding write-back batches node-wide (flush quiescence).
    wr_out: u32,
    flush_waiters: Vec<u32>,
    /// Issue times of server requests emitted this round; together with
    /// [`NodeSim::base_horizon`] they form the conservative horizon.
    /// Cleared at round start (prior requests move to the run loop's
    /// deferral pool, which sets `base_horizon`).
    r_pending: BTreeSet<(SimTime, u64)>,
    /// Earliest issue time of this node's requests still deferred in the
    /// run loop's pool (awaiting the global lookahead bound). Set
    /// serially before each round; `SimTime::MAX` when none.
    base_horizon: SimTime,
    inbox: Vec<Delivery>,
    out_r: Vec<RReq>,
    out_send: Vec<MsgSend>,
    out_recv: Vec<RecvReq>,
    out_arrival: Vec<(u32, SimTime)>,
    finished: u32,
    processed: u64,
    max_t: SimTime,
    req_seq: u64,
    pend_tok: u64,
    extent_scratch: Vec<Extent>,
}

/// Stretch a buffered write's acceptance interval by its grant-pacing
/// factor (same formula as the classic engine).
fn stretch_accept(granted: SimTime, done: SimTime, stretch: f64) -> SimTime {
    granted + done.since(granted).scale(stretch)
}

/// Bytes to accept from a blocked/partial write given `free` cache,
/// rounded **down to a stripe boundary** when the I/O cannot finish in
/// this grant — so write-back chunks keep full-stripe extents and an
/// aligned IOR never pays artificial RAID partial-stripe penalties at
/// arbitrary cache-chunk edges.
fn aligned_take(io_offset: u64, io_len: u64, accepted: u64, free: u64, stripe: u64) -> u64 {
    let remaining = io_len - accepted;
    let take = free.min(remaining);
    if take == remaining {
        return take;
    }
    let pos = io_offset + accepted;
    let end = pos + take;
    let aligned_end = end - (end % stripe);
    if aligned_end > pos {
        aligned_end - pos
    } else {
        take // sub-stripe trickle: better than no progress
    }
}

impl NodeSim {
    fn new(id: u32, total_ranks: u32, tpn: u32, seed: u64, plan: Option<&FaultPlan>) -> Self {
        let rank0 = id * tpn;
        let nranks = total_ranks.saturating_sub(rank0).min(tpn);
        let ranks = (0..nranks)
            .map(|_| RankSt {
                pc: 0,
                fdt: FdTable::new(),
                op_start: SimTime::ZERO,
                cur: None,
                finished: false,
                phase: 0,
            })
            .collect();
        NodeSim {
            id,
            rank0,
            ranks,
            node: Node::new(tpn),
            rng: SimRng::keyed(seed, LANE_NODE, id as u64),
            injector: plan.map(|p| p.keyed_injector(seed, LANE_NODE_FAULT, id as u64)),
            readahead: ReadaheadTracker::new(),
            degraded_streams: FxHashSet::default(),
            heap: EventQueue::new(),
            ios: FxHashMap::default(),
            next_io: 1,
            records: Vec::new(),
            stats: FsStats::default(),
            wr_out: 0,
            flush_waiters: Vec::new(),
            r_pending: BTreeSet::new(),
            base_horizon: SimTime::MAX,
            inbox: Vec::new(),
            out_r: Vec::new(),
            out_send: Vec::new(),
            out_recv: Vec::new(),
            out_arrival: Vec::new(),
            finished: 0,
            processed: 0,
            max_t: SimTime::ZERO,
            req_seq: 0,
            pend_tok: 0,
            extent_scratch: Vec::new(),
        }
    }

    fn stream_of(&self, r: u32, fd: i32) -> u64 {
        ((self.rank0 + r) as u64) << 20 | (fd.max(0) as u64)
    }

    fn fd_of(&self, r: u32, file: u32) -> i32 {
        let fdt = &self.ranks[r as usize].fdt;
        for fd in 3..(3 + fdt.opened_total() as i32) {
            if let Some(of) = fdt.get(fd) {
                if of.file == file {
                    return fd;
                }
            }
        }
        -1
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        r: u32,
        call: CallKind,
        fd: i32,
        offset: u64,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    ) {
        self.max_t = self.max_t.max(end);
        self.records.push(Record {
            rank: self.rank0 + r,
            call,
            fd,
            offset,
            bytes,
            start_ns: start.nanos(),
            end_ns: end.nanos(),
            phase: self.ranks[r as usize].phase,
        });
    }

    /// Emit a server request and register its *reply floor* — issue time
    /// plus a lower bound on the reply delay — in the horizon. `floor`
    /// must lower-bound the reply delay; a strictly positive guard keeps
    /// the run loop's lookahead advancing even for zero-demand requests.
    fn send_req(&mut self, t: SimTime, io: IoId, floor: SimSpan, kind: RReqKind) {
        let seq = self.req_seq;
        self.req_seq += 1;
        let floor = floor.max(SimSpan::from_secs_f64(1e-9));
        self.out_r.push(RReq {
            node: self.id,
            io,
            t,
            seq,
            floor,
            kind,
        });
        let tok = self.pend_tok;
        self.pend_tok += 1;
        self.r_pending.insert((t + floor, tok));
    }

    /// The conservative horizon: the earliest *reply floor* of any
    /// not-yet-answered server request (this round's emissions plus the
    /// pool-deferred `base_horizon`). Every reply lands at or after its
    /// floor, so events strictly before the horizon can never be
    /// invalidated — this is the engine's lookahead, and it is what lets
    /// a node run `floor`-deep past an outstanding request instead of
    /// stalling at the issue time (lockstep). Blocking receives park
    /// only their own rank — they never gate the node (the matching
    /// send may be rounds away, or on this very node), and their
    /// completions are ordinary next-round deliveries.
    fn horizon(&self) -> SimTime {
        self.r_pending
            .first()
            .map(|&(t, _)| t)
            .unwrap_or(SimTime::MAX)
            .min(self.base_horizon)
    }

    fn quiescent(&self) -> bool {
        self.wr_out == 0 && self.node.dirty == 0 && self.node.blocked.is_empty()
    }

    fn apply_inbox(&mut self) {
        let inbox = std::mem::take(&mut self.inbox);
        for d in inbox {
            match d {
                Delivery::Done { io, t } => {
                    let key = 2 + self.ios[&io].r as u64;
                    self.heap.push_keyed(t, key, NEv::ExtDone(io));
                }
                Delivery::Drain { io, t, bytes } => {
                    self.heap.push_keyed(t, 1, NEv::Drain(io, bytes));
                }
                Delivery::Resume { r, t, phase } => {
                    self.heap
                        .push_keyed(t, 2 + r as u64, NEv::ResumeBarrier(r, phase));
                }
                Delivery::RecvDone { r, t, bytes } => {
                    self.heap
                        .push_keyed(t, 2 + r as u64, NEv::RecvDone(r, bytes));
                }
                Delivery::Resample { t } => {
                    self.heap.push_keyed(t, 0, NEv::Resample);
                }
            }
        }
    }

    /// One round's node phase: apply deliveries, then drain the heap
    /// strictly below the conservative horizon (a reply may land exactly
    /// *at* a floor, so an event at the horizon could still be preempted
    /// by a same-time, lower-key delivery).
    fn node_phase(&mut self, env: &Env) {
        self.r_pending.clear();
        self.apply_inbox();
        while let Some(t) = self.heap.peek_time() {
            if t >= self.horizon() {
                break;
            }
            let (t, ev) = self.heap.pop().expect("peeked event");
            self.processed += 1;
            self.max_t = self.max_t.max(t);
            self.handle(t, ev, env);
        }
    }
}

impl NodeSim {
    fn handle(&mut self, t: SimTime, ev: NEv, env: &Env) {
        match ev {
            NEv::Resample => {
                self.node.resample(
                    &mut self.rng,
                    &env.fs.discipline_weights,
                    env.fs.tasks_per_node,
                );
            }
            NEv::ResumeBarrier(r, phase) => {
                self.ranks[r as usize].phase = phase;
                self.step_rank(t, r, env);
            }
            NEv::Resume(r) => self.step_rank(t, r, env),
            NEv::ComputeDone(r) => self.complete_op(t, r, 0, env),
            NEv::RecvDone(r, bytes) => self.complete_op(t, r, bytes, env),
            NEv::AcceptDone(io) => {
                let (r, cleanup) = {
                    let st = self.ios.get_mut(&io).expect("accepted io");
                    st.returned = true;
                    (st.r, st.wb_out == 0)
                };
                if cleanup {
                    self.ios.remove(&io);
                }
                self.release_token(t, env);
                self.complete_op(t, r, 0, env);
            }
            NEv::ExtDone(io) => {
                let st = self.ios.remove(&io).expect("ext io");
                if st.is_data {
                    self.release_token(t, env);
                }
                self.complete_op(t, st.r, 0, env);
            }
            NEv::Drain(io, bytes) => {
                self.node.drain_dirty(t, bytes);
                self.wr_out -= 1;
                let cleanup = {
                    let st = self.ios.get_mut(&io).expect("drain io");
                    st.wb_out -= 1;
                    st.wb_out == 0 && st.returned
                };
                if cleanup {
                    self.ios.remove(&io);
                }
                self.wake_blocked(t, env);
                if self.quiescent() && !self.flush_waiters.is_empty() {
                    let waiters = std::mem::take(&mut self.flush_waiters);
                    for r in waiters {
                        self.heap.push_keyed(t, 2 + r as u64, NEv::FlushDone(r));
                    }
                }
            }
            NEv::FlushDone(r) => self.complete_op(t, r, 0, env),
        }
    }

    /// The rank's blocking call returned: record it and keep stepping.
    /// `bytes_override` carries receive sizes (recorded bytes of a recv
    /// depend on which side blocked, decided by the coordinator).
    fn complete_op(&mut self, t: SimTime, r: u32, bytes_override: u64, env: &Env) {
        let cur = self.ranks[r as usize]
            .cur
            .take()
            .expect("completion without pending op");
        let start = self.ranks[r as usize].op_start;
        let mut fd = cur.fd;
        if let Some(file) = cur.open_file {
            fd = self.ranks[r as usize].fdt.open(file, format!("file{file}"));
        }
        if cur.call == CallKind::Close {
            self.ranks[r as usize].fdt.close(cur.fd);
        }
        let bytes = if cur.call == CallKind::Recv {
            bytes_override
        } else {
            cur.bytes
        };
        self.record(r, cur.call, fd, cur.offset, bytes, start, t);
        self.ranks[r as usize].pc += 1;
        self.step_rank(t, r, env);
    }

    fn release_token(&mut self, t: SimTime, env: &Env) {
        if let Some(next) = self.node.release(&mut self.rng) {
            self.grant_io(t, next, env);
        }
    }

    /// Execute ops for local rank `r` starting at its pc until one blocks.
    fn step_rank(&mut self, t: SimTime, r: u32, env: &Env) {
        loop {
            let ri = r as usize;
            let pc = self.ranks[ri].pc;
            let prog = &env.job.programs[(self.rank0 + r) as usize];
            let Some(op) = prog.ops.get(pc).cloned() else {
                if !self.ranks[ri].finished {
                    self.ranks[ri].finished = true;
                    self.finished += 1;
                }
                return;
            };
            match op {
                Op::Seek { file, offset } => {
                    let fd = self.fd_of(r, file);
                    self.ranks[ri].fdt.seek(fd, offset);
                    self.record(r, CallKind::Seek, fd, offset, 0, t, t);
                    self.ranks[ri].pc += 1;
                }
                Op::Open { file } => {
                    self.submit_meta(t, r, file, CallKind::Open, -1, 0, 0, Some(file), env);
                    return;
                }
                Op::Close { file } => {
                    let fd = self.fd_of(r, file);
                    self.readahead.close_stream(self.stream_of(r, fd));
                    self.submit_meta(t, r, file, CallKind::Close, fd, 0, 0, None, env);
                    return;
                }
                Op::MetaRead {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(r, file);
                    self.submit_meta(t, r, file, CallKind::MetaRead, fd, offset, bytes, None, env);
                    return;
                }
                Op::MetaWrite {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(r, file);
                    self.submit_meta(
                        t,
                        r,
                        file,
                        CallKind::MetaWrite,
                        fd,
                        offset,
                        bytes,
                        None,
                        env,
                    );
                    return;
                }
                Op::Write { file, bytes } => {
                    let fd = self.fd_of(r, file);
                    let offset = self.ranks[ri].fdt.advance(fd, bytes).unwrap_or(0);
                    self.submit_data(t, r, false, file, offset, bytes, fd, env);
                    return;
                }
                Op::WriteAt {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(r, file);
                    self.submit_data(t, r, false, file, offset, bytes, fd, env);
                    return;
                }
                Op::Read { file, bytes } => {
                    let fd = self.fd_of(r, file);
                    let offset = self.ranks[ri].fdt.advance(fd, bytes).unwrap_or(0);
                    self.submit_data(t, r, true, file, offset, bytes, fd, env);
                    return;
                }
                Op::ReadAt {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(r, file);
                    self.submit_data(t, r, true, file, offset, bytes, fd, env);
                    return;
                }
                Op::Flush { file } => {
                    let fd = self.fd_of(r, file);
                    self.stats.flushes += 1;
                    if self.quiescent() {
                        self.record(r, CallKind::Flush, fd, 0, 0, t, t);
                        self.ranks[ri].pc += 1;
                    } else {
                        self.ranks[ri].op_start = t;
                        self.ranks[ri].cur = Some(CurOp {
                            call: CallKind::Flush,
                            fd,
                            offset: 0,
                            bytes: 0,
                            open_file: None,
                        });
                        self.flush_waiters.push(r);
                        return;
                    }
                }
                Op::Compute { span } => {
                    self.ranks[ri].op_start = t;
                    self.ranks[ri].cur = Some(CurOp {
                        call: CallKind::Compute,
                        fd: -1,
                        offset: 0,
                        bytes: 0,
                        open_file: None,
                    });
                    self.heap
                        .push_keyed(t + span, 2 + r as u64, NEv::ComputeDone(r));
                    return;
                }
                Op::Barrier => {
                    self.out_arrival.push((self.rank0 + r, t));
                    self.ranks[ri].pc += 1;
                    return;
                }
                Op::Send { to, bytes } => {
                    let mut cost = SimSpan::from_secs_f64(env.mpi.latency)
                        + SimSpan::for_bytes(bytes, env.mpi.bw);
                    if let Some(f) = self.injector.as_mut() {
                        cost += f.msg_drop_delay(t);
                    }
                    let done = t + cost;
                    self.record(r, CallKind::Send, -1, 0, bytes, t, done);
                    self.ranks[ri].pc += 1;
                    self.out_send.push(MsgSend {
                        from: self.rank0 + r,
                        to,
                        done,
                        bytes,
                    });
                    self.heap.push_keyed(done, 2 + r as u64, NEv::Resume(r));
                    return;
                }
                Op::Recv { from } => {
                    self.ranks[ri].op_start = t;
                    self.ranks[ri].cur = Some(CurOp {
                        call: CallKind::Recv,
                        fd: -1,
                        offset: 0,
                        bytes: 0,
                        open_file: None,
                    });
                    self.out_recv.push(RecvReq {
                        from,
                        rank: self.rank0 + r,
                        issue: t,
                    });
                    return;
                }
            }
        }
    }

    /// Park the rank on a metadata transaction through the server plane.
    #[allow(clippy::too_many_arguments)]
    fn submit_meta(
        &mut self,
        t: SimTime,
        r: u32,
        file: u32,
        call: CallKind,
        fd: i32,
        offset: u64,
        bytes: u64,
        open_file: Option<u32>,
        env: &Env,
    ) {
        self.stats.meta_ops += 1;
        let median = if call == CallKind::MetaWrite {
            env.fs.meta_sync_median
        } else {
            env.fs.mds_latency_median
        };
        let demand = SimSpan::from_secs_f64(self.rng.lognormal(median, env.fs.meta_sigma));
        let (kind, floor) = if call == CallKind::MetaWrite {
            let layout = env.layouts[file as usize];
            let ost = layout.ost_of_stripe(layout.stripe_of(offset)) as u32;
            (
                RReqKind::MetaWrite {
                    demand,
                    ost,
                    stream: self.stream_of(r, fd),
                    bytes,
                },
                demand + SimSpan::for_bytes(bytes, env.fs.ost_bw),
            )
        } else {
            (RReqKind::Meta { demand }, demand)
        };
        let io = self.next_io;
        self.next_io += 1;
        self.ios.insert(
            io,
            IoSt {
                r,
                file,
                offset,
                len: bytes,
                stream: self.stream_of(r, fd),
                noise: 1.0,
                stretch: 1.0,
                severity: 0,
                pressure: false,
                accepted: 0,
                granted_at: t,
                ingest_done: SimTime::ZERO,
                sync: false,
                wb_out: 0,
                returned: false,
                is_data: false,
                is_read: false,
            },
        );
        self.ranks[r as usize].op_start = t;
        self.ranks[r as usize].cur = Some(CurOp {
            call,
            fd,
            offset,
            bytes,
            open_file,
        });
        self.send_req(t, io, floor, kind);
    }

    /// Submit a data I/O: classify, draw per-call noise, take the node
    /// token (or queue), then build the server request on grant.
    #[allow(clippy::too_many_arguments)]
    fn submit_data(
        &mut self,
        t: SimTime,
        r: u32,
        is_read: bool,
        file: u32,
        offset: u64,
        len: u64,
        fd: i32,
        env: &Env,
    ) {
        let stream = self.stream_of(r, fd);
        let severity = if is_read {
            let mode = self
                .readahead
                .observe_read(&env.fs.readahead, stream, offset, len);
            if mode == ReadMode::Normal {
                self.degraded_streams.remove(&stream);
            }
            match mode {
                ReadMode::Strided { severity } => severity,
                ReadMode::Normal => 0,
            }
        } else {
            0
        };
        let noise = self.rng.lognormal(1.0, env.fs.call_noise_sigma);
        let pressure = self
            .node
            .under_pressure(t, env.fs.cache_bytes, env.fs.pressure_frac);
        let stretch = self.rng.lognormal(1.0, env.fs.grant_noise_sigma).max(1.0);
        let io = self.next_io;
        self.next_io += 1;
        self.ios.insert(
            io,
            IoSt {
                r,
                file,
                offset,
                len,
                stream,
                noise,
                stretch,
                severity,
                pressure,
                accepted: 0,
                granted_at: t,
                ingest_done: SimTime::ZERO,
                sync: false,
                wb_out: 0,
                returned: false,
                is_data: true,
                is_read,
            },
        );
        self.ranks[r as usize].op_start = t;
        self.ranks[r as usize].cur = Some(CurOp {
            call: if is_read {
                CallKind::Read
            } else {
                CallKind::Write
            },
            fd,
            offset,
            bytes: len,
            open_file: None,
        });
        if self.node.acquire(io) {
            self.grant_io(t, io, env);
        }
    }
}

impl NodeSim {
    /// The node I/O token was granted: build the server request(s).
    fn grant_io(&mut self, t: SimTime, io: IoId, env: &Env) {
        let (r, file, offset, len, stream, noise, severity, pressure, stretch, is_read) = {
            let st = self.ios.get_mut(&io).expect("granted io");
            st.granted_at = t;
            (
                st.r,
                st.file,
                st.offset,
                st.len,
                st.stream,
                st.noise,
                st.severity,
                st.pressure,
                st.stretch,
                st.is_read,
            )
        };
        let layout = env.layouts[file as usize];
        let shared = env.shared[file as usize];
        let stripe = env.fs.stripe_bytes;
        if is_read {
            let degraded = severity > 0 && (pressure || self.degraded_streams.contains(&stream));
            let page_cost = if degraded {
                self.stats.degraded_reads += 1;
                self.degraded_streams.insert(stream);
                Some(self.rng.lognormal(
                    env.fs.readahead.page_cost_median * severity as f64,
                    env.fs.readahead.page_cost_sigma,
                ))
            } else {
                None
            };
            self.stats.bytes_read += len;
            let layout2 = layout;
            layout2.extents_into(offset, len, &mut self.extent_scratch);
            let (batches, floor, io_extra) = self.build_batches(t, false, page_cost, env);
            let window = if page_cost.is_some() {
                1 // degraded reads serialize, as in the classic engine
            } else {
                self.node.io_window(env.fs.node_window)
            };
            self.send_req(
                t,
                io,
                floor,
                RReqKind::Data {
                    is_read: true,
                    stream,
                    noise,
                    window,
                    batches,
                    io_extra,
                    lock: None,
                    reply: Reply::Done,
                },
            );
            return;
        }
        // Write path: decide sync vs buffered.
        layout.extents_into(offset, len, &mut self.extent_scratch);
        let partials = self
            .extent_scratch
            .iter()
            .filter(|e| !e.is_full_stripe(stripe))
            .count();
        let sync = shared && partials * 4 > self.extent_scratch.len();
        self.stats.bytes_written += len;
        if sync {
            self.stats.sync_writes += 1;
            {
                let st = self.ios.get_mut(&io).expect("sync io");
                st.sync = true;
                st.accepted = len;
            }
            let (batches, floor, io_extra) = self.build_batches(t, true, None, env);
            let lock = shared.then(|| LockReq {
                file,
                s0: layout.stripe_of(offset),
                s1: layout.stripe_of(offset + len - 1),
                lo_partial: offset % stripe != 0,
                hi_partial: (offset + len) % stripe != 0,
            });
            self.send_req(
                t,
                io,
                floor,
                RReqKind::Data {
                    is_read: false,
                    stream,
                    noise,
                    window: self.node.io_window(env.fs.node_window),
                    batches,
                    io_extra,
                    lock,
                    reply: Reply::Done,
                },
            );
            return;
        }
        // Buffered: accept into the page cache, spill write-back chunks.
        let free = self.node.free_cache(env.fs.cache_bytes);
        let take = aligned_take(offset, len, 0, free, stripe);
        let ingest_done = self
            .node
            .ingest
            .submit(t, SimSpan::for_bytes(len, env.fs.ingest_bw));
        {
            let st = self.ios.get_mut(&io).expect("buffered io");
            st.accepted = take;
            st.ingest_done = ingest_done;
        }
        self.node.add_dirty(t, take);
        if take > 0 {
            self.submit_wb_chunk(t, io, offset, take, env);
        }
        if take == len {
            let accept = stretch_accept(t, ingest_done.max(t), stretch);
            self.heap
                .push_keyed(accept, 2 + r as u64, NEv::AcceptDone(io));
        } else {
            self.node.blocked.push_back(io);
        }
    }

    /// Turn the extents in `extent_scratch` into per-extent RPC batches
    /// (one [`Batch`] per stripe RPC, as in the classic engine), charging
    /// NIC service per extent. Returns the batches, the request's
    /// deterministic service floor (the smallest extent's pure
    /// fabric + OST bandwidth demand), and the summed client-side
    /// degraded-read page cost.
    fn build_batches(
        &mut self,
        t: SimTime,
        write: bool,
        page_cost: Option<f64>,
        env: &Env,
    ) -> (Vec<Batch>, SimSpan, SimSpan) {
        let stripe = env.fs.stripe_bytes;
        let page_bytes = env.fs.readahead.page_bytes;
        let mut batches: Vec<Batch> = Vec::new();
        let mut io_extra = SimSpan::ZERO;
        let mut floor: Option<SimSpan> = None;
        let extents = std::mem::take(&mut self.extent_scratch);
        for ex in &extents {
            let nic_demand = SimSpan::for_bytes(ex.len, env.fs.nic_bw);
            let t_nic = self.node.nic.submit(t, nic_demand);
            let mut svc_extra = SimSpan::ZERO;
            if write && !ex.is_full_stripe(stripe) {
                svc_extra +=
                    SimSpan::from_secs_f64(self.rng.lognormal(env.fs.raid_partial_median, 0.3));
            }
            let mut client_extra = SimSpan::ZERO;
            if let Some(f) = self.injector.as_mut() {
                client_extra = f.rpc_drop_delay(t) + f.nic_extra(t, self.id, nic_demand);
            }
            if let Some(pc) = page_cost {
                io_extra += SimSpan::from_secs_f64(ex.len.div_ceil(page_bytes) as f64 * pc);
            }
            self.stats.data_rpcs += 1;
            let lower = SimSpan::for_bytes(ex.len, env.fs.fabric_bw)
                + SimSpan::for_bytes(ex.len, env.fs.ost_bw);
            floor = Some(floor.map_or(lower, |f| f.min(lower)));
            batches.push(Batch {
                ost: ex.ost as u32,
                bytes: ex.len,
                t_nic,
                svc_extra,
                client_extra,
            });
        }
        self.extent_scratch = extents;
        (batches, floor.unwrap_or(SimSpan::ZERO), io_extra)
    }

    /// Spill one accepted chunk of a buffered write to the server plane
    /// as write-back batches that will drain the dirty pages.
    fn submit_wb_chunk(&mut self, t: SimTime, io: IoId, chunk_off: u64, chunk_len: u64, env: &Env) {
        let (file, io_offset, io_len, stream, noise) = {
            let st = &self.ios[&io];
            (st.file, st.offset, st.len, st.stream, st.noise)
        };
        let layout = env.layouts[file as usize];
        let shared = env.shared[file as usize];
        let stripe = env.fs.stripe_bytes;
        layout.extents_into(chunk_off, chunk_len, &mut self.extent_scratch);
        let (batches, floor, _) = self.build_batches(t, true, None, env);
        let lock = shared.then(|| LockReq {
            file,
            s0: layout.stripe_of(chunk_off),
            s1: layout.stripe_of(chunk_off + chunk_len - 1),
            lo_partial: chunk_off == io_offset && io_offset % stripe != 0,
            hi_partial: chunk_off + chunk_len == io_offset + io_len
                && (io_offset + io_len) % stripe != 0,
        });
        let n = batches.len() as u32;
        self.ios.get_mut(&io).expect("wb io").wb_out += n;
        self.wr_out += n;
        self.send_req(
            t,
            io,
            floor,
            RReqKind::Data {
                is_read: false,
                stream,
                noise,
                window: self.node.io_window(env.fs.node_window),
                batches,
                io_extra: SimSpan::ZERO,
                lock,
                reply: Reply::Drain,
            },
        );
    }

    /// Cache space freed: feed the blocked queue round-robin.
    fn wake_blocked(&mut self, t: SimTime, env: &Env) {
        loop {
            let free = self.node.free_cache(env.fs.cache_bytes);
            if free == 0 {
                return;
            }
            let Some(&front) = self.node.blocked.front() else {
                return;
            };
            let (r, offset, len, accepted0, granted_at, ingest_done, stretch) = {
                let st = &self.ios[&front];
                (
                    st.r,
                    st.offset,
                    st.len,
                    st.accepted,
                    st.granted_at,
                    st.ingest_done,
                    st.stretch,
                )
            };
            let take = aligned_take(offset, len, accepted0, free, env.fs.stripe_bytes);
            self.ios.get_mut(&front).expect("blocked io").accepted += take;
            self.node.add_dirty(t, take);
            if self
                .node
                .under_pressure(t, env.fs.cache_bytes, env.fs.pressure_frac)
            {
                self.node.note_pressure(t, env.fs.pressure_hold);
            }
            if take > 0 {
                self.submit_wb_chunk(t, front, offset + accepted0, take, env);
            }
            if accepted0 + take == len {
                self.node.blocked.pop_front();
                let accept = stretch_accept(granted_at, ingest_done.max(t), stretch);
                self.heap
                    .push_keyed(accept, 2 + r as u64, NEv::AcceptDone(front));
            } else {
                // Partial progress: rotate so peers get cache too.
                let f = self.node.blocked.pop_front().expect("front exists");
                self.node.blocked.push_back(f);
                return;
            }
        }
    }
}

/// The shared server plane: fabric, OSTs, MDS, DLM, and the extent-lock
/// map. Processed serially in `(t, node, seq)` order every round.
struct Servers {
    fabric: ServiceCenter,
    dlm: ServiceCenter,
    mds: MultiServiceCenter,
    osts: Vec<Ost>,
    /// Per-file interval lock map: start stripe → (end exclusive, owner).
    locks: FxHashMap<u32, BTreeMap<u64, (u64, u32)>>,
    acquired: u64,
    contended: u64,
    revoked: u64,
    rng: SimRng,
    injector: Option<PlanInjector>,
    processed: u64,
}

impl Servers {
    fn new(seed: u64, fs: &FsConfig, plan: Option<&FaultPlan>) -> Self {
        Servers {
            fabric: ServiceCenter::new(),
            dlm: ServiceCenter::new(),
            mds: MultiServiceCenter::new(fs.mds_threads),
            osts: (0..fs.n_osts).map(|_| Ost::new()).collect(),
            locks: FxHashMap::default(),
            acquired: 0,
            contended: 0,
            revoked: 0,
            rng: SimRng::keyed(seed, LANE_SERVER, 0),
            injector: plan.map(|p| p.keyed_injector(seed, LANE_SERVER_FAULT, 0)),
            processed: 0,
        }
    }

    /// Take or extend the extent lock for a write chunk. Returns the
    /// number of read-modify-write stripes and whether any foreign owner
    /// had to be revoked (one DLM round per conflicted chunk).
    fn lock_range(&mut self, req: &LockReq, node: u32) -> (u64, bool) {
        let map = self.locks.entry(req.file).or_default();
        let lo = req.s0;
        let hi = req.s1 + 1;
        // Collect every interval overlapping [lo, hi).
        let mut overlapped: Vec<(u64, u64, u32)> = Vec::new();
        if let Some((&s, &(e, o))) = map.range(..lo).next_back() {
            if e > lo {
                overlapped.push((s, e, o));
            }
        }
        for (&s, &(e, o)) in map.range(lo..hi) {
            overlapped.push((s, e, o));
        }
        let mut self_cov = 0u64;
        let mut foreign = 0u64;
        let mut lo_owner = None;
        let mut hi_owner = None;
        for &(s, e, o) in &overlapped {
            let ov = e.min(hi) - s.max(lo);
            if o == node {
                self_cov += ov;
            } else {
                foreign += ov;
            }
            if s <= lo && lo < e {
                lo_owner = Some(o);
            }
            if s < hi && hi - 1 < e {
                hi_owner = Some(o);
            }
        }
        self.acquired += (hi - lo) - self_cov;
        self.contended += foreign;
        let lo_foreign = lo_owner.is_some_and(|o| o != node);
        let hi_foreign = hi_owner.is_some_and(|o| o != node);
        let rmw = if req.s0 == req.s1 {
            u64::from((req.lo_partial || req.hi_partial) && lo_foreign)
        } else {
            u64::from(req.lo_partial && lo_foreign) + u64::from(req.hi_partial && hi_foreign)
        };
        self.revoked += rmw;
        // Rebuild: trim overlapped intervals, insert ours, merge with
        // adjacent same-owner neighbors.
        for &(s, _, _) in &overlapped {
            map.remove(&s);
        }
        let mut nlo = lo;
        let mut nhi = hi;
        for &(s, e, o) in &overlapped {
            if s < lo {
                map.insert(s, (lo, o));
            }
            if e > hi {
                map.insert(hi, (e, o));
            }
            let _ = (s, e, o);
        }
        if let Some((&s, &(e, o))) = map.range(..nlo).next_back() {
            if e == nlo && o == node {
                nlo = s;
                map.remove(&s);
            }
        }
        if let Some(&(e, o)) = map.get(&nhi) {
            if o == node {
                nhi = e;
                map.remove(&hi);
            }
        }
        map.insert(nlo, (nhi, node));
        (rmw, foreign > 0)
    }

    /// Answer every outstanding request in `(t, node, seq)` order.
    fn process(&mut self, reqs: &mut Vec<RReq>, inboxes: &mut Inboxes, fs: &FsConfig) {
        reqs.sort_by_key(|r| (r.t, r.node, r.seq));
        for req in reqs.drain(..) {
            self.processed += 1;
            let node = req.node as usize;
            match req.kind {
                RReqKind::Meta { demand } => {
                    let mut d = demand;
                    if let Some(f) = self.injector.as_mut() {
                        d += f.mds_extra(req.t, demand);
                    }
                    let done = self.mds.submit(req.t, d);
                    inboxes.push(
                        node,
                        Delivery::Done {
                            io: req.io,
                            t: done,
                        },
                    );
                }
                RReqKind::MetaWrite {
                    demand,
                    ost,
                    stream,
                    bytes,
                } => {
                    let mut d = demand;
                    if let Some(f) = self.injector.as_mut() {
                        d += f.mds_extra(req.t, demand);
                    }
                    let t1 = self.mds.submit(req.t, d);
                    let done = self.osts[ost as usize].submit(
                        t1,
                        bytes,
                        stream,
                        false,
                        1.0,
                        SimSpan::ZERO,
                        fs,
                        &mut self.rng,
                    );
                    inboxes.push(
                        node,
                        Delivery::Done {
                            io: req.io,
                            t: done,
                        },
                    );
                }
                RReqKind::Data {
                    is_read,
                    stream,
                    noise,
                    window,
                    mut batches,
                    io_extra,
                    lock,
                    reply,
                } => {
                    let mut lock_wait = SimTime::ZERO;
                    if let Some(lreq) = lock {
                        let (rmw, conflict) = self.lock_range(&lreq, req.node);
                        if conflict {
                            let revoke = SimSpan::from_secs_f64(
                                self.rng.lognormal(fs.lock_revoke_latency, 0.3),
                            );
                            lock_wait = self.dlm.submit(req.t, revoke);
                        }
                        if rmw > 0 {
                            // Read back the partial stripes before writing.
                            let extra = SimSpan::for_bytes(rmw * fs.stripe_bytes, fs.ost_bw);
                            if let Some(b) = batches.first_mut() {
                                b.svc_extra += extra;
                            }
                        }
                    }
                    // Per-extent RPC chain, exactly the classic engine's
                    // granularity: fabric then OST per stripe, with the
                    // OST's stochastic overhead and stream/direction
                    // switch penalties drawn here, in served order. The
                    // client window pipelines: extent `k` may enter the
                    // fabric only after extent `k - window` completed,
                    // so a slow server compounds across an I/O.
                    let w = window.max(1) as usize;
                    let mut completions: Vec<SimTime> = Vec::with_capacity(batches.len());
                    let mut server_done = req.t;
                    for (k, b) in batches.iter().enumerate() {
                        let nominal = SimSpan::for_bytes(b.bytes, fs.fabric_bw);
                        let mut fab = nominal;
                        if let Some(f) = self.injector.as_mut() {
                            fab += f.fabric_extra(req.t, nominal);
                        }
                        let mut arrival = b.t_nic.max(lock_wait);
                        if k >= w {
                            arrival = arrival.max(completions[k - w]);
                        }
                        let t_fab = self.fabric.submit(arrival, fab);
                        let mut extra = b.svc_extra;
                        if let Some(f) = self.injector.as_mut() {
                            extra += f.ost_extra(
                                req.t,
                                b.ost as usize,
                                SimSpan::for_bytes(b.bytes, fs.ost_bw),
                                is_read,
                            );
                        }
                        let done_b = self.osts[b.ost as usize].submit(
                            t_fab,
                            b.bytes,
                            stream,
                            is_read,
                            noise,
                            extra,
                            fs,
                            &mut self.rng,
                        );
                        let vis = done_b + b.client_extra;
                        completions.push(vis);
                        server_done = server_done.max(vis);
                        if reply == Reply::Drain {
                            inboxes.push(
                                node,
                                Delivery::Drain {
                                    io: req.io,
                                    t: vis,
                                    bytes: b.bytes,
                                },
                            );
                        }
                    }
                    if reply == Reply::Done {
                        inboxes.push(
                            node,
                            Delivery::Done {
                                io: req.io,
                                t: server_done + io_extra,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Per-(sender, receiver) message channel state.
#[derive(Default)]
struct Chan {
    avail: VecDeque<(SimTime, u64)>,
    waiting: Option<(u32, SimTime)>,
}

/// Serial MPI coordinator: point-to-point matching and barrier releases.
struct Coord {
    ranks: u32,
    tpn: u32,
    arrivals: Vec<Option<SimTime>>,
    arrived: u32,
    barrier_idx: u32,
    channels: FxHashMap<(u32, u32), Chan>,
    records: Vec<Record>,
    rng: SimRng,
    max_t: SimTime,
}

impl Coord {
    fn new(ranks: u32, tpn: u32, seed: u64) -> Self {
        Coord {
            ranks,
            tpn,
            arrivals: vec![None; ranks as usize],
            arrived: 0,
            barrier_idx: 0,
            channels: FxHashMap::default(),
            records: Vec::new(),
            rng: SimRng::keyed(seed, LANE_COORD, 0),
            max_t: SimTime::ZERO,
        }
    }

    /// Match sends against receives (classic semantics: a waiting
    /// receiver records the send's bytes and ends at the send's
    /// completion; a queued message records zero bytes and ends at
    /// `max(avail, issue)`).
    fn p2p(&mut self, sends: &mut Vec<MsgSend>, recvs: &mut Vec<RecvReq>, inboxes: &mut Inboxes) {
        for s in sends.drain(..) {
            let ch = self.channels.entry((s.from, s.to)).or_default();
            if let Some((wrank, _)) = ch.waiting.take() {
                inboxes.push(
                    (wrank / self.tpn) as usize,
                    Delivery::RecvDone {
                        r: wrank % self.tpn,
                        t: s.done,
                        bytes: s.bytes,
                    },
                );
            } else {
                ch.avail.push_back((s.done, s.bytes));
            }
        }
        for rv in recvs.drain(..) {
            let ch = self.channels.entry((rv.from, rv.rank)).or_default();
            if let Some((avail_t, _bytes)) = ch.avail.pop_front() {
                inboxes.push(
                    (rv.rank / self.tpn) as usize,
                    Delivery::RecvDone {
                        r: rv.rank % self.tpn,
                        t: avail_t.max(rv.issue),
                        bytes: 0,
                    },
                );
            } else {
                debug_assert!(ch.waiting.is_none(), "multiple receivers on one channel");
                ch.waiting = Some((rv.rank, rv.issue));
            }
        }
    }

    /// Register barrier arrivals; release when every rank is in.
    fn barriers(
        &mut self,
        arrivals: &mut Vec<(u32, SimTime)>,
        inboxes: &mut Inboxes,
        mpi: &MpiConfig,
    ) {
        for (rank, t) in arrivals.drain(..) {
            debug_assert!(self.arrivals[rank as usize].is_none());
            self.arrivals[rank as usize] = Some(t);
            self.arrived += 1;
        }
        if self.ranks == 0 || self.arrived != self.ranks {
            return;
        }
        let rel = self
            .arrivals
            .iter()
            .map(|a| a.expect("all arrived"))
            .max()
            .expect("nonzero ranks");
        for rank in 0..self.ranks {
            let arrival = self.arrivals[rank as usize].take().expect("arrived");
            self.records.push(Record {
                rank,
                call: CallKind::Barrier,
                fd: -1,
                offset: 0,
                bytes: 0,
                start_ns: arrival.nanos(),
                end_ns: rel.nanos(),
                phase: self.barrier_idx,
            });
        }
        self.arrived = 0;
        for node in 0..inboxes.v.len() {
            inboxes.push(node, Delivery::Resample { t: rel });
        }
        for rank in 0..self.ranks {
            let jitter = SimSpan::from_secs_f64(self.rng.f64() * mpi.barrier_jitter);
            inboxes.push(
                (rank / self.tpn) as usize,
                Delivery::Resume {
                    r: rank % self.tpn,
                    t: rel + jitter,
                    phase: self.barrier_idx + 1,
                },
            );
        }
        self.barrier_idx += 1;
        self.max_t = self.max_t.max(rel);
    }
}

/// Run the node phase for every active node, on up to `workers`
/// threads. Per-node effects are identical regardless of worker count:
/// nodes share no mutable state and outputs are gathered in node-index
/// order, so threading changes wall-clock only.
fn run_phases(nodes: &mut [NodeSim], active: &[usize], env: &Env, workers: usize) {
    if workers <= 1 || active.len() <= 1 {
        for &i in active {
            nodes[i].node_phase(env);
        }
        return;
    }
    // Split the slice into disjoint &mut refs for the active nodes,
    // then let workers claim them via an atomic cursor (work stealing:
    // a slow node never idles the other workers).
    let mut refs: Vec<std::sync::Mutex<&mut NodeSim>> = Vec::with_capacity(active.len());
    let mut rest = nodes;
    let mut consumed = 0usize;
    for &i in active {
        let (_, tail) = rest.split_at_mut(i - consumed);
        let (node, tail) = tail.split_at_mut(1);
        refs.push(std::sync::Mutex::new(&mut node[0]));
        rest = tail;
        consumed = i + 1;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers.min(active.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(slot) = refs.get(i) else { break };
                slot.lock().expect("unpoisoned node slot").node_phase(env);
            });
        }
    })
    .expect("node phase panicked");
}

/// Execute `job` on the sharded engine with `shards` worker threads.
/// Bit-identical to itself at any shard count (including 1).
pub(crate) fn run_sharded(job: &Job, cfg: &RunConfig, shards: u32) -> Result<RunReport, RunError> {
    job.validate().map_err(RunError::InvalidJob)?;
    cfg.fs.validate().map_err(RunError::Config)?;
    let ranks = job.programs.len() as u32;
    let tpn = cfg.fs.tasks_per_node.max(1);
    let n_nodes = (ranks.div_ceil(tpn)).max(1) as usize;
    let plan = cfg.fault.as_ref().filter(|p| !p.is_empty());
    let env = Env {
        job,
        fs: &cfg.fs,
        mpi: &cfg.mpi,
        layouts: (0..job.files.len())
            .map(|i| StripeLayout::new(cfg.fs.stripe_bytes, cfg.fs.n_osts, (i * 7) % cfg.fs.n_osts))
            .collect(),
        shared: job.files.iter().map(|f| f.shared).collect(),
    };
    let mut nodes: Vec<NodeSim> = (0..n_nodes as u32)
        .map(|id| NodeSim::new(id, ranks, tpn, cfg.seed, plan))
        .collect();
    let mut servers = Servers::new(cfg.seed, &cfg.fs, plan);
    let mut coord = Coord::new(ranks, tpn, cfg.seed);
    for node in nodes.iter_mut() {
        node.inbox.push(Delivery::Resample { t: SimTime::ZERO });
    }
    for rank in 0..ranks {
        let jitter = SimSpan::from_secs_f64(coord.rng.f64() * cfg.mpi.barrier_jitter);
        nodes[(rank / tpn) as usize].inbox.push(Delivery::Resume {
            r: rank % tpn,
            t: SimTime::ZERO + jitter,
            phase: 0,
        });
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = (shards as usize).min(n_nodes).min(cores).max(1);
    // Requests deferred past the lookahead bound, keyed by service
    // order `(t, node, seq)`. Two side indexes keep every per-round cost
    // proportional to the round's *activity* rather than the fleet size:
    // `floors` orders the same requests by reply floor (`t + floor`) for
    // the LBTS bound, and `node_floors` carries each node's pooled floor
    // minimum into its persistent `base_horizon` — a node may keep
    // simulating up to (but not at) the earliest time a reply could
    // land. Both are updated only when requests enter or leave the pool.
    let mut pool: BTreeMap<(SimTime, u32, u64), RReq> = BTreeMap::new();
    let mut floors: BTreeSet<(SimTime, u32, u64)> = BTreeSet::new();
    let mut node_floors: Vec<BTreeSet<(SimTime, u64)>> =
        (0..n_nodes).map(|_| BTreeSet::new()).collect();
    let mut due: Vec<RReq> = Vec::new();
    let mut scratch: Vec<RReq> = Vec::new();
    let mut sends: Vec<MsgSend> = Vec::new();
    let mut recvs: Vec<RecvReq> = Vec::new();
    let mut arrivals: Vec<(u32, SimTime)> = Vec::new();
    let mut inboxes = Inboxes::new(n_nodes);
    // Cache of each node's next local event time, with a lazy min-heap
    // over it: only nodes that ran this round refresh their entry, and
    // stale heap tops are discarded on read.
    let mut peeks: Vec<SimTime> = vec![SimTime::MAX; n_nodes];
    let mut peek_heap: BinaryHeap<Reverse<(SimTime, u32)>> = BinaryHeap::new();
    // Every node starts active: the seed deliveries above are in.
    let mut active: Vec<usize> = (0..n_nodes).collect();
    loop {
        if active.is_empty() && pool.is_empty() {
            break;
        }
        run_phases(&mut nodes, &active, &env, workers);
        // Gather outputs in node-index order: the serial plane's input
        // order is fixed regardless of which worker ran which node.
        for &i in &active {
            scratch.append(&mut nodes[i].out_r);
            if !scratch.is_empty() {
                for q in scratch.drain(..) {
                    node_floors[i].insert((q.t + q.floor, q.seq));
                    floors.insert((q.t + q.floor, q.node, q.seq));
                    pool.insert((q.t, q.node, q.seq), q);
                }
                nodes[i].base_horizon = node_floors[i].first().expect("just inserted").0;
            }
            sends.append(&mut nodes[i].out_send);
            recvs.append(&mut nodes[i].out_recv);
            arrivals.append(&mut nodes[i].out_arrival);
            let p = nodes[i].heap.peek_time().unwrap_or(SimTime::MAX);
            peeks[i] = p;
            if p < SimTime::MAX {
                peek_heap.push(Reverse((p, i as u32)));
            }
        }
        coord.p2p(&mut sends, &mut recvs, &mut inboxes);
        coord.barriers(&mut arrivals, &mut inboxes, &cfg.mpi);
        // Conservative lookahead (LBTS): no request can ever be issued
        // before the minimum over (a) deferred requests' reply floors,
        // (b) undelivered inbox timestamps, and (c) every node's next
        // local event. Serving strictly below this bound reproduces the
        // classic engine's global-time service order: by the time a
        // request is served, every earlier-`t` request is in the pool,
        // so eager FIFO reservations are made in true `(t, node, seq)`
        // order — a late-round request can never queue behind a
        // future-time reservation.
        let mut lbts = floors.first().map_or(SimTime::MAX, |&(f, _, _)| f);
        lbts = lbts.min(inboxes.min_t);
        while let Some(&Reverse((t, i))) = peek_heap.peek() {
            if peeks[i as usize] == t {
                lbts = lbts.min(t);
                break;
            }
            peek_heap.pop();
        }
        while pool.first_key_value().is_some_and(|(k, _)| k.0 < lbts) {
            let ((t, node, seq), q) = pool.pop_first().expect("checked non-empty");
            let nf = &mut node_floors[node as usize];
            nf.remove(&(t + q.floor, seq));
            nodes[node as usize].base_horizon = nf.first().map_or(SimTime::MAX, |&(f, _)| f);
            floors.remove(&(t + q.floor, node, seq));
            due.push(q);
        }
        servers.process(&mut due, &mut inboxes, &cfg.fs);
        let had_active = !active.is_empty();
        active.clear();
        inboxes.touched.sort_unstable();
        inboxes.touched.dedup();
        for &i in &inboxes.touched {
            nodes[i].inbox.append(&mut inboxes.v[i]);
            active.push(i);
        }
        inboxes.touched.clear();
        inboxes.min_t = SimTime::MAX;
        // A round with no activity at all cannot make progress; bail to
        // the deadlock report rather than spin. (Unreachable when floors
        // are positive — see the progress argument above — but cheap.)
        if !had_active && active.is_empty() {
            break;
        }
    }
    let finished: u32 = nodes.iter().map(|n| n.finished).sum();
    if finished != ranks {
        let stuck: Vec<(u32, usize)> = nodes
            .iter()
            .flat_map(|n| {
                n.ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.finished)
                    .map(|(i, r)| (n.rank0 + i as u32, r.pc))
                    .collect::<Vec<_>>()
            })
            .collect();
        return Err(RunError::Deadlock(stuck));
    }
    let end = nodes
        .iter()
        .map(|n| n.max_t)
        .fold(coord.max_t, SimTime::max);
    let mut stats = FsStats::default();
    for n in &nodes {
        stats.data_rpcs += n.stats.data_rpcs;
        stats.meta_ops += n.stats.meta_ops;
        stats.degraded_reads += n.stats.degraded_reads;
        stats.sync_writes += n.stats.sync_writes;
        stats.bytes_read += n.stats.bytes_read;
        stats.bytes_written += n.stats.bytes_written;
        stats.flushes += n.stats.flushes;
    }
    let lock_stats = LockStats {
        acquired: servers.acquired,
        contended: servers.contended,
        revoked: servers.revoked,
    };
    let util = UtilizationReport {
        horizon_s: end.as_secs_f64(),
        fabric_busy_s: servers.fabric.busy_time().as_secs_f64(),
        dlm_busy_s: servers.dlm.busy_time().as_secs_f64(),
        mds_busy_s: servers.mds.busy_time().as_secs_f64(),
        ost_busy_s: servers
            .osts
            .iter()
            .map(|o| o.busy_time().as_secs_f64())
            .collect(),
        ost_switches: servers.osts.iter().map(|o| o.switches()).collect(),
        ost_direction_switches: servers
            .osts
            .iter()
            .map(|o| o.direction_switches())
            .collect(),
        ost_bytes: servers.osts.iter().map(|o| o.bytes()).collect(),
        node_dirty_peak: nodes.iter().map(|n| n.node.dirty_peak).collect(),
        node_dirty_avg: nodes
            .iter()
            .map(|n| n.node.dirty_over_time.average(end))
            .collect(),
    };
    let meta = TraceMeta {
        experiment: cfg.experiment.clone(),
        platform: cfg.fs.name.clone(),
        ranks,
        seed: cfg.seed,
    };
    let mut trace = Trace::new(meta.clone());
    for n in &nodes {
        for r in &n.records {
            trace.push(r.clone());
        }
    }
    for r in &coord.records {
        trace.push(r.clone());
    }
    trace.sort_by_start();
    debug_assert_eq!(trace.validate(), Ok(()));
    let events = nodes.iter().map(|n| n.processed).sum::<u64>() + servers.processed;
    Ok(RunReport {
        seed: cfg.seed,
        meta,
        trace: Some(trace),
        stats,
        lock_stats,
        util,
        events,
        end,
    })
}

/// Replay a finished report's trace into a streaming sink phase by
/// phase, mirroring the classic streaming path's contract.
pub(crate) fn replay_into_sink(report: &mut RunReport, sink: &mut dyn RecordSink) {
    let Some(trace) = report.trace.take() else {
        return;
    };
    let phases = trace.phase_count().max(1);
    for k in 0..phases {
        for r in trace.records.iter().filter(|r| r.phase == k) {
            sink.push(r);
        }
        sink.phase_end(k);
    }
    sink.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FileSpec, ProgramBuilder};
    use crate::runner::Runner;

    const MB: u64 = 1 << 20;

    fn simple_job(ranks: u32, write_mb: u64) -> Job {
        let programs = (0..ranks)
            .map(|r| {
                ProgramBuilder::new()
                    .open(0)
                    .seek(0, r as u64 * 512 * MB)
                    .write(0, write_mb * MB)
                    .barrier()
                    .flush(0)
                    .close(0)
                    .build()
            })
            .collect();
        Job {
            programs,
            files: vec![FileSpec { shared: true }],
        }
    }

    fn cfg(seed: u64) -> RunConfig {
        RunConfig::new(FsConfig::tiny_test(), seed, "shard-unit")
    }

    fn run_shards(job: &Job, config: RunConfig, n: u32) -> RunReport {
        Runner::new(job, config).shards(n).execute_one().unwrap()
    }

    #[test]
    fn sharded_run_completes_and_accounts_bytes() {
        let job = simple_job(8, 4);
        let res = run_shards(&job, cfg(1), 1);
        assert_eq!(res.trace().meta.ranks, 8);
        assert_eq!(res.trace().records.len(), 48);
        assert_eq!(res.stats.bytes_written, 8 * 4 * MB);
        assert_eq!(
            res.util.ost_bytes.iter().sum::<u64>(),
            res.stats.bytes_written
        );
        assert!(res.end > SimTime::ZERO);
        res.trace().validate().unwrap();
    }

    #[test]
    fn bit_identical_across_shard_counts() {
        let job = simple_job(16, 4);
        let base = run_shards(&job, cfg(7), 1);
        for n in [2, 3, 8] {
            let other = run_shards(&job, cfg(7), n);
            assert_eq!(
                base.trace().records,
                other.trace().records,
                "{n} shards diverged"
            );
            assert_eq!(base.end, other.end, "{n} shards diverged on end time");
            assert_eq!(base.stats, other.stats);
            assert_eq!(base.lock_stats, other.lock_stats);
            assert_eq!(base.events, other.events);
        }
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let job = simple_job(8, 4);
        let a = run_shards(&job, cfg(3), 4);
        let b = run_shards(&job, cfg(3), 4);
        assert_eq!(a.trace().records, b.trace().records);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn barriers_synchronize_and_phase_correctly() {
        let job = simple_job(8, 2);
        let res = run_shards(&job, cfg(5), 2);
        let ends: Vec<u64> = res
            .trace()
            .of_kind(CallKind::Barrier)
            .map(|r| r.end_ns)
            .collect();
        assert_eq!(ends.len(), 8);
        assert!(ends.windows(2).all(|w| w[0] == w[1]));
        for r in &res.trace().records {
            match r.call {
                CallKind::Open | CallKind::Seek | CallKind::Write | CallKind::Barrier => {
                    assert_eq!(r.phase, 0, "{r:?}")
                }
                CallKind::Flush | CallKind::Close => assert_eq!(r.phase, 1, "{r:?}"),
                _ => {}
            }
        }
        assert_eq!(res.trace().phase_count(), 2);
    }

    #[test]
    fn send_recv_matches_classic_semantics() {
        // Receiver waits: recv records the send's bytes and ends with it.
        let p0 = ProgramBuilder::new().send(1, 10 * MB).build();
        let p1 = ProgramBuilder::new().recv(0).build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        let res = run_shards(&job, cfg(4), 2);
        let send: Vec<_> = res.trace().of_kind(CallKind::Send).collect();
        let recv: Vec<_> = res.trace().of_kind(CallKind::Recv).collect();
        assert_eq!(send.len(), 1);
        assert_eq!(recv.len(), 1);
        assert!(recv[0].end_ns >= send[0].end_ns);
        assert_eq!(send[0].bytes, 10 * MB);
    }

    #[test]
    fn recv_blocks_until_late_send() {
        let p0 = ProgramBuilder::new().recv(1).build();
        let p1 = ProgramBuilder::new()
            .compute(SimSpan::from_secs(1))
            .send(0, 1024)
            .build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        for n in [1, 2] {
            let res = run_shards(&job, cfg(5), n);
            let binding = res.trace();
            let recv = binding.of_kind(CallKind::Recv).next().unwrap();
            assert!(recv.secs() >= 0.99, "recv must wait for the send: {recv:?}");
        }
    }

    #[test]
    fn deadlock_is_reported() {
        // Rank 0 receives from rank 1, which never sends but is kept
        // "valid" by receiving from rank 0 in turn: a cycle.
        let p0 = ProgramBuilder::new().recv(1).send(1, 64).build();
        let p1 = ProgramBuilder::new().recv(0).send(0, 64).build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        let err = Runner::new(&job, cfg(6))
            .shards(2)
            .execute_one()
            .unwrap_err();
        match err {
            RunError::Deadlock(stuck) => assert_eq!(stuck.len(), 2, "{stuck:?}"),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn shard_count_validation() {
        let job = simple_job(2, 1);
        let err = Runner::new(&job, cfg(1)).shards(0).execute().unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
        let err = Runner::new(&job, cfg(1))
            .shards(4096)
            .execute()
            .unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
    }

    #[test]
    fn faulted_run_is_shard_invariant() {
        use pio_fault::{Fault, FaultPlan};
        let plan = FaultPlan::new().with(Fault::SlowOst {
            ost: 0,
            slowdown: 4.0,
            ramp_per_s: 0.0,
        });
        let job = simple_job(16, 4);
        let mk = |n: u32| {
            Runner::new(&job, cfg(9))
                .fault_plan(plan.clone())
                .shards(n)
                .execute_one()
                .unwrap()
        };
        let base = mk(1);
        for n in [2, 8] {
            let other = mk(n);
            assert_eq!(
                base.trace().records,
                other.trace().records,
                "{n} shards diverged under faults"
            );
            assert_eq!(base.end, other.end);
        }
        // And faults actually changed the run vs clean.
        let clean = run_shards(&job, cfg(9), 2);
        assert_ne!(base.end, clean.end, "fault plan had no effect");
    }

    #[test]
    fn streaming_replay_matches_buffered() {
        let job = simple_job(8, 2);
        let buffered = run_shards(&job, cfg(11), 2);
        let mut collected = Trace::new(buffered.trace().meta.clone());
        let res = Runner::new(&job, cfg(11))
            .shards(2)
            .sink(&mut collected)
            .execute_one()
            .unwrap();
        collected.sort_by_start();
        assert_eq!(collected.records, buffered.trace().records);
        assert!(res.trace.is_none(), "streamed run buffers nothing");
        assert_eq!(res.end, buffered.end);
    }

    #[test]
    fn reads_and_cursor_semantics() {
        let p = ProgramBuilder::new()
            .open(0)
            .write(0, 2 * MB)
            .flush(0)
            .seek(0, 0)
            .read(0, 2 * MB)
            .close(0)
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        let res = run_shards(&job, cfg(12), 1);
        assert_eq!(res.stats.bytes_read, 2 * MB);
        assert_eq!(res.stats.bytes_written, 2 * MB);
        assert_eq!(res.stats.flushes, 1);
        let kinds: Vec<CallKind> = res.trace().records.iter().map(|r| r.call).collect();
        let w = kinds.iter().position(|&k| k == CallKind::Write).unwrap();
        let f = kinds.iter().position(|&k| k == CallKind::Flush).unwrap();
        let r = kinds.iter().position(|&k| k == CallKind::Read).unwrap();
        assert!(w < f && f < r);
    }

    #[test]
    fn many_ranks_many_nodes_shard_invariant() {
        // 64 ranks over 16 nodes (tiny config: 4 tasks/node), enough to
        // exercise blocked-queue rotation and multi-node write-back.
        let job = simple_job(64, 8);
        let base = run_shards(&job, cfg(13), 1);
        let wide = run_shards(&job, cfg(13), 8);
        assert_eq!(base.trace().records, wide.trace().records);
        assert_eq!(base.end, wide.end);
        assert_eq!(base.stats, wide.stats);
        assert!(base.util.node_dirty_peak.iter().any(|&p| p > 0));
    }
}
